//! No-op derive macros standing in for `serde_derive`.
//!
//! The build image has no access to crates.io, so the workspace vendors a
//! minimal substitute: the derives accept the same attribute grammar
//! (`#[serde(...)]`) but emit no code. Nothing in this workspace serializes
//! through serde at run time — the derives only have to compile.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
