//! Minimal offline stand-in for the `rand` 0.9 facade.
//!
//! Implements just the trait surface this workspace uses: [`RngCore`],
//! [`SeedableRng`] (with the upstream PCG32-based `seed_from_u64` seed
//! expansion, so vendored generators produce the same streams as the real
//! `rand_chacha`), and the [`Rng`] extension trait with `random::<f64>()`
//! and `random_range` over integer and float ranges.

use core::ops::Range;

/// Core generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed using the same PCG32-based
    /// filler as upstream `rand_core`, so streams match the real crates.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types drawable from the "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo draw: negligible bias for the span sizes used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
