//! Minimal offline stand-in for the `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` derive macros (as no-ops) and
//! marker traits of the same names so `use serde::{Serialize, Deserialize}`
//! and trait bounds keep compiling without crates.io access.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
