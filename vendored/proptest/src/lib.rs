//! Offline property-testing harness standing in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, [`collection::vec`], [`strategy::Just`], [`any`],
//! [`prop_oneof!`], `prop_map`, and the `prop_assert!`/`prop_assert_eq!`
//! assertions. Unlike upstream there is no shrinking: a failing case panics
//! with the generated inputs' `Debug` rendering via the standard assert
//! message, which is enough for a deterministic CI signal.
//!
//! Generation is deterministic per test function (seeded from the test
//! name), so failures are reproducible run to run.
//!
//! [`any`]: crate::arbitrary::any

/// Deterministic case generation driver used by the [`proptest!`] macro.
pub mod test_runner {
    /// Execution settings for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64-based generator driving strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics when `n` is zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty draw range");
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(
                !self.0.is_empty(),
                "prop_oneof! needs at least one strategy"
            );
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support for simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over a type's full domain.
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Anything usable as a vector-length specification.
    pub trait IntoSizeRange {
        /// Lower and exclusive upper length bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for vectors of `elem` values with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (lo, hi) = self.size.bounds();
            assert!(lo < hi, "empty vec size range");
            let len = lo + rng.below((hi - lo) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors of `elem` values; `size` is an exact length or a
    /// half-open range of lengths.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares deterministic property tests; see the crate docs for supported
/// syntax (a subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Skips the current generated case when its precondition fails. Expands to
/// `continue` targeting the [`proptest!`] case loop, so it is only valid at
/// statement level directly inside a property-test body (matching how this
/// workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Uniformly chooses between the given strategies (all yielding the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..7, y in -2.5f64..2.5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(xs in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5, "len {}", xs.len());
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(u32::from),
            Just(99u32),
        ]) {
            prop_assert!(v < 4 || v == 99);
        }
    }

    #[test]
    fn exact_vec_size() {
        let mut rng = crate::test_runner::TestRng::deterministic("exact");
        let s = crate::collection::vec(0u64..5, 7usize);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }
}
