//! Minimal offline stand-in for `rayon`.
//!
//! Implements the data-parallel iterator subset this workspace uses —
//! `into_par_iter()` on ranges, vectors and slices, with `map`, `collect`,
//! `min_by`, `reduce_with`, `for_each` and `count` — executed on scoped OS
//! threads with order-preserving chunking, plus `ThreadPoolBuilder` /
//! `ThreadPool::install` for bounding the thread count of a region.
//!
//! Differences from upstream kept deliberately small and *stronger*:
//! combining consumers (`min_by`, `reduce_with`) fold the materialized
//! results sequentially in input order, so they are deterministic even for
//! non-associative operations where real rayon's reduction tree is not.
//! Code written against this stand-in must still follow rayon's rules
//! (total-order comparators, associative reductions) to behave identically
//! on the real crate.

use std::cell::Cell;
use std::cmp::Ordering;
use std::num::NonZeroUsize;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel iterators on this thread will use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(Cell::get).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's thread count (0 = automatic, as in upstream).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(num_threads);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the stand-in; the `Result` mirrors upstream's
    /// signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count region mirroring `rayon::ThreadPool`.
///
/// The stand-in spawns scoped threads per operation rather than keeping a
/// worker pool alive; `install` bounds how many it uses.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(Some(self.threads)));
        let result = op();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Order-preserving parallel map over a materialized sequence.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len()).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let per_chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut drain = items.into_iter();
    loop {
        let chunk: Vec<T> = drain.by_ref().take(per_chunk).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out: Vec<R> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon stand-in worker panicked"));
        }
    });
    out
}

/// A parallel iterator over `Send` items.
pub trait ParallelIterator: Sized {
    /// The produced item type.
    type Item: Send;

    /// Executes the pipeline, materializing the results in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Minimum by a total-order comparator (deterministic: sequential fold
    /// over the materialized results).
    fn min_by<F>(self, compare: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> Ordering + Sync,
    {
        self.drive().into_iter().min_by(|a, b| compare(a, b))
    }

    /// Reduces the results pairwise in input order.
    fn reduce_with<F>(self, reduce: F) -> Option<Self::Item>
    where
        F: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        self.drive().into_iter().reduce(reduce)
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = parallel_map(self.drive(), &|item| f(item));
    }

    /// Number of produced items.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Conversion into a [`ParallelIterator`] (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an owned, materialized sequence.
#[derive(Debug)]
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Lazy parallel map adapter.
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), &self.f)
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;

    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = VecParIter<u64>;

    fn into_par_iter(self) -> VecParIter<u64> {
        VecParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;

    fn into_par_iter(self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;

    fn into_par_iter(self) -> VecParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..100usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 2);
        // Restored afterwards.
        assert_ne!(
            POOL_THREADS.with(Cell::get),
            Some(2),
            "override must not leak"
        );
    }

    #[test]
    fn min_by_is_deterministic() {
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let run = || {
            (0..64u64)
                .into_par_iter()
                .map(|i| (i * 7919 % 97, i))
                .min_by(|a, b| a.cmp(b))
                .unwrap()
        };
        assert_eq!(pool1.install(run), pool4.install(run));
    }

    #[test]
    fn slices_and_single_items_work() {
        let v = vec![3, 1, 2];
        let doubled: Vec<i32> = v.as_slice().into_par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let one: Vec<i32> = vec![5].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![6]);
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }
}
