//! Offline subset of `petgraph` used by `mutsvc-placement`.
//!
//! Implements an adjacency-list [`graph::DiGraph`] with the node/edge index
//! types, directed edge iteration ([`Graph::edges_directed`],
//! [`Graph::edges_connecting`], [`Graph::edge_references`]) and the
//! [`visit::EdgeRef`] accessor trait. Semantics match upstream for this
//! subset; the implementation favours clarity over petgraph's index tricks.
//!
//! [`Graph::edges_directed`]: graph::DiGraph::edges_directed
//! [`Graph::edges_connecting`]: graph::DiGraph::edges_connecting
//! [`Graph::edge_references`]: graph::DiGraph::edge_references

/// Edge direction relative to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Edges leaving the node.
    Outgoing,
    /// Edges arriving at the node.
    Incoming,
}

/// Graph storage and index types.
pub mod graph {
    use super::Direction;

    /// Identifies a node within a graph.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
    pub struct NodeIndex(usize);

    impl NodeIndex {
        /// Creates an index from a dense position.
        pub fn new(index: usize) -> Self {
            NodeIndex(index)
        }

        /// The dense position.
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// Identifies an edge within a graph.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
    pub struct EdgeIndex(usize);

    impl EdgeIndex {
        /// Creates an index from a dense position.
        pub fn new(index: usize) -> Self {
            EdgeIndex(index)
        }

        /// The dense position.
        pub fn index(self) -> usize {
            self.0
        }
    }

    #[derive(Debug, Clone)]
    struct EdgeData<E> {
        source: NodeIndex,
        target: NodeIndex,
        weight: E,
    }

    /// A directed graph with node weights `N` and edge weights `E`.
    #[derive(Debug, Clone)]
    pub struct DiGraph<N, E> {
        nodes: Vec<N>,
        edges: Vec<EdgeData<E>>,
    }

    impl<N, E> Default for DiGraph<N, E> {
        fn default() -> Self {
            DiGraph {
                nodes: Vec::new(),
                edges: Vec::new(),
            }
        }
    }

    /// A borrowed edge with its endpoints and weight.
    #[derive(Debug)]
    pub struct EdgeReference<'a, E> {
        id: EdgeIndex,
        source: NodeIndex,
        target: NodeIndex,
        weight: &'a E,
    }

    impl<E> Clone for EdgeReference<'_, E> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<E> Copy for EdgeReference<'_, E> {}

    impl<'a, E> EdgeReference<'a, E> {
        /// The edge's index (inherent mirror of [`crate::visit::EdgeRef::id`]).
        pub fn id(&self) -> EdgeIndex {
            self.id
        }

        /// The source node.
        pub fn source(&self) -> NodeIndex {
            self.source
        }

        /// The target node.
        pub fn target(&self) -> NodeIndex {
            self.target
        }

        /// The edge weight.
        pub fn weight(&self) -> &'a E {
            self.weight
        }
    }

    impl<'a, E> crate::visit::EdgeRef for EdgeReference<'a, E> {
        type Weight = E;

        fn id(&self) -> EdgeIndex {
            self.id
        }

        fn source(&self) -> NodeIndex {
            self.source
        }

        fn target(&self) -> NodeIndex {
            self.target
        }

        fn weight(&self) -> &'a E {
            self.weight
        }
    }

    impl<N, E> DiGraph<N, E> {
        /// Creates an empty graph.
        pub fn new() -> Self {
            Self::default()
        }

        /// Adds a node and returns its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            let idx = NodeIndex(self.nodes.len());
            self.nodes.push(weight);
            idx
        }

        /// Adds a directed edge and returns its index. Parallel edges are
        /// allowed, as in upstream petgraph.
        pub fn add_edge(&mut self, source: NodeIndex, target: NodeIndex, weight: E) -> EdgeIndex {
            let idx = EdgeIndex(self.edges.len());
            self.edges.push(EdgeData {
                source,
                target,
                weight,
            });
            idx
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }

        /// Iterates node indices in insertion order.
        pub fn node_indices(&self) -> impl Iterator<Item = NodeIndex> {
            (0..self.nodes.len()).map(NodeIndex)
        }

        /// The weight of `node`, if present.
        pub fn node_weight(&self, node: NodeIndex) -> Option<&N> {
            self.nodes.get(node.0)
        }

        /// Mutable access to an edge weight.
        pub fn edge_weight_mut(&mut self, edge: EdgeIndex) -> Option<&mut E> {
            self.edges.get_mut(edge.0).map(|e| &mut e.weight)
        }

        /// The first edge from `source` to `target`, if any.
        pub fn find_edge(&self, source: NodeIndex, target: NodeIndex) -> Option<EdgeIndex> {
            self.edges
                .iter()
                .position(|e| e.source == source && e.target == target)
                .map(EdgeIndex)
        }

        /// Iterates all edges.
        pub fn edge_references(&self) -> impl Iterator<Item = EdgeReference<'_, E>> {
            self.edges.iter().enumerate().map(|(i, e)| EdgeReference {
                id: EdgeIndex(i),
                source: e.source,
                target: e.target,
                weight: &e.weight,
            })
        }

        /// Iterates edges incident to `node` in the given direction.
        pub fn edges_directed(
            &self,
            node: NodeIndex,
            direction: Direction,
        ) -> impl Iterator<Item = EdgeReference<'_, E>> {
            self.edge_references().filter(move |e| match direction {
                Direction::Outgoing => e.source == node,
                Direction::Incoming => e.target == node,
            })
        }

        /// Iterates edges from `source` to `target`.
        pub fn edges_connecting(
            &self,
            source: NodeIndex,
            target: NodeIndex,
        ) -> impl Iterator<Item = EdgeReference<'_, E>> {
            self.edge_references()
                .filter(move |e| e.source == source && e.target == target)
        }
    }

    impl<N, E> std::ops::Index<NodeIndex> for DiGraph<N, E> {
        type Output = N;

        fn index(&self, index: NodeIndex) -> &N {
            &self.nodes[index.0]
        }
    }

    impl<N, E> std::ops::IndexMut<NodeIndex> for DiGraph<N, E> {
        fn index_mut(&mut self, index: NodeIndex) -> &mut N {
            &mut self.nodes[index.0]
        }
    }

    impl<N, E> std::ops::Index<EdgeIndex> for DiGraph<N, E> {
        type Output = E;

        fn index(&self, index: EdgeIndex) -> &E {
            &self.edges[index.0].weight
        }
    }

    impl<N, E> std::ops::IndexMut<EdgeIndex> for DiGraph<N, E> {
        fn index_mut(&mut self, index: EdgeIndex) -> &mut E {
            &mut self.edges[index.0].weight
        }
    }
}

/// Traversal accessor traits.
pub mod visit {
    use super::graph::{EdgeIndex, NodeIndex};

    /// Read access to an edge's identity, endpoints and weight.
    pub trait EdgeRef {
        /// The edge weight type.
        type Weight;

        /// The edge's index.
        fn id(&self) -> EdgeIndex;

        /// The source node.
        fn source(&self) -> NodeIndex;

        /// The target node.
        fn target(&self) -> NodeIndex;

        /// The edge weight.
        fn weight(&self) -> &Self::Weight;
    }
}

#[cfg(test)]
mod tests {
    use super::graph::DiGraph;
    use super::Direction;

    #[test]
    fn directed_iteration() {
        let mut g: DiGraph<&str, f64> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(a, c, 3.0);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let out: Vec<f64> = g
            .edges_directed(a, Direction::Outgoing)
            .map(|e| *e.weight())
            .collect();
        assert_eq!(out, vec![1.0, 3.0]);
        let inc: Vec<f64> = g
            .edges_directed(c, Direction::Incoming)
            .map(|e| *e.weight())
            .collect();
        assert_eq!(inc, vec![2.0, 3.0]);
        let e = g.find_edge(a, b).unwrap();
        *g.edge_weight_mut(e).unwrap() = 9.0;
        assert_eq!(g[e], 9.0);
        assert!(g.find_edge(c, a).is_none());
    }
}
