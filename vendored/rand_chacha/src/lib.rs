//! Offline ChaCha8 random generator standing in for `rand_chacha`.
//!
//! Implements the genuine ChaCha stream cipher with 8 rounds, a 64-bit block
//! counter and a 64-bit stream id, exposing the `rand_chacha 0.9` API subset
//! this workspace uses: `seed_from_u64`, `set_stream`, `set_word_pos` and the
//! `RngCore` output interface. Distinct streams yield independent sequences
//! and the generator is cheaply cloneable, which is all the deterministic
//! simulator requires.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, matching the upstream `ChaCha8Rng` API subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 256-bit key derived from the seed.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// 64-bit stream id (words 14–15 of the ChaCha state).
    stream: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word to emit from `block`; 16 forces a refill.
    word_idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects an independent stream; also rewinds to the stream's start so
    /// derived streams are stable regardless of prior consumption.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.word_idx = 16;
    }

    /// Positions the generator at an absolute word offset into the stream.
    pub fn set_word_pos(&mut self, word_pos: u128) {
        self.counter = (word_pos / 16) as u64;
        self.refill();
        self.word_idx = (word_pos % 16) as usize;
    }

    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CHACHA_CONSTANTS[0],
            CHACHA_CONSTANTS[1],
            CHACHA_CONSTANTS[2],
            CHACHA_CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let word = self.block[self.word_idx];
        self.word_idx += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn streams_are_independent_and_rewound() {
        let base = ChaCha8Rng::seed_from_u64(7);
        let mut s1 = base.clone();
        s1.set_stream(1);
        s1.set_word_pos(0);
        let mut s2 = base.clone();
        s2.set_stream(2);
        s2.set_word_pos(0);
        let matches = (0..64).filter(|_| s1.next_u32() == s2.next_u32()).count();
        assert!(matches < 4, "streams should differ ({matches} matches)");
    }

    #[test]
    fn word_pos_seeks() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let skipped: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(3);
        b.set_word_pos(24);
        assert_eq!(b.next_u32(), skipped[24]);
    }
}
