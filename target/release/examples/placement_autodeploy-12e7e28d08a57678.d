/root/repo/target/release/examples/placement_autodeploy-12e7e28d08a57678.d: examples/placement_autodeploy.rs

/root/repo/target/release/examples/placement_autodeploy-12e7e28d08a57678: examples/placement_autodeploy.rs

examples/placement_autodeploy.rs:
