/root/repo/target/release/examples/link_degradation-b88dfd326d7b5dae.d: examples/link_degradation.rs

/root/repo/target/release/examples/link_degradation-b88dfd326d7b5dae: examples/link_degradation.rs

examples/link_degradation.rs:
