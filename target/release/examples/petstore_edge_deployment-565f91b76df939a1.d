/root/repo/target/release/examples/petstore_edge_deployment-565f91b76df939a1.d: examples/petstore_edge_deployment.rs

/root/repo/target/release/examples/petstore_edge_deployment-565f91b76df939a1: examples/petstore_edge_deployment.rs

examples/petstore_edge_deployment.rs:
