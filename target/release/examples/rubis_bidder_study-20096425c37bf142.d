/root/repo/target/release/examples/rubis_bidder_study-20096425c37bf142.d: examples/rubis_bidder_study.rs

/root/repo/target/release/examples/rubis_bidder_study-20096425c37bf142: examples/rubis_bidder_study.rs

examples/rubis_bidder_study.rs:
