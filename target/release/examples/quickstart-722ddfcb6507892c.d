/root/repo/target/release/examples/quickstart-722ddfcb6507892c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-722ddfcb6507892c: examples/quickstart.rs

examples/quickstart.rs:
