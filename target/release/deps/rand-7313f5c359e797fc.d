/root/repo/target/release/deps/rand-7313f5c359e797fc.d: vendored/rand/src/lib.rs

/root/repo/target/release/deps/rand-7313f5c359e797fc: vendored/rand/src/lib.rs

vendored/rand/src/lib.rs:
