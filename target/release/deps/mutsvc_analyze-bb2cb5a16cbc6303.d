/root/repo/target/release/deps/mutsvc_analyze-bb2cb5a16cbc6303.d: crates/analyze/src/bin/main.rs

/root/repo/target/release/deps/mutsvc_analyze-bb2cb5a16cbc6303: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
