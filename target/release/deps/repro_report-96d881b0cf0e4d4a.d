/root/repo/target/release/deps/repro_report-96d881b0cf0e4d4a.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/release/deps/repro_report-96d881b0cf0e4d4a: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
