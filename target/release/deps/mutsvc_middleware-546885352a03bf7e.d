/root/repo/target/release/deps/mutsvc_middleware-546885352a03bf7e.d: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/release/deps/mutsvc_middleware-546885352a03bf7e: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

crates/middleware/src/lib.rs:
crates/middleware/src/binding.rs:
crates/middleware/src/component.rs:
crates/middleware/src/descriptor.rs:
crates/middleware/src/invocation.rs:
crates/middleware/src/state.rs:
