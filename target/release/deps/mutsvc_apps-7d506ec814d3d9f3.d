/root/repo/target/release/deps/mutsvc_apps-7d506ec814d3d9f3.d: crates/apps/src/lib.rs crates/apps/src/petstore/mod.rs crates/apps/src/petstore/components.rs crates/apps/src/petstore/pages.rs crates/apps/src/petstore/schema.rs crates/apps/src/petstore/sessions.rs crates/apps/src/rubis/mod.rs crates/apps/src/rubis/components.rs crates/apps/src/rubis/pages.rs crates/apps/src/rubis/schema.rs crates/apps/src/rubis/sessions.rs

/root/repo/target/release/deps/mutsvc_apps-7d506ec814d3d9f3: crates/apps/src/lib.rs crates/apps/src/petstore/mod.rs crates/apps/src/petstore/components.rs crates/apps/src/petstore/pages.rs crates/apps/src/petstore/schema.rs crates/apps/src/petstore/sessions.rs crates/apps/src/rubis/mod.rs crates/apps/src/rubis/components.rs crates/apps/src/rubis/pages.rs crates/apps/src/rubis/schema.rs crates/apps/src/rubis/sessions.rs

crates/apps/src/lib.rs:
crates/apps/src/petstore/mod.rs:
crates/apps/src/petstore/components.rs:
crates/apps/src/petstore/pages.rs:
crates/apps/src/petstore/schema.rs:
crates/apps/src/petstore/sessions.rs:
crates/apps/src/rubis/mod.rs:
crates/apps/src/rubis/components.rs:
crates/apps/src/rubis/pages.rs:
crates/apps/src/rubis/schema.rs:
crates/apps/src/rubis/sessions.rs:
