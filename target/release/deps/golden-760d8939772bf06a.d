/root/repo/target/release/deps/golden-760d8939772bf06a.d: crates/analyze/tests/golden.rs

/root/repo/target/release/deps/golden-760d8939772bf06a: crates/analyze/tests/golden.rs

crates/analyze/tests/golden.rs:
