/root/repo/target/release/deps/petgraph-692059ccde43afde.d: vendored/petgraph/src/lib.rs

/root/repo/target/release/deps/petgraph-692059ccde43afde: vendored/petgraph/src/lib.rs

vendored/petgraph/src/lib.rs:
