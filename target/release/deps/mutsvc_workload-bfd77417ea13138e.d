/root/repo/target/release/deps/mutsvc_workload-bfd77417ea13138e.d: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

/root/repo/target/release/deps/libmutsvc_workload-bfd77417ea13138e.rlib: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

/root/repo/target/release/deps/libmutsvc_workload-bfd77417ea13138e.rmeta: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

crates/workload/src/lib.rs:
crates/workload/src/driver.rs:
crates/workload/src/spec.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace_report.rs:
