/root/repo/target/release/deps/serde-c7e01d3849394acf.d: vendored/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c7e01d3849394acf.rlib: vendored/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c7e01d3849394acf.rmeta: vendored/serde/src/lib.rs

vendored/serde/src/lib.rs:
