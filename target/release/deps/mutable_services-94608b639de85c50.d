/root/repo/target/release/deps/mutable_services-94608b639de85c50.d: src/lib.rs

/root/repo/target/release/deps/libmutable_services-94608b639de85c50.rlib: src/lib.rs

/root/repo/target/release/deps/libmutable_services-94608b639de85c50.rmeta: src/lib.rs

src/lib.rs:
