/root/repo/target/release/deps/mutsvc_netsim-69e7458b54fd5845.d: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libmutsvc_netsim-69e7458b54fd5845.rlib: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libmutsvc_netsim-69e7458b54fd5845.rmeta: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/job.rs:
crates/netsim/src/network.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/topology.rs:
