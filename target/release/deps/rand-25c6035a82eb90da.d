/root/repo/target/release/deps/rand-25c6035a82eb90da.d: vendored/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-25c6035a82eb90da.rmeta: vendored/rand/src/lib.rs Cargo.toml

vendored/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
