/root/repo/target/release/deps/end_to_end-17d2526682e398f7.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-17d2526682e398f7: tests/end_to_end.rs

tests/end_to_end.rs:
