/root/repo/target/release/deps/serde-3d3707f4811bce02.d: vendored/serde/src/lib.rs

/root/repo/target/release/deps/serde-3d3707f4811bce02: vendored/serde/src/lib.rs

vendored/serde/src/lib.rs:
