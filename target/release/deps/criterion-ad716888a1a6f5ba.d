/root/repo/target/release/deps/criterion-ad716888a1a6f5ba.d: vendored/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ad716888a1a6f5ba.rlib: vendored/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ad716888a1a6f5ba.rmeta: vendored/criterion/src/lib.rs

vendored/criterion/src/lib.rs:
