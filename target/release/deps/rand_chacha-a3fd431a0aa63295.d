/root/repo/target/release/deps/rand_chacha-a3fd431a0aa63295.d: vendored/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-a3fd431a0aa63295: vendored/rand_chacha/src/lib.rs

vendored/rand_chacha/src/lib.rs:
