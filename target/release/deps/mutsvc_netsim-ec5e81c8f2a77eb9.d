/root/repo/target/release/deps/mutsvc_netsim-ec5e81c8f2a77eb9.d: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_netsim-ec5e81c8f2a77eb9.rmeta: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/job.rs:
crates/netsim/src/network.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
