/root/repo/target/release/deps/clean_configs-02d231976093ca10.d: crates/analyze/tests/clean_configs.rs

/root/repo/target/release/deps/clean_configs-02d231976093ca10: crates/analyze/tests/clean_configs.rs

crates/analyze/tests/clean_configs.rs:
