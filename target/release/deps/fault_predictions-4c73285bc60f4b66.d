/root/repo/target/release/deps/fault_predictions-4c73285bc60f4b66.d: crates/bench/tests/fault_predictions.rs

/root/repo/target/release/deps/fault_predictions-4c73285bc60f4b66: crates/bench/tests/fault_predictions.rs

crates/bench/tests/fault_predictions.rs:
