/root/repo/target/release/deps/mutsvc_analyze-b33c7ae131e180af.d: crates/analyze/src/bin/main.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_analyze-b33c7ae131e180af.rmeta: crates/analyze/src/bin/main.rs Cargo.toml

crates/analyze/src/bin/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
