/root/repo/target/release/deps/petgraph-0a377a9f0532beef.d: vendored/petgraph/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpetgraph-0a377a9f0532beef.rmeta: vendored/petgraph/src/lib.rs Cargo.toml

vendored/petgraph/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
