/root/repo/target/release/deps/mutsvc_analyze-97424ff703d485c0.d: crates/analyze/src/bin/main.rs

/root/repo/target/release/deps/mutsvc_analyze-97424ff703d485c0: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
