/root/repo/target/release/deps/determinism-37ac892bbe31ebb4.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-37ac892bbe31ebb4: tests/determinism.rs

tests/determinism.rs:
