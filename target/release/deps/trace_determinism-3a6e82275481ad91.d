/root/repo/target/release/deps/trace_determinism-3a6e82275481ad91.d: crates/bench/tests/trace_determinism.rs

/root/repo/target/release/deps/trace_determinism-3a6e82275481ad91: crates/bench/tests/trace_determinism.rs

crates/bench/tests/trace_determinism.rs:
