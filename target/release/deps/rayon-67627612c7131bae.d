/root/repo/target/release/deps/rayon-67627612c7131bae.d: vendored/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-67627612c7131bae: vendored/rayon/src/lib.rs

vendored/rayon/src/lib.rs:
