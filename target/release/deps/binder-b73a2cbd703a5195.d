/root/repo/target/release/deps/binder-b73a2cbd703a5195.d: crates/middleware/tests/binder.rs

/root/repo/target/release/deps/binder-b73a2cbd703a5195: crates/middleware/tests/binder.rs

crates/middleware/tests/binder.rs:
