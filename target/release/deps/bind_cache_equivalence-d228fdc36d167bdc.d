/root/repo/target/release/deps/bind_cache_equivalence-d228fdc36d167bdc.d: crates/core/tests/bind_cache_equivalence.rs

/root/repo/target/release/deps/bind_cache_equivalence-d228fdc36d167bdc: crates/core/tests/bind_cache_equivalence.rs

crates/core/tests/bind_cache_equivalence.rs:
