/root/repo/target/release/deps/proptest-5a18a51816a82c21.d: vendored/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-5a18a51816a82c21.rlib: vendored/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-5a18a51816a82c21.rmeta: vendored/proptest/src/lib.rs

vendored/proptest/src/lib.rs:
