/root/repo/target/release/deps/serde_derive-6b6c74a67031a7c5.d: vendored/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-6b6c74a67031a7c5: vendored/serde_derive/src/lib.rs

vendored/serde_derive/src/lib.rs:
