/root/repo/target/release/deps/mutsvc_desim-b19f7ce4e904c0cc.d: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_desim-b19f7ce4e904c0cc.rmeta: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs Cargo.toml

crates/desim/src/lib.rs:
crates/desim/src/fault.rs:
crates/desim/src/metrics.rs:
crates/desim/src/resource.rs:
crates/desim/src/rng.rs:
crates/desim/src/sim.rs:
crates/desim/src/telemetry.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
