/root/repo/target/release/deps/mutable_services-2ea2f92b12c5ac4b.d: src/lib.rs

/root/repo/target/release/deps/libmutable_services-2ea2f92b12c5ac4b.rlib: src/lib.rs

/root/repo/target/release/deps/libmutable_services-2ea2f92b12c5ac4b.rmeta: src/lib.rs

src/lib.rs:
