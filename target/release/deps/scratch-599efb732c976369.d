/root/repo/target/release/deps/scratch-599efb732c976369.d: crates/analyze/tests/scratch.rs

/root/repo/target/release/deps/scratch-599efb732c976369: crates/analyze/tests/scratch.rs

crates/analyze/tests/scratch.rs:
