/root/repo/target/release/deps/mutsvc_apps-7edeef4b1b767b74.d: crates/apps/src/lib.rs crates/apps/src/petstore/mod.rs crates/apps/src/petstore/components.rs crates/apps/src/petstore/pages.rs crates/apps/src/petstore/schema.rs crates/apps/src/petstore/sessions.rs crates/apps/src/rubis/mod.rs crates/apps/src/rubis/components.rs crates/apps/src/rubis/pages.rs crates/apps/src/rubis/schema.rs crates/apps/src/rubis/sessions.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_apps-7edeef4b1b767b74.rmeta: crates/apps/src/lib.rs crates/apps/src/petstore/mod.rs crates/apps/src/petstore/components.rs crates/apps/src/petstore/pages.rs crates/apps/src/petstore/schema.rs crates/apps/src/petstore/sessions.rs crates/apps/src/rubis/mod.rs crates/apps/src/rubis/components.rs crates/apps/src/rubis/pages.rs crates/apps/src/rubis/schema.rs crates/apps/src/rubis/sessions.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/petstore/mod.rs:
crates/apps/src/petstore/components.rs:
crates/apps/src/petstore/pages.rs:
crates/apps/src/petstore/schema.rs:
crates/apps/src/petstore/sessions.rs:
crates/apps/src/rubis/mod.rs:
crates/apps/src/rubis/components.rs:
crates/apps/src/rubis/pages.rs:
crates/apps/src/rubis/schema.rs:
crates/apps/src/rubis/sessions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
