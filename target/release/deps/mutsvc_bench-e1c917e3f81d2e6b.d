/root/repo/target/release/deps/mutsvc_bench-e1c917e3f81d2e6b.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/release/deps/libmutsvc_bench-e1c917e3f81d2e6b.rlib: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/release/deps/libmutsvc_bench-e1c917e3f81d2e6b.rmeta: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
