/root/repo/target/release/deps/repro_report-f83846374cc6545c.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/release/deps/repro_report-f83846374cc6545c: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
