/root/repo/target/release/deps/repro_report-a8b72a29e730adc1.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/release/deps/repro_report-a8b72a29e730adc1: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
