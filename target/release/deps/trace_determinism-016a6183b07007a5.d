/root/repo/target/release/deps/trace_determinism-016a6183b07007a5.d: crates/bench/tests/trace_determinism.rs

/root/repo/target/release/deps/trace_determinism-016a6183b07007a5: crates/bench/tests/trace_determinism.rs

crates/bench/tests/trace_determinism.rs:
