/root/repo/target/release/deps/mutsvc_bench-1e321722a054bd83.d: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

/root/repo/target/release/deps/libmutsvc_bench-1e321722a054bd83.rlib: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

/root/repo/target/release/deps/libmutsvc_bench-1e321722a054bd83.rmeta: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

crates/bench/src/lib.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
