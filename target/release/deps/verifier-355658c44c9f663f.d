/root/repo/target/release/deps/verifier-355658c44c9f663f.d: crates/analyze/tests/verifier.rs crates/analyze/tests/../golden/all_cells.txt

/root/repo/target/release/deps/verifier-355658c44c9f663f: crates/analyze/tests/verifier.rs crates/analyze/tests/../golden/all_cells.txt

crates/analyze/tests/verifier.rs:
crates/analyze/tests/../golden/all_cells.txt:
