/root/repo/target/release/deps/page_structure-0cb7a66488fcf7ea.d: crates/core/tests/page_structure.rs

/root/repo/target/release/deps/page_structure-0cb7a66488fcf7ea: crates/core/tests/page_structure.rs

crates/core/tests/page_structure.rs:
