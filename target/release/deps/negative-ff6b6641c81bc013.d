/root/repo/target/release/deps/negative-ff6b6641c81bc013.d: crates/analyze/tests/negative.rs

/root/repo/target/release/deps/negative-ff6b6641c81bc013: crates/analyze/tests/negative.rs

crates/analyze/tests/negative.rs:
