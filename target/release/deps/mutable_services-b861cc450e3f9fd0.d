/root/repo/target/release/deps/mutable_services-b861cc450e3f9fd0.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmutable_services-b861cc450e3f9fd0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
