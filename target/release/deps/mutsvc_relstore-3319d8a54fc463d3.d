/root/repo/target/release/deps/mutsvc_relstore-3319d8a54fc463d3.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_relstore-3319d8a54fc463d3.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs Cargo.toml

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/invalidation.rs:
crates/relstore/src/table.rs:
crates/relstore/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
