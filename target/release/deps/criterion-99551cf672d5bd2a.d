/root/repo/target/release/deps/criterion-99551cf672d5bd2a.d: vendored/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-99551cf672d5bd2a: vendored/criterion/src/lib.rs

vendored/criterion/src/lib.rs:
