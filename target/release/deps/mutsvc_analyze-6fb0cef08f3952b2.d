/root/repo/target/release/deps/mutsvc_analyze-6fb0cef08f3952b2.d: crates/analyze/src/bin/main.rs

/root/repo/target/release/deps/mutsvc_analyze-6fb0cef08f3952b2: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
