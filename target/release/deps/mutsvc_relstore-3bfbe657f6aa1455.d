/root/repo/target/release/deps/mutsvc_relstore-3bfbe657f6aa1455.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/release/deps/libmutsvc_relstore-3bfbe657f6aa1455.rlib: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/release/deps/libmutsvc_relstore-3bfbe657f6aa1455.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/invalidation.rs:
crates/relstore/src/table.rs:
crates/relstore/src/value.rs:
