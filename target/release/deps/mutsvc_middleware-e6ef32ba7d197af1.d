/root/repo/target/release/deps/mutsvc_middleware-e6ef32ba7d197af1.d: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_middleware-e6ef32ba7d197af1.rmeta: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs Cargo.toml

crates/middleware/src/lib.rs:
crates/middleware/src/binding.rs:
crates/middleware/src/component.rs:
crates/middleware/src/descriptor.rs:
crates/middleware/src/invocation.rs:
crates/middleware/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
