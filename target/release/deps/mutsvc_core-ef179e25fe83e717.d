/root/repo/target/release/deps/mutsvc_core-ef179e25fe83e717.d: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

/root/repo/target/release/deps/libmutsvc_core-ef179e25fe83e717.rlib: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

/root/repo/target/release/deps/libmutsvc_core-ef179e25fe83e717.rmeta: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/configs.rs:
crates/core/src/experiment.rs:
crates/core/src/faultsuite.rs:
crates/core/src/invariants.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/topology.rs:
