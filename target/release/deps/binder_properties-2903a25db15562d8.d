/root/repo/target/release/deps/binder_properties-2903a25db15562d8.d: crates/middleware/tests/binder_properties.rs

/root/repo/target/release/deps/binder_properties-2903a25db15562d8: crates/middleware/tests/binder_properties.rs

crates/middleware/tests/binder_properties.rs:
