/root/repo/target/release/deps/rand_chacha-8ac0ac3bbe0404f8.d: vendored/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-8ac0ac3bbe0404f8.rmeta: vendored/rand_chacha/src/lib.rs Cargo.toml

vendored/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
