/root/repo/target/release/deps/negative-520774a047324ca7.d: crates/analyze/tests/negative.rs

/root/repo/target/release/deps/negative-520774a047324ca7: crates/analyze/tests/negative.rs

crates/analyze/tests/negative.rs:
