/root/repo/target/release/deps/mutsvc_relstore-f21d067046a25588.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/release/deps/mutsvc_relstore-f21d067046a25588: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/invalidation.rs:
crates/relstore/src/table.rs:
crates/relstore/src/value.rs:
