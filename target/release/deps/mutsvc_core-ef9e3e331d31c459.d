/root/repo/target/release/deps/mutsvc_core-ef9e3e331d31c459.d: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

/root/repo/target/release/deps/mutsvc_core-ef9e3e331d31c459: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/configs.rs:
crates/core/src/experiment.rs:
crates/core/src/faultsuite.rs:
crates/core/src/invariants.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/topology.rs:
