/root/repo/target/release/deps/incremental_equivalence-b300c27fc1d71d9a.d: crates/placement/tests/incremental_equivalence.rs

/root/repo/target/release/deps/incremental_equivalence-b300c27fc1d71d9a: crates/placement/tests/incremental_equivalence.rs

crates/placement/tests/incremental_equivalence.rs:
