/root/repo/target/release/deps/mutsvc_desim-8a934e60819dbd0f.d: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/release/deps/libmutsvc_desim-8a934e60819dbd0f.rlib: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/release/deps/libmutsvc_desim-8a934e60819dbd0f.rmeta: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

crates/desim/src/lib.rs:
crates/desim/src/fault.rs:
crates/desim/src/metrics.rs:
crates/desim/src/resource.rs:
crates/desim/src/rng.rs:
crates/desim/src/sim.rs:
crates/desim/src/telemetry.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
