/root/repo/target/release/deps/mutsvc_bench-15ddd6da55406519.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/release/deps/libmutsvc_bench-15ddd6da55406519.rlib: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/release/deps/libmutsvc_bench-15ddd6da55406519.rmeta: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
