/root/repo/target/release/deps/mutsvc_analyze-b0b5e2f0254d2d98.d: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs

/root/repo/target/release/deps/libmutsvc_analyze-b0b5e2f0254d2d98.rlib: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs

/root/repo/target/release/deps/libmutsvc_analyze-b0b5e2f0254d2d98.rmeta: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs

crates/analyze/src/lib.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/explain.rs:
crates/analyze/src/paths.rs:
crates/analyze/src/reachability.rs:
crates/analyze/src/walker.rs:
