/root/repo/target/release/deps/rand_chacha-705d16f49566f39a.d: vendored/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-705d16f49566f39a.rlib: vendored/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-705d16f49566f39a.rmeta: vendored/rand_chacha/src/lib.rs

vendored/rand_chacha/src/lib.rs:
