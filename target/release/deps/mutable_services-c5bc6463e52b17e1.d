/root/repo/target/release/deps/mutable_services-c5bc6463e52b17e1.d: src/lib.rs

/root/repo/target/release/deps/mutable_services-c5bc6463e52b17e1: src/lib.rs

src/lib.rs:
