/root/repo/target/release/deps/mutsvc_bench-5029f1a0f0e7fe00.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/release/deps/mutsvc_bench-5029f1a0f0e7fe00: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
