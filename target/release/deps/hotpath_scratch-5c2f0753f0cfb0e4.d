/root/repo/target/release/deps/hotpath_scratch-5c2f0753f0cfb0e4.d: crates/bench/src/bin/hotpath_scratch.rs

/root/repo/target/release/deps/hotpath_scratch-5c2f0753f0cfb0e4: crates/bench/src/bin/hotpath_scratch.rs

crates/bench/src/bin/hotpath_scratch.rs:
