/root/repo/target/release/deps/mutsvc_middleware-33118037c17f77e8.d: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/release/deps/libmutsvc_middleware-33118037c17f77e8.rlib: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/release/deps/libmutsvc_middleware-33118037c17f77e8.rmeta: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

crates/middleware/src/lib.rs:
crates/middleware/src/binding.rs:
crates/middleware/src/component.rs:
crates/middleware/src/descriptor.rs:
crates/middleware/src/invocation.rs:
crates/middleware/src/state.rs:
