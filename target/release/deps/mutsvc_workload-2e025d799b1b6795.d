/root/repo/target/release/deps/mutsvc_workload-2e025d799b1b6795.d: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_workload-2e025d799b1b6795.rmeta: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/driver.rs:
crates/workload/src/spec.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
