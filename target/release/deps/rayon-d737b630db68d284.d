/root/repo/target/release/deps/rayon-d737b630db68d284.d: vendored/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-d737b630db68d284.rlib: vendored/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-d737b630db68d284.rmeta: vendored/rayon/src/lib.rs

vendored/rayon/src/lib.rs:
