/root/repo/target/release/deps/rand-23dfa99cba5a3f6a.d: vendored/rand/src/lib.rs

/root/repo/target/release/deps/librand-23dfa99cba5a3f6a.rlib: vendored/rand/src/lib.rs

/root/repo/target/release/deps/librand-23dfa99cba5a3f6a.rmeta: vendored/rand/src/lib.rs

vendored/rand/src/lib.rs:
