/root/repo/target/release/deps/repro_report-4d1d9e77cc3f716f.d: crates/bench/src/bin/repro_report.rs Cargo.toml

/root/repo/target/release/deps/librepro_report-4d1d9e77cc3f716f.rmeta: crates/bench/src/bin/repro_report.rs Cargo.toml

crates/bench/src/bin/repro_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
