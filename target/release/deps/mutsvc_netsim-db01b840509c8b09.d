/root/repo/target/release/deps/mutsvc_netsim-db01b840509c8b09.d: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/mutsvc_netsim-db01b840509c8b09: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/job.rs:
crates/netsim/src/network.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/topology.rs:
