/root/repo/target/release/deps/rayon-d88d883f9c8e4512.d: vendored/rayon/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librayon-d88d883f9c8e4512.rmeta: vendored/rayon/src/lib.rs Cargo.toml

vendored/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
