/root/repo/target/release/deps/mutsvc_workload-5266708ec51f4b84.d: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

/root/repo/target/release/deps/mutsvc_workload-5266708ec51f4b84: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

crates/workload/src/lib.rs:
crates/workload/src/driver.rs:
crates/workload/src/spec.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace_report.rs:
