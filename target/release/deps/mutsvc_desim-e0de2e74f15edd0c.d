/root/repo/target/release/deps/mutsvc_desim-e0de2e74f15edd0c.d: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/release/deps/mutsvc_desim-e0de2e74f15edd0c: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

crates/desim/src/lib.rs:
crates/desim/src/fault.rs:
crates/desim/src/metrics.rs:
crates/desim/src/resource.rs:
crates/desim/src/rng.rs:
crates/desim/src/sim.rs:
crates/desim/src/telemetry.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
