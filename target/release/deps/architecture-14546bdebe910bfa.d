/root/repo/target/release/deps/architecture-14546bdebe910bfa.d: tests/architecture.rs

/root/repo/target/release/deps/architecture-14546bdebe910bfa: tests/architecture.rs

tests/architecture.rs:
