/root/repo/target/release/deps/golden-c39e14b3add6f816.d: crates/analyze/tests/golden.rs

/root/repo/target/release/deps/golden-c39e14b3add6f816: crates/analyze/tests/golden.rs

crates/analyze/tests/golden.rs:
