/root/repo/target/release/deps/mutsvc_placement-0681b178bc859932.d: crates/placement/src/lib.rs crates/placement/src/algorithms/mod.rs crates/placement/src/algorithms/annealing.rs crates/placement/src/algorithms/exhaustive.rs crates/placement/src/algorithms/greedy.rs crates/placement/src/algorithms/kl.rs crates/placement/src/algorithms/multilevel.rs crates/placement/src/algorithms/multistart.rs crates/placement/src/cost.rs crates/placement/src/cost/incremental.rs crates/placement/src/derive.rs crates/placement/src/graph.rs

/root/repo/target/release/deps/mutsvc_placement-0681b178bc859932: crates/placement/src/lib.rs crates/placement/src/algorithms/mod.rs crates/placement/src/algorithms/annealing.rs crates/placement/src/algorithms/exhaustive.rs crates/placement/src/algorithms/greedy.rs crates/placement/src/algorithms/kl.rs crates/placement/src/algorithms/multilevel.rs crates/placement/src/algorithms/multistart.rs crates/placement/src/cost.rs crates/placement/src/cost/incremental.rs crates/placement/src/derive.rs crates/placement/src/graph.rs

crates/placement/src/lib.rs:
crates/placement/src/algorithms/mod.rs:
crates/placement/src/algorithms/annealing.rs:
crates/placement/src/algorithms/exhaustive.rs:
crates/placement/src/algorithms/greedy.rs:
crates/placement/src/algorithms/kl.rs:
crates/placement/src/algorithms/multilevel.rs:
crates/placement/src/algorithms/multistart.rs:
crates/placement/src/cost.rs:
crates/placement/src/cost/incremental.rs:
crates/placement/src/derive.rs:
crates/placement/src/graph.rs:
