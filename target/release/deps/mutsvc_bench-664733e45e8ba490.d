/root/repo/target/release/deps/mutsvc_bench-664733e45e8ba490.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_bench-664733e45e8ba490.rmeta: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
