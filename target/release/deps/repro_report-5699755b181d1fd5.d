/root/repo/target/release/deps/repro_report-5699755b181d1fd5.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/release/deps/repro_report-5699755b181d1fd5: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
