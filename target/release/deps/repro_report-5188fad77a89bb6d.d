/root/repo/target/release/deps/repro_report-5188fad77a89bb6d.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/release/deps/repro_report-5188fad77a89bb6d: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
