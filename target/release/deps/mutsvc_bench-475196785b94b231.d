/root/repo/target/release/deps/mutsvc_bench-475196785b94b231.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmutsvc_bench-475196785b94b231.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmutsvc_bench-475196785b94b231.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
