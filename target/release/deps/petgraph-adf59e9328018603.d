/root/repo/target/release/deps/petgraph-adf59e9328018603.d: vendored/petgraph/src/lib.rs

/root/repo/target/release/deps/libpetgraph-adf59e9328018603.rlib: vendored/petgraph/src/lib.rs

/root/repo/target/release/deps/libpetgraph-adf59e9328018603.rmeta: vendored/petgraph/src/lib.rs

vendored/petgraph/src/lib.rs:
