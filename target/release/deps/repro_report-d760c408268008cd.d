/root/repo/target/release/deps/repro_report-d760c408268008cd.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/release/deps/repro_report-d760c408268008cd: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
