/root/repo/target/release/deps/mutsvc_analyze-58e8a87ad44c5a97.d: crates/analyze/src/bin/main.rs

/root/repo/target/release/deps/mutsvc_analyze-58e8a87ad44c5a97: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
