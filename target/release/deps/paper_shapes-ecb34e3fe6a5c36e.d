/root/repo/target/release/deps/paper_shapes-ecb34e3fe6a5c36e.d: tests/paper_shapes.rs

/root/repo/target/release/deps/paper_shapes-ecb34e3fe6a5c36e: tests/paper_shapes.rs

tests/paper_shapes.rs:
