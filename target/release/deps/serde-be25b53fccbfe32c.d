/root/repo/target/release/deps/serde-be25b53fccbfe32c.d: vendored/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-be25b53fccbfe32c.rmeta: vendored/serde/src/lib.rs Cargo.toml

vendored/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
