/root/repo/target/release/deps/proptest-628c25af402edcbb.d: vendored/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-628c25af402edcbb: vendored/proptest/src/lib.rs

vendored/proptest/src/lib.rs:
