/root/repo/target/release/deps/proptest-39cfeefbb207e632.d: vendored/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-39cfeefbb207e632.rmeta: vendored/proptest/src/lib.rs Cargo.toml

vendored/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
