/root/repo/target/release/deps/mutsvc_analyze-38f93277ccc30977.d: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_analyze-38f93277ccc30977.rmeta: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs Cargo.toml

crates/analyze/src/lib.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/explain.rs:
crates/analyze/src/paths.rs:
crates/analyze/src/reachability.rs:
crates/analyze/src/walker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
