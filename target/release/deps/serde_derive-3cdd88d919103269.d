/root/repo/target/release/deps/serde_derive-3cdd88d919103269.d: vendored/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-3cdd88d919103269.so: vendored/serde_derive/src/lib.rs Cargo.toml

vendored/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
