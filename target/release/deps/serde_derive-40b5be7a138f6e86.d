/root/repo/target/release/deps/serde_derive-40b5be7a138f6e86.d: vendored/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-40b5be7a138f6e86.rmeta: vendored/serde_derive/src/lib.rs Cargo.toml

vendored/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
