/root/repo/target/release/deps/mutsvc_placement-17eb68eaa6df45bb.d: crates/placement/src/lib.rs crates/placement/src/algorithms/mod.rs crates/placement/src/algorithms/annealing.rs crates/placement/src/algorithms/exhaustive.rs crates/placement/src/algorithms/greedy.rs crates/placement/src/algorithms/kl.rs crates/placement/src/algorithms/multilevel.rs crates/placement/src/algorithms/multistart.rs crates/placement/src/cost.rs crates/placement/src/cost/incremental.rs crates/placement/src/derive.rs crates/placement/src/graph.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_placement-17eb68eaa6df45bb.rmeta: crates/placement/src/lib.rs crates/placement/src/algorithms/mod.rs crates/placement/src/algorithms/annealing.rs crates/placement/src/algorithms/exhaustive.rs crates/placement/src/algorithms/greedy.rs crates/placement/src/algorithms/kl.rs crates/placement/src/algorithms/multilevel.rs crates/placement/src/algorithms/multistart.rs crates/placement/src/cost.rs crates/placement/src/cost/incremental.rs crates/placement/src/derive.rs crates/placement/src/graph.rs Cargo.toml

crates/placement/src/lib.rs:
crates/placement/src/algorithms/mod.rs:
crates/placement/src/algorithms/annealing.rs:
crates/placement/src/algorithms/exhaustive.rs:
crates/placement/src/algorithms/greedy.rs:
crates/placement/src/algorithms/kl.rs:
crates/placement/src/algorithms/multilevel.rs:
crates/placement/src/algorithms/multistart.rs:
crates/placement/src/cost.rs:
crates/placement/src/cost/incremental.rs:
crates/placement/src/derive.rs:
crates/placement/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
