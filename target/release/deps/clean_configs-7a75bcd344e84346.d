/root/repo/target/release/deps/clean_configs-7a75bcd344e84346.d: crates/analyze/tests/clean_configs.rs

/root/repo/target/release/deps/clean_configs-7a75bcd344e84346: crates/analyze/tests/clean_configs.rs

crates/analyze/tests/clean_configs.rs:
