/root/repo/target/release/deps/mutsvc_analyze-fc81f3ffb11a5002.d: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

/root/repo/target/release/deps/libmutsvc_analyze-fc81f3ffb11a5002.rlib: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

/root/repo/target/release/deps/libmutsvc_analyze-fc81f3ffb11a5002.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/walker.rs:
