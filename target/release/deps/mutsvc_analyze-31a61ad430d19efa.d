/root/repo/target/release/deps/mutsvc_analyze-31a61ad430d19efa.d: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs

/root/repo/target/release/deps/mutsvc_analyze-31a61ad430d19efa: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs

crates/analyze/src/lib.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/explain.rs:
crates/analyze/src/paths.rs:
crates/analyze/src/reachability.rs:
crates/analyze/src/walker.rs:
