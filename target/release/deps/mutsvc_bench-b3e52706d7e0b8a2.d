/root/repo/target/release/deps/mutsvc_bench-b3e52706d7e0b8a2.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/release/deps/mutsvc_bench-b3e52706d7e0b8a2: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
