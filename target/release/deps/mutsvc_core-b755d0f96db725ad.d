/root/repo/target/release/deps/mutsvc_core-b755d0f96db725ad.d: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs Cargo.toml

/root/repo/target/release/deps/libmutsvc_core-b755d0f96db725ad.rmeta: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/configs.rs:
crates/core/src/experiment.rs:
crates/core/src/faultsuite.rs:
crates/core/src/invariants.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
