/root/repo/target/release/deps/placement_consistency-ee99ddd50b851ffb.d: tests/placement_consistency.rs

/root/repo/target/release/deps/placement_consistency-ee99ddd50b851ffb: tests/placement_consistency.rs

tests/placement_consistency.rs:
