/root/repo/target/release/deps/criterion-5f92920debf933f8.d: vendored/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-5f92920debf933f8.rmeta: vendored/criterion/src/lib.rs Cargo.toml

vendored/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
