/root/repo/target/debug/libcriterion.rlib: /root/repo/vendored/criterion/src/lib.rs
