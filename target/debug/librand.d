/root/repo/target/debug/librand.rlib: /root/repo/vendored/rand/src/lib.rs
