/root/repo/target/debug/librand_chacha.rlib: /root/repo/vendored/rand/src/lib.rs /root/repo/vendored/rand_chacha/src/lib.rs
