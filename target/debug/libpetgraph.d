/root/repo/target/debug/libpetgraph.rlib: /root/repo/vendored/petgraph/src/lib.rs
