/root/repo/target/debug/deps/mutsvc_bench-f45041a1ac5e0273.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmutsvc_bench-f45041a1ac5e0273.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmutsvc_bench-f45041a1ac5e0273.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
