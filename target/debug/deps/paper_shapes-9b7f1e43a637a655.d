/root/repo/target/debug/deps/paper_shapes-9b7f1e43a637a655.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-9b7f1e43a637a655: tests/paper_shapes.rs

tests/paper_shapes.rs:
