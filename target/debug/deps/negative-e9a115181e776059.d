/root/repo/target/debug/deps/negative-e9a115181e776059.d: crates/analyze/tests/negative.rs Cargo.toml

/root/repo/target/debug/deps/libnegative-e9a115181e776059.rmeta: crates/analyze/tests/negative.rs Cargo.toml

crates/analyze/tests/negative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
