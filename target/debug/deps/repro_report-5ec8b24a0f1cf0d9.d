/root/repo/target/debug/deps/repro_report-5ec8b24a0f1cf0d9.d: crates/bench/src/bin/repro_report.rs Cargo.toml

/root/repo/target/debug/deps/librepro_report-5ec8b24a0f1cf0d9.rmeta: crates/bench/src/bin/repro_report.rs Cargo.toml

crates/bench/src/bin/repro_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
