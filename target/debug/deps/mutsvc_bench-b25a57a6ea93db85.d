/root/repo/target/debug/deps/mutsvc_bench-b25a57a6ea93db85.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/debug/deps/libmutsvc_bench-b25a57a6ea93db85.rlib: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/debug/deps/libmutsvc_bench-b25a57a6ea93db85.rmeta: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
