/root/repo/target/debug/deps/mutable_services-06cc5dcea20f3baa.d: src/lib.rs

/root/repo/target/debug/deps/libmutable_services-06cc5dcea20f3baa.rlib: src/lib.rs

/root/repo/target/debug/deps/libmutable_services-06cc5dcea20f3baa.rmeta: src/lib.rs

src/lib.rs:
