/root/repo/target/debug/deps/mutsvc_analyze-7622cf5915273c53.d: crates/analyze/src/bin/main.rs

/root/repo/target/debug/deps/mutsvc_analyze-7622cf5915273c53: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
