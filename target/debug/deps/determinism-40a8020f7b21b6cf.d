/root/repo/target/debug/deps/determinism-40a8020f7b21b6cf.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-40a8020f7b21b6cf: tests/determinism.rs

tests/determinism.rs:
