/root/repo/target/debug/deps/golden-12e46ec2cc5c3feb.d: crates/analyze/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-12e46ec2cc5c3feb.rmeta: crates/analyze/tests/golden.rs Cargo.toml

crates/analyze/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
