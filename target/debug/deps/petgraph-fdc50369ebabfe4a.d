/root/repo/target/debug/deps/petgraph-fdc50369ebabfe4a.d: vendored/petgraph/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpetgraph-fdc50369ebabfe4a.rmeta: vendored/petgraph/src/lib.rs Cargo.toml

vendored/petgraph/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
