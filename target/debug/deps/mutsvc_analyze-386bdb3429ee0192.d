/root/repo/target/debug/deps/mutsvc_analyze-386bdb3429ee0192.d: crates/analyze/src/lib.rs

/root/repo/target/debug/deps/mutsvc_analyze-386bdb3429ee0192: crates/analyze/src/lib.rs

crates/analyze/src/lib.rs:
