/root/repo/target/debug/deps/mutsvc_bench-a562cc77b1762994.d: crates/bench/src/lib.rs crates/bench/src/placement_report.rs

/root/repo/target/debug/deps/libmutsvc_bench-a562cc77b1762994.rlib: crates/bench/src/lib.rs crates/bench/src/placement_report.rs

/root/repo/target/debug/deps/libmutsvc_bench-a562cc77b1762994.rmeta: crates/bench/src/lib.rs crates/bench/src/placement_report.rs

crates/bench/src/lib.rs:
crates/bench/src/placement_report.rs:
