/root/repo/target/debug/deps/golden-e7394e3c7bc77acf.d: crates/analyze/tests/golden.rs

/root/repo/target/debug/deps/golden-e7394e3c7bc77acf: crates/analyze/tests/golden.rs

crates/analyze/tests/golden.rs:
