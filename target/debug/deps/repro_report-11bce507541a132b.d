/root/repo/target/debug/deps/repro_report-11bce507541a132b.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/debug/deps/repro_report-11bce507541a132b: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
