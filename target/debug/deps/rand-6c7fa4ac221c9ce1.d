/root/repo/target/debug/deps/rand-6c7fa4ac221c9ce1.d: vendored/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6c7fa4ac221c9ce1.rlib: vendored/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6c7fa4ac221c9ce1.rmeta: vendored/rand/src/lib.rs

vendored/rand/src/lib.rs:
