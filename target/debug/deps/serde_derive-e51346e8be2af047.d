/root/repo/target/debug/deps/serde_derive-e51346e8be2af047.d: vendored/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-e51346e8be2af047.so: vendored/serde_derive/src/lib.rs Cargo.toml

vendored/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
