/root/repo/target/debug/deps/placement-3c2aa4d0b2e67d23.d: crates/bench/benches/placement.rs

/root/repo/target/debug/deps/placement-3c2aa4d0b2e67d23: crates/bench/benches/placement.rs

crates/bench/benches/placement.rs:
