/root/repo/target/debug/deps/mutsvc_desim-d86868b5d7edc2bd.d: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/debug/deps/libmutsvc_desim-d86868b5d7edc2bd.rlib: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

/root/repo/target/debug/deps/libmutsvc_desim-d86868b5d7edc2bd.rmeta: crates/desim/src/lib.rs crates/desim/src/fault.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/telemetry.rs crates/desim/src/time.rs crates/desim/src/trace.rs

crates/desim/src/lib.rs:
crates/desim/src/fault.rs:
crates/desim/src/metrics.rs:
crates/desim/src/resource.rs:
crates/desim/src/rng.rs:
crates/desim/src/sim.rs:
crates/desim/src/telemetry.rs:
crates/desim/src/time.rs:
crates/desim/src/trace.rs:
