/root/repo/target/debug/deps/determinism-721fb11fc82e87a7.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-721fb11fc82e87a7.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
