/root/repo/target/debug/deps/binder_properties-8ff6fbd6a3806758.d: crates/middleware/tests/binder_properties.rs Cargo.toml

/root/repo/target/debug/deps/libbinder_properties-8ff6fbd6a3806758.rmeta: crates/middleware/tests/binder_properties.rs Cargo.toml

crates/middleware/tests/binder_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
