/root/repo/target/debug/deps/criterion-3ac926a243680757.d: vendored/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3ac926a243680757.rlib: vendored/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3ac926a243680757.rmeta: vendored/criterion/src/lib.rs

vendored/criterion/src/lib.rs:
