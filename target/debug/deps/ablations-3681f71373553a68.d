/root/repo/target/debug/deps/ablations-3681f71373553a68.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-3681f71373553a68: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
