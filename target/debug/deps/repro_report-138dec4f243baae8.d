/root/repo/target/debug/deps/repro_report-138dec4f243baae8.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/debug/deps/repro_report-138dec4f243baae8: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
