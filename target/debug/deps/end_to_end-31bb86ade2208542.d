/root/repo/target/debug/deps/end_to_end-31bb86ade2208542.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-31bb86ade2208542: tests/end_to_end.rs

tests/end_to_end.rs:
