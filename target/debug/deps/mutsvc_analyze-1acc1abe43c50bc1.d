/root/repo/target/debug/deps/mutsvc_analyze-1acc1abe43c50bc1.d: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

/root/repo/target/debug/deps/mutsvc_analyze-1acc1abe43c50bc1: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/walker.rs:
