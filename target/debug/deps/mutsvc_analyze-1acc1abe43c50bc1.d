/root/repo/target/debug/deps/mutsvc_analyze-1acc1abe43c50bc1.d: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs

/root/repo/target/debug/deps/mutsvc_analyze-1acc1abe43c50bc1: crates/analyze/src/lib.rs crates/analyze/src/dataflow.rs crates/analyze/src/diagnostics.rs crates/analyze/src/explain.rs crates/analyze/src/paths.rs crates/analyze/src/reachability.rs crates/analyze/src/walker.rs

crates/analyze/src/lib.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/explain.rs:
crates/analyze/src/paths.rs:
crates/analyze/src/reachability.rs:
crates/analyze/src/walker.rs:
