/root/repo/target/debug/deps/rand_chacha-4f7e54c644e0bfed.d: vendored/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-4f7e54c644e0bfed: vendored/rand_chacha/src/lib.rs

vendored/rand_chacha/src/lib.rs:
