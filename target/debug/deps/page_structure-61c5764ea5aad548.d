/root/repo/target/debug/deps/page_structure-61c5764ea5aad548.d: crates/core/tests/page_structure.rs Cargo.toml

/root/repo/target/debug/deps/libpage_structure-61c5764ea5aad548.rmeta: crates/core/tests/page_structure.rs Cargo.toml

crates/core/tests/page_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
