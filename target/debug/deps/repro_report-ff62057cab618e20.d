/root/repo/target/debug/deps/repro_report-ff62057cab618e20.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/debug/deps/repro_report-ff62057cab618e20: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
