/root/repo/target/debug/deps/serde-96630a50f253557c.d: vendored/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-96630a50f253557c.rlib: vendored/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-96630a50f253557c.rmeta: vendored/serde/src/lib.rs

vendored/serde/src/lib.rs:
