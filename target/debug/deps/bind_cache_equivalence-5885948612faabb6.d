/root/repo/target/debug/deps/bind_cache_equivalence-5885948612faabb6.d: crates/core/tests/bind_cache_equivalence.rs

/root/repo/target/debug/deps/bind_cache_equivalence-5885948612faabb6: crates/core/tests/bind_cache_equivalence.rs

crates/core/tests/bind_cache_equivalence.rs:
