/root/repo/target/debug/deps/serde-49d1b6313eab23e4.d: vendored/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-49d1b6313eab23e4.rmeta: vendored/serde/src/lib.rs Cargo.toml

vendored/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
