/root/repo/target/debug/deps/repro_report-7189f6be2cecef3b.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/debug/deps/repro_report-7189f6be2cecef3b: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
