/root/repo/target/debug/deps/criterion-7b948f4056663d31.d: vendored/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-7b948f4056663d31: vendored/criterion/src/lib.rs

vendored/criterion/src/lib.rs:
