/root/repo/target/debug/deps/mutable_services-0c9402b18e151337.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmutable_services-0c9402b18e151337.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
