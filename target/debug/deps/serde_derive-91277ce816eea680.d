/root/repo/target/debug/deps/serde_derive-91277ce816eea680.d: vendored/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-91277ce816eea680.so: vendored/serde_derive/src/lib.rs

vendored/serde_derive/src/lib.rs:
