/root/repo/target/debug/deps/ablations-57f3c4a3a7343840.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-57f3c4a3a7343840.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
