/root/repo/target/debug/deps/rayon-cfe51ffd4cda4126.d: vendored/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-cfe51ffd4cda4126: vendored/rayon/src/lib.rs

vendored/rayon/src/lib.rs:
