/root/repo/target/debug/deps/mutable_services-4324f75d155f9e00.d: src/lib.rs

/root/repo/target/debug/deps/mutable_services-4324f75d155f9e00: src/lib.rs

src/lib.rs:
