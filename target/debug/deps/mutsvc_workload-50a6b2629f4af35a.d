/root/repo/target/debug/deps/mutsvc_workload-50a6b2629f4af35a.d: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

/root/repo/target/debug/deps/libmutsvc_workload-50a6b2629f4af35a.rlib: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

/root/repo/target/debug/deps/libmutsvc_workload-50a6b2629f4af35a.rmeta: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

crates/workload/src/lib.rs:
crates/workload/src/driver.rs:
crates/workload/src/spec.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace_report.rs:
