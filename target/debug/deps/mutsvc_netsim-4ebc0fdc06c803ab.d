/root/repo/target/debug/deps/mutsvc_netsim-4ebc0fdc06c803ab.d: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_netsim-4ebc0fdc06c803ab.rmeta: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/job.rs:
crates/netsim/src/network.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
