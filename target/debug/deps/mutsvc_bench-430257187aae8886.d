/root/repo/target/debug/deps/mutsvc_bench-430257187aae8886.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_bench-430257187aae8886.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
