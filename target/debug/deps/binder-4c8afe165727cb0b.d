/root/repo/target/debug/deps/binder-4c8afe165727cb0b.d: crates/middleware/tests/binder.rs

/root/repo/target/debug/deps/binder-4c8afe165727cb0b: crates/middleware/tests/binder.rs

crates/middleware/tests/binder.rs:
