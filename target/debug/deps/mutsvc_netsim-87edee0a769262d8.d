/root/repo/target/debug/deps/mutsvc_netsim-87edee0a769262d8.d: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmutsvc_netsim-87edee0a769262d8.rlib: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmutsvc_netsim-87edee0a769262d8.rmeta: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/job.rs:
crates/netsim/src/network.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/topology.rs:
