/root/repo/target/debug/deps/mutsvc_analyze-5de092953c5fedfd.d: crates/analyze/src/bin/main.rs

/root/repo/target/debug/deps/mutsvc_analyze-5de092953c5fedfd: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
