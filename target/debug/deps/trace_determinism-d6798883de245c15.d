/root/repo/target/debug/deps/trace_determinism-d6798883de245c15.d: crates/bench/tests/trace_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_determinism-d6798883de245c15.rmeta: crates/bench/tests/trace_determinism.rs Cargo.toml

crates/bench/tests/trace_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
