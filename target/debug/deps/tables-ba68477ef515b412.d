/root/repo/target/debug/deps/tables-ba68477ef515b412.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-ba68477ef515b412.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
