/root/repo/target/debug/deps/mutsvc_relstore-29420e5834b9863d.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/debug/deps/libmutsvc_relstore-29420e5834b9863d.rlib: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/debug/deps/libmutsvc_relstore-29420e5834b9863d.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/invalidation.rs:
crates/relstore/src/table.rs:
crates/relstore/src/value.rs:
