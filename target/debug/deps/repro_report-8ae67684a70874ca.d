/root/repo/target/debug/deps/repro_report-8ae67684a70874ca.d: crates/bench/src/bin/repro_report.rs Cargo.toml

/root/repo/target/debug/deps/librepro_report-8ae67684a70874ca.rmeta: crates/bench/src/bin/repro_report.rs Cargo.toml

crates/bench/src/bin/repro_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
