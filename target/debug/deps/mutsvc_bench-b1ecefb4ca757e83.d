/root/repo/target/debug/deps/mutsvc_bench-b1ecefb4ca757e83.d: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

/root/repo/target/debug/deps/libmutsvc_bench-b1ecefb4ca757e83.rlib: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

/root/repo/target/debug/deps/libmutsvc_bench-b1ecefb4ca757e83.rmeta: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

crates/bench/src/lib.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
