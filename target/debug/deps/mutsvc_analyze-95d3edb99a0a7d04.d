/root/repo/target/debug/deps/mutsvc_analyze-95d3edb99a0a7d04.d: crates/analyze/src/bin/main.rs

/root/repo/target/debug/deps/mutsvc_analyze-95d3edb99a0a7d04: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
