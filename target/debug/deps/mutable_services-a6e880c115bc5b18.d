/root/repo/target/debug/deps/mutable_services-a6e880c115bc5b18.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmutable_services-a6e880c115bc5b18.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
