/root/repo/target/debug/deps/rand-367fb70529156423.d: vendored/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-367fb70529156423.rmeta: vendored/rand/src/lib.rs Cargo.toml

vendored/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
