/root/repo/target/debug/deps/mutsvc_middleware-ca124d9bddd7061a.d: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/debug/deps/libmutsvc_middleware-ca124d9bddd7061a.rlib: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/debug/deps/libmutsvc_middleware-ca124d9bddd7061a.rmeta: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

crates/middleware/src/lib.rs:
crates/middleware/src/binding.rs:
crates/middleware/src/component.rs:
crates/middleware/src/descriptor.rs:
crates/middleware/src/invocation.rs:
crates/middleware/src/state.rs:
