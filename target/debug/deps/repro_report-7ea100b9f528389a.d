/root/repo/target/debug/deps/repro_report-7ea100b9f528389a.d: crates/bench/src/bin/repro_report.rs Cargo.toml

/root/repo/target/debug/deps/librepro_report-7ea100b9f528389a.rmeta: crates/bench/src/bin/repro_report.rs Cargo.toml

crates/bench/src/bin/repro_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
