/root/repo/target/debug/deps/architecture-7d05c89337679570.d: tests/architecture.rs Cargo.toml

/root/repo/target/debug/deps/libarchitecture-7d05c89337679570.rmeta: tests/architecture.rs Cargo.toml

tests/architecture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
