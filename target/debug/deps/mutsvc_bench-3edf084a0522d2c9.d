/root/repo/target/debug/deps/mutsvc_bench-3edf084a0522d2c9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mutsvc_bench-3edf084a0522d2c9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
