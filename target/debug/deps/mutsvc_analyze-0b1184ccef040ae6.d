/root/repo/target/debug/deps/mutsvc_analyze-0b1184ccef040ae6.d: crates/analyze/src/bin/main.rs

/root/repo/target/debug/deps/mutsvc_analyze-0b1184ccef040ae6: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
