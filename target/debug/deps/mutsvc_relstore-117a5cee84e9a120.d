/root/repo/target/debug/deps/mutsvc_relstore-117a5cee84e9a120.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/debug/deps/mutsvc_relstore-117a5cee84e9a120: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/invalidation.rs:
crates/relstore/src/table.rs:
crates/relstore/src/value.rs:
