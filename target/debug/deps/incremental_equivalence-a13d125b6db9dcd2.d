/root/repo/target/debug/deps/incremental_equivalence-a13d125b6db9dcd2.d: crates/placement/tests/incremental_equivalence.rs

/root/repo/target/debug/deps/incremental_equivalence-a13d125b6db9dcd2: crates/placement/tests/incremental_equivalence.rs

crates/placement/tests/incremental_equivalence.rs:
