/root/repo/target/debug/deps/mutable_services-6f760ee94d8b91ba.d: src/lib.rs

/root/repo/target/debug/deps/libmutable_services-6f760ee94d8b91ba.rlib: src/lib.rs

/root/repo/target/debug/deps/libmutable_services-6f760ee94d8b91ba.rmeta: src/lib.rs

src/lib.rs:
