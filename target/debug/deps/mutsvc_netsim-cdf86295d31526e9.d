/root/repo/target/debug/deps/mutsvc_netsim-cdf86295d31526e9.d: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/mutsvc_netsim-cdf86295d31526e9: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/job.rs:
crates/netsim/src/network.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/topology.rs:
