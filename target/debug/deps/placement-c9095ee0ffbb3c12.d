/root/repo/target/debug/deps/placement-c9095ee0ffbb3c12.d: crates/bench/benches/placement.rs Cargo.toml

/root/repo/target/debug/deps/libplacement-c9095ee0ffbb3c12.rmeta: crates/bench/benches/placement.rs Cargo.toml

crates/bench/benches/placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
