/root/repo/target/debug/deps/repro_report-d762098f739f8bc3.d: crates/bench/src/bin/repro_report.rs Cargo.toml

/root/repo/target/debug/deps/librepro_report-d762098f739f8bc3.rmeta: crates/bench/src/bin/repro_report.rs Cargo.toml

crates/bench/src/bin/repro_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
