/root/repo/target/debug/deps/rand-e0b7f367d3865343.d: vendored/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-e0b7f367d3865343.rmeta: vendored/rand/src/lib.rs Cargo.toml

vendored/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
