/root/repo/target/debug/deps/golden-3dcfca400c1ca6a1.d: crates/analyze/tests/golden.rs

/root/repo/target/debug/deps/golden-3dcfca400c1ca6a1: crates/analyze/tests/golden.rs

crates/analyze/tests/golden.rs:
