/root/repo/target/debug/deps/petgraph-fd18feca78a4884b.d: vendored/petgraph/src/lib.rs

/root/repo/target/debug/deps/libpetgraph-fd18feca78a4884b.rlib: vendored/petgraph/src/lib.rs

/root/repo/target/debug/deps/libpetgraph-fd18feca78a4884b.rmeta: vendored/petgraph/src/lib.rs

vendored/petgraph/src/lib.rs:
