/root/repo/target/debug/deps/placement_consistency-8e38eaa8a4b1a03f.d: tests/placement_consistency.rs

/root/repo/target/debug/deps/placement_consistency-8e38eaa8a4b1a03f: tests/placement_consistency.rs

tests/placement_consistency.rs:
