/root/repo/target/debug/deps/placement_consistency-79db218b5fe9f063.d: tests/placement_consistency.rs

/root/repo/target/debug/deps/placement_consistency-79db218b5fe9f063: tests/placement_consistency.rs

tests/placement_consistency.rs:
