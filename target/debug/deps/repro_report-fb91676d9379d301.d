/root/repo/target/debug/deps/repro_report-fb91676d9379d301.d: crates/bench/src/bin/repro_report.rs Cargo.toml

/root/repo/target/debug/deps/librepro_report-fb91676d9379d301.rmeta: crates/bench/src/bin/repro_report.rs Cargo.toml

crates/bench/src/bin/repro_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
