/root/repo/target/debug/deps/binder-0c4c046b3d4c2305.d: crates/middleware/tests/binder.rs Cargo.toml

/root/repo/target/debug/deps/libbinder-0c4c046b3d4c2305.rmeta: crates/middleware/tests/binder.rs Cargo.toml

crates/middleware/tests/binder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
