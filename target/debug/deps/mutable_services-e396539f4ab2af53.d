/root/repo/target/debug/deps/mutable_services-e396539f4ab2af53.d: src/lib.rs

/root/repo/target/debug/deps/mutable_services-e396539f4ab2af53: src/lib.rs

src/lib.rs:
