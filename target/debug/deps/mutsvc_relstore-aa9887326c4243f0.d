/root/repo/target/debug/deps/mutsvc_relstore-aa9887326c4243f0.d: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/debug/deps/libmutsvc_relstore-aa9887326c4243f0.rlib: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

/root/repo/target/debug/deps/libmutsvc_relstore-aa9887326c4243f0.rmeta: crates/relstore/src/lib.rs crates/relstore/src/database.rs crates/relstore/src/invalidation.rs crates/relstore/src/table.rs crates/relstore/src/value.rs

crates/relstore/src/lib.rs:
crates/relstore/src/database.rs:
crates/relstore/src/invalidation.rs:
crates/relstore/src/table.rs:
crates/relstore/src/value.rs:
