/root/repo/target/debug/deps/mutsvc_core-fc6459720594843a.d: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

/root/repo/target/debug/deps/libmutsvc_core-fc6459720594843a.rlib: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

/root/repo/target/debug/deps/libmutsvc_core-fc6459720594843a.rmeta: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/configs.rs:
crates/core/src/experiment.rs:
crates/core/src/invariants.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/topology.rs:
