/root/repo/target/debug/deps/proptest-e9ba0e2935d9a160.d: vendored/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e9ba0e2935d9a160.rmeta: vendored/proptest/src/lib.rs Cargo.toml

vendored/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
