/root/repo/target/debug/deps/repro_report-9e4b7090e58e1b9a.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/debug/deps/repro_report-9e4b7090e58e1b9a: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
