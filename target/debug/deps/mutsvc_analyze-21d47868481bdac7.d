/root/repo/target/debug/deps/mutsvc_analyze-21d47868481bdac7.d: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

/root/repo/target/debug/deps/libmutsvc_analyze-21d47868481bdac7.rlib: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

/root/repo/target/debug/deps/libmutsvc_analyze-21d47868481bdac7.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/walker.rs:
