/root/repo/target/debug/deps/mutsvc_apps-e684a144a0da2540.d: crates/apps/src/lib.rs crates/apps/src/petstore/mod.rs crates/apps/src/petstore/components.rs crates/apps/src/petstore/pages.rs crates/apps/src/petstore/schema.rs crates/apps/src/petstore/sessions.rs crates/apps/src/rubis/mod.rs crates/apps/src/rubis/components.rs crates/apps/src/rubis/pages.rs crates/apps/src/rubis/schema.rs crates/apps/src/rubis/sessions.rs

/root/repo/target/debug/deps/libmutsvc_apps-e684a144a0da2540.rlib: crates/apps/src/lib.rs crates/apps/src/petstore/mod.rs crates/apps/src/petstore/components.rs crates/apps/src/petstore/pages.rs crates/apps/src/petstore/schema.rs crates/apps/src/petstore/sessions.rs crates/apps/src/rubis/mod.rs crates/apps/src/rubis/components.rs crates/apps/src/rubis/pages.rs crates/apps/src/rubis/schema.rs crates/apps/src/rubis/sessions.rs

/root/repo/target/debug/deps/libmutsvc_apps-e684a144a0da2540.rmeta: crates/apps/src/lib.rs crates/apps/src/petstore/mod.rs crates/apps/src/petstore/components.rs crates/apps/src/petstore/pages.rs crates/apps/src/petstore/schema.rs crates/apps/src/petstore/sessions.rs crates/apps/src/rubis/mod.rs crates/apps/src/rubis/components.rs crates/apps/src/rubis/pages.rs crates/apps/src/rubis/schema.rs crates/apps/src/rubis/sessions.rs

crates/apps/src/lib.rs:
crates/apps/src/petstore/mod.rs:
crates/apps/src/petstore/components.rs:
crates/apps/src/petstore/pages.rs:
crates/apps/src/petstore/schema.rs:
crates/apps/src/petstore/sessions.rs:
crates/apps/src/rubis/mod.rs:
crates/apps/src/rubis/components.rs:
crates/apps/src/rubis/pages.rs:
crates/apps/src/rubis/schema.rs:
crates/apps/src/rubis/sessions.rs:
