/root/repo/target/debug/deps/mutsvc_workload-ebd3ea938bd05f50.d: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/libmutsvc_workload-ebd3ea938bd05f50.rlib: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/libmutsvc_workload-ebd3ea938bd05f50.rmeta: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/driver.rs:
crates/workload/src/spec.rs:
crates/workload/src/stats.rs:
