/root/repo/target/debug/deps/mutsvc_bench-380aaeb2e5aad108.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_bench-380aaeb2e5aad108.rmeta: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
