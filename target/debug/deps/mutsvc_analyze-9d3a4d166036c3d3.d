/root/repo/target/debug/deps/mutsvc_analyze-9d3a4d166036c3d3.d: crates/analyze/src/bin/main.rs

/root/repo/target/debug/deps/mutsvc_analyze-9d3a4d166036c3d3: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
