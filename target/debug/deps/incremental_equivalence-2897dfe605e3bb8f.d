/root/repo/target/debug/deps/incremental_equivalence-2897dfe605e3bb8f.d: crates/placement/tests/incremental_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_equivalence-2897dfe605e3bb8f.rmeta: crates/placement/tests/incremental_equivalence.rs Cargo.toml

crates/placement/tests/incremental_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
