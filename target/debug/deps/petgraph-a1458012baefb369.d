/root/repo/target/debug/deps/petgraph-a1458012baefb369.d: vendored/petgraph/src/lib.rs

/root/repo/target/debug/deps/petgraph-a1458012baefb369: vendored/petgraph/src/lib.rs

vendored/petgraph/src/lib.rs:
