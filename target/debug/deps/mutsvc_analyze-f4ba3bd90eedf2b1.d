/root/repo/target/debug/deps/mutsvc_analyze-f4ba3bd90eedf2b1.d: crates/analyze/src/bin/main.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_analyze-f4ba3bd90eedf2b1.rmeta: crates/analyze/src/bin/main.rs Cargo.toml

crates/analyze/src/bin/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
