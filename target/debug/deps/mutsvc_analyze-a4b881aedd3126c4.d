/root/repo/target/debug/deps/mutsvc_analyze-a4b881aedd3126c4.d: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

/root/repo/target/debug/deps/libmutsvc_analyze-a4b881aedd3126c4.rlib: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

/root/repo/target/debug/deps/libmutsvc_analyze-a4b881aedd3126c4.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/walker.rs:
