/root/repo/target/debug/deps/determinism-7e3db081c6128c5b.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-7e3db081c6128c5b.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
