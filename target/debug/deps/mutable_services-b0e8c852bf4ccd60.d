/root/repo/target/debug/deps/mutable_services-b0e8c852bf4ccd60.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmutable_services-b0e8c852bf4ccd60.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
