/root/repo/target/debug/deps/placement-c141793036ee1007.d: crates/bench/benches/placement.rs Cargo.toml

/root/repo/target/debug/deps/libplacement-c141793036ee1007.rmeta: crates/bench/benches/placement.rs Cargo.toml

crates/bench/benches/placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
