/root/repo/target/debug/deps/mutsvc_bench-f3f258648c64834b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_bench-f3f258648c64834b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
