/root/repo/target/debug/deps/repro_report-ccac50350d9dc2eb.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/debug/deps/repro_report-ccac50350d9dc2eb: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
