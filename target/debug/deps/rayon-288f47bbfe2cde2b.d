/root/repo/target/debug/deps/rayon-288f47bbfe2cde2b.d: vendored/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-288f47bbfe2cde2b.rmeta: vendored/rayon/src/lib.rs Cargo.toml

vendored/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
