/root/repo/target/debug/deps/architecture-a209c94bb44480c7.d: tests/architecture.rs

/root/repo/target/debug/deps/architecture-a209c94bb44480c7: tests/architecture.rs

tests/architecture.rs:
