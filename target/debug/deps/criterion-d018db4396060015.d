/root/repo/target/debug/deps/criterion-d018db4396060015.d: vendored/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-d018db4396060015.rmeta: vendored/criterion/src/lib.rs Cargo.toml

vendored/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
