/root/repo/target/debug/deps/rand_chacha-d064d37dfda8ebd5.d: vendored/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-d064d37dfda8ebd5.rmeta: vendored/rand_chacha/src/lib.rs Cargo.toml

vendored/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
