/root/repo/target/debug/deps/mutsvc_analyze-a9bef1e9ee627036.d: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_analyze-a9bef1e9ee627036.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diagnostics.rs crates/analyze/src/walker.rs Cargo.toml

crates/analyze/src/lib.rs:
crates/analyze/src/diagnostics.rs:
crates/analyze/src/walker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
