/root/repo/target/debug/deps/clean_configs-576ec2ddb74ecd05.d: crates/analyze/tests/clean_configs.rs

/root/repo/target/debug/deps/clean_configs-576ec2ddb74ecd05: crates/analyze/tests/clean_configs.rs

crates/analyze/tests/clean_configs.rs:
