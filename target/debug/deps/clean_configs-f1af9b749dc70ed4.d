/root/repo/target/debug/deps/clean_configs-f1af9b749dc70ed4.d: crates/analyze/tests/clean_configs.rs Cargo.toml

/root/repo/target/debug/deps/libclean_configs-f1af9b749dc70ed4.rmeta: crates/analyze/tests/clean_configs.rs Cargo.toml

crates/analyze/tests/clean_configs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
