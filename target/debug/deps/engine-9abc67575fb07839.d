/root/repo/target/debug/deps/engine-9abc67575fb07839.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-9abc67575fb07839: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
