/root/repo/target/debug/deps/negative-ca50601f8d7f8376.d: crates/analyze/tests/negative.rs

/root/repo/target/debug/deps/negative-ca50601f8d7f8376: crates/analyze/tests/negative.rs

crates/analyze/tests/negative.rs:
