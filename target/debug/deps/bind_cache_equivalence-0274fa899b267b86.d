/root/repo/target/debug/deps/bind_cache_equivalence-0274fa899b267b86.d: crates/core/tests/bind_cache_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libbind_cache_equivalence-0274fa899b267b86.rmeta: crates/core/tests/bind_cache_equivalence.rs Cargo.toml

crates/core/tests/bind_cache_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
