/root/repo/target/debug/deps/binder_properties-f679cc9ae188644c.d: crates/middleware/tests/binder_properties.rs

/root/repo/target/debug/deps/binder_properties-f679cc9ae188644c: crates/middleware/tests/binder_properties.rs

crates/middleware/tests/binder_properties.rs:
