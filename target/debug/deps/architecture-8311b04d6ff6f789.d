/root/repo/target/debug/deps/architecture-8311b04d6ff6f789.d: tests/architecture.rs

/root/repo/target/debug/deps/architecture-8311b04d6ff6f789: tests/architecture.rs

tests/architecture.rs:
