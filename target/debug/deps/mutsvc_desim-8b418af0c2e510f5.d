/root/repo/target/debug/deps/mutsvc_desim-8b418af0c2e510f5.d: crates/desim/src/lib.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/time.rs

/root/repo/target/debug/deps/libmutsvc_desim-8b418af0c2e510f5.rlib: crates/desim/src/lib.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/time.rs

/root/repo/target/debug/deps/libmutsvc_desim-8b418af0c2e510f5.rmeta: crates/desim/src/lib.rs crates/desim/src/metrics.rs crates/desim/src/resource.rs crates/desim/src/rng.rs crates/desim/src/sim.rs crates/desim/src/time.rs

crates/desim/src/lib.rs:
crates/desim/src/metrics.rs:
crates/desim/src/resource.rs:
crates/desim/src/rng.rs:
crates/desim/src/sim.rs:
crates/desim/src/time.rs:
