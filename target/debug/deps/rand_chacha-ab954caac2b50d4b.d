/root/repo/target/debug/deps/rand_chacha-ab954caac2b50d4b.d: vendored/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-ab954caac2b50d4b.rmeta: vendored/rand_chacha/src/lib.rs Cargo.toml

vendored/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
