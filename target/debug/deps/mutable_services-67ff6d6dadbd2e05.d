/root/repo/target/debug/deps/mutable_services-67ff6d6dadbd2e05.d: src/lib.rs

/root/repo/target/debug/deps/libmutable_services-67ff6d6dadbd2e05.rlib: src/lib.rs

/root/repo/target/debug/deps/libmutable_services-67ff6d6dadbd2e05.rmeta: src/lib.rs

src/lib.rs:
