/root/repo/target/debug/deps/mutsvc_middleware-190f603d89c5b710.d: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/debug/deps/mutsvc_middleware-190f603d89c5b710: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

crates/middleware/src/lib.rs:
crates/middleware/src/binding.rs:
crates/middleware/src/component.rs:
crates/middleware/src/descriptor.rs:
crates/middleware/src/invocation.rs:
crates/middleware/src/state.rs:
