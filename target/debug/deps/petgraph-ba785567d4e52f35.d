/root/repo/target/debug/deps/petgraph-ba785567d4e52f35.d: vendored/petgraph/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpetgraph-ba785567d4e52f35.rmeta: vendored/petgraph/src/lib.rs Cargo.toml

vendored/petgraph/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
