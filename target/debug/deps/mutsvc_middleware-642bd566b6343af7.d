/root/repo/target/debug/deps/mutsvc_middleware-642bd566b6343af7.d: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_middleware-642bd566b6343af7.rmeta: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs Cargo.toml

crates/middleware/src/lib.rs:
crates/middleware/src/binding.rs:
crates/middleware/src/component.rs:
crates/middleware/src/descriptor.rs:
crates/middleware/src/invocation.rs:
crates/middleware/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
