/root/repo/target/debug/deps/rayon-de966ccdaf0b6255.d: vendored/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-de966ccdaf0b6255.rmeta: vendored/rayon/src/lib.rs Cargo.toml

vendored/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
