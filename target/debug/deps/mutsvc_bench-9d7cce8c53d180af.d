/root/repo/target/debug/deps/mutsvc_bench-9d7cce8c53d180af.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_bench-9d7cce8c53d180af.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
