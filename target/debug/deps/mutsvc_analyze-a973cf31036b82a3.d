/root/repo/target/debug/deps/mutsvc_analyze-a973cf31036b82a3.d: crates/analyze/src/bin/main.rs

/root/repo/target/debug/deps/mutsvc_analyze-a973cf31036b82a3: crates/analyze/src/bin/main.rs

crates/analyze/src/bin/main.rs:
