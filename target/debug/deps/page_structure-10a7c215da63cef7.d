/root/repo/target/debug/deps/page_structure-10a7c215da63cef7.d: crates/core/tests/page_structure.rs

/root/repo/target/debug/deps/page_structure-10a7c215da63cef7: crates/core/tests/page_structure.rs

crates/core/tests/page_structure.rs:
