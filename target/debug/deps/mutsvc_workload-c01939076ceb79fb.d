/root/repo/target/debug/deps/mutsvc_workload-c01939076ceb79fb.d: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

/root/repo/target/debug/deps/mutsvc_workload-c01939076ceb79fb: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs

crates/workload/src/lib.rs:
crates/workload/src/driver.rs:
crates/workload/src/spec.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace_report.rs:
