/root/repo/target/debug/deps/placement-b2a4bd63c0ce074a.d: crates/bench/benches/placement.rs Cargo.toml

/root/repo/target/debug/deps/libplacement-b2a4bd63c0ce074a.rmeta: crates/bench/benches/placement.rs Cargo.toml

crates/bench/benches/placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
