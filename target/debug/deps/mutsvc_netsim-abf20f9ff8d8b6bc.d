/root/repo/target/debug/deps/mutsvc_netsim-abf20f9ff8d8b6bc.d: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmutsvc_netsim-abf20f9ff8d8b6bc.rlib: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libmutsvc_netsim-abf20f9ff8d8b6bc.rmeta: crates/netsim/src/lib.rs crates/netsim/src/job.rs crates/netsim/src/network.rs crates/netsim/src/protocol.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/job.rs:
crates/netsim/src/network.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/topology.rs:
