/root/repo/target/debug/deps/mutsvc_bench-383b48d59232bdcd.d: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

/root/repo/target/debug/deps/mutsvc_bench-383b48d59232bdcd: crates/bench/src/lib.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs

crates/bench/src/lib.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
