/root/repo/target/debug/deps/criterion-91b4e4da926e4b65.d: vendored/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-91b4e4da926e4b65.rmeta: vendored/criterion/src/lib.rs Cargo.toml

vendored/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
