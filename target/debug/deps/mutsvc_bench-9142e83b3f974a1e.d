/root/repo/target/debug/deps/mutsvc_bench-9142e83b3f974a1e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmutsvc_bench-9142e83b3f974a1e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmutsvc_bench-9142e83b3f974a1e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
