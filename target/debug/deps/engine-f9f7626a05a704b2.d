/root/repo/target/debug/deps/engine-f9f7626a05a704b2.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-f9f7626a05a704b2.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
