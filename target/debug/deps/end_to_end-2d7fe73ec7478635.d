/root/repo/target/debug/deps/end_to_end-2d7fe73ec7478635.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2d7fe73ec7478635: tests/end_to_end.rs

tests/end_to_end.rs:
