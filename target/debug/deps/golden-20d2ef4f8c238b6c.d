/root/repo/target/debug/deps/golden-20d2ef4f8c238b6c.d: crates/analyze/tests/golden.rs

/root/repo/target/debug/deps/golden-20d2ef4f8c238b6c: crates/analyze/tests/golden.rs

crates/analyze/tests/golden.rs:
