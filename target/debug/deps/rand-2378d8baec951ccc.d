/root/repo/target/debug/deps/rand-2378d8baec951ccc.d: vendored/rand/src/lib.rs

/root/repo/target/debug/deps/rand-2378d8baec951ccc: vendored/rand/src/lib.rs

vendored/rand/src/lib.rs:
