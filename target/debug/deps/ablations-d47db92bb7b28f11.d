/root/repo/target/debug/deps/ablations-d47db92bb7b28f11.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-d47db92bb7b28f11.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
