/root/repo/target/debug/deps/rand_chacha-f7f53a819774c39e.d: vendored/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-f7f53a819774c39e.rlib: vendored/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-f7f53a819774c39e.rmeta: vendored/rand_chacha/src/lib.rs

vendored/rand_chacha/src/lib.rs:
