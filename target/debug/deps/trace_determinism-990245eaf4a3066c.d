/root/repo/target/debug/deps/trace_determinism-990245eaf4a3066c.d: crates/bench/tests/trace_determinism.rs

/root/repo/target/debug/deps/trace_determinism-990245eaf4a3066c: crates/bench/tests/trace_determinism.rs

crates/bench/tests/trace_determinism.rs:
