/root/repo/target/debug/deps/mutsvc_bench-9bd9371200c0d02d.d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

/root/repo/target/debug/deps/mutsvc_bench-9bd9371200c0d02d: crates/bench/src/lib.rs crates/bench/src/fault_artifacts.rs crates/bench/src/placement_report.rs crates/bench/src/simperf_report.rs crates/bench/src/trace_artifacts.rs

crates/bench/src/lib.rs:
crates/bench/src/fault_artifacts.rs:
crates/bench/src/placement_report.rs:
crates/bench/src/simperf_report.rs:
crates/bench/src/trace_artifacts.rs:
