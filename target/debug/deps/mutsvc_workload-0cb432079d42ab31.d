/root/repo/target/debug/deps/mutsvc_workload-0cb432079d42ab31.d: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs Cargo.toml

/root/repo/target/debug/deps/libmutsvc_workload-0cb432079d42ab31.rmeta: crates/workload/src/lib.rs crates/workload/src/driver.rs crates/workload/src/spec.rs crates/workload/src/stats.rs crates/workload/src/trace_report.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/driver.rs:
crates/workload/src/spec.rs:
crates/workload/src/stats.rs:
crates/workload/src/trace_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
