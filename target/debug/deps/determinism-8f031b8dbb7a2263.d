/root/repo/target/debug/deps/determinism-8f031b8dbb7a2263.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-8f031b8dbb7a2263: tests/determinism.rs

tests/determinism.rs:
