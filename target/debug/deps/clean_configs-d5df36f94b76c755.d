/root/repo/target/debug/deps/clean_configs-d5df36f94b76c755.d: crates/analyze/tests/clean_configs.rs

/root/repo/target/debug/deps/clean_configs-d5df36f94b76c755: crates/analyze/tests/clean_configs.rs

crates/analyze/tests/clean_configs.rs:
