/root/repo/target/debug/deps/negative-224cc3e4061d5328.d: crates/analyze/tests/negative.rs

/root/repo/target/debug/deps/negative-224cc3e4061d5328: crates/analyze/tests/negative.rs

crates/analyze/tests/negative.rs:
