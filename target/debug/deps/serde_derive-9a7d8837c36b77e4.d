/root/repo/target/debug/deps/serde_derive-9a7d8837c36b77e4.d: vendored/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-9a7d8837c36b77e4: vendored/serde_derive/src/lib.rs

vendored/serde_derive/src/lib.rs:
