/root/repo/target/debug/deps/mutsvc_core-4547d7e08fcfe53b.d: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

/root/repo/target/debug/deps/mutsvc_core-4547d7e08fcfe53b: crates/core/src/lib.rs crates/core/src/configs.rs crates/core/src/experiment.rs crates/core/src/faultsuite.rs crates/core/src/invariants.rs crates/core/src/paper.rs crates/core/src/report.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/configs.rs:
crates/core/src/experiment.rs:
crates/core/src/faultsuite.rs:
crates/core/src/invariants.rs:
crates/core/src/paper.rs:
crates/core/src/report.rs:
crates/core/src/topology.rs:
