/root/repo/target/debug/deps/engine-666a79a536f00a7e.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-666a79a536f00a7e.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
