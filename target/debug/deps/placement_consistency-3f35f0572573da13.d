/root/repo/target/debug/deps/placement_consistency-3f35f0572573da13.d: tests/placement_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libplacement_consistency-3f35f0572573da13.rmeta: tests/placement_consistency.rs Cargo.toml

tests/placement_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
