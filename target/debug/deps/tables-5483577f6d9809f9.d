/root/repo/target/debug/deps/tables-5483577f6d9809f9.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/tables-5483577f6d9809f9: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
