/root/repo/target/debug/deps/engine-1bafde5139e4cf17.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-1bafde5139e4cf17.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
