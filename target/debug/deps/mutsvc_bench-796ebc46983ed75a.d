/root/repo/target/debug/deps/mutsvc_bench-796ebc46983ed75a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mutsvc_bench-796ebc46983ed75a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
