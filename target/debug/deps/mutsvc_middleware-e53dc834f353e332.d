/root/repo/target/debug/deps/mutsvc_middleware-e53dc834f353e332.d: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/debug/deps/libmutsvc_middleware-e53dc834f353e332.rlib: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

/root/repo/target/debug/deps/libmutsvc_middleware-e53dc834f353e332.rmeta: crates/middleware/src/lib.rs crates/middleware/src/binding.rs crates/middleware/src/component.rs crates/middleware/src/descriptor.rs crates/middleware/src/invocation.rs crates/middleware/src/state.rs

crates/middleware/src/lib.rs:
crates/middleware/src/binding.rs:
crates/middleware/src/component.rs:
crates/middleware/src/descriptor.rs:
crates/middleware/src/invocation.rs:
crates/middleware/src/state.rs:
