/root/repo/target/debug/deps/rayon-47ec1806d1f08c58.d: vendored/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-47ec1806d1f08c58.rlib: vendored/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-47ec1806d1f08c58.rmeta: vendored/rayon/src/lib.rs

vendored/rayon/src/lib.rs:
