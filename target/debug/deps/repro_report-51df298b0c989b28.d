/root/repo/target/debug/deps/repro_report-51df298b0c989b28.d: crates/bench/src/bin/repro_report.rs

/root/repo/target/debug/deps/repro_report-51df298b0c989b28: crates/bench/src/bin/repro_report.rs

crates/bench/src/bin/repro_report.rs:
