/root/repo/target/debug/deps/paper_shapes-0c15da210a970cb0.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-0c15da210a970cb0: tests/paper_shapes.rs

tests/paper_shapes.rs:
