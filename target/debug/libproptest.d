/root/repo/target/debug/libproptest.rlib: /root/repo/vendored/proptest/src/lib.rs
