/root/repo/target/debug/libserde.rlib: /root/repo/vendored/serde/src/lib.rs /root/repo/vendored/serde_derive/src/lib.rs
