/root/repo/target/debug/librayon.rlib: /root/repo/vendored/rayon/src/lib.rs
