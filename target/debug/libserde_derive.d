/root/repo/target/debug/libserde_derive.so: /root/repo/vendored/serde_derive/src/lib.rs
