/root/repo/target/debug/examples/petstore_edge_deployment-9461e8071b60b0a7.d: examples/petstore_edge_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libpetstore_edge_deployment-9461e8071b60b0a7.rmeta: examples/petstore_edge_deployment.rs Cargo.toml

examples/petstore_edge_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
