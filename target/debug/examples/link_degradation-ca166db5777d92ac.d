/root/repo/target/debug/examples/link_degradation-ca166db5777d92ac.d: examples/link_degradation.rs Cargo.toml

/root/repo/target/debug/examples/liblink_degradation-ca166db5777d92ac.rmeta: examples/link_degradation.rs Cargo.toml

examples/link_degradation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
