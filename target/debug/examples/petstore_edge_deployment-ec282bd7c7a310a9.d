/root/repo/target/debug/examples/petstore_edge_deployment-ec282bd7c7a310a9.d: examples/petstore_edge_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libpetstore_edge_deployment-ec282bd7c7a310a9.rmeta: examples/petstore_edge_deployment.rs Cargo.toml

examples/petstore_edge_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
