/root/repo/target/debug/examples/link_degradation-1809016fde7e99af.d: examples/link_degradation.rs

/root/repo/target/debug/examples/link_degradation-1809016fde7e99af: examples/link_degradation.rs

examples/link_degradation.rs:
