/root/repo/target/debug/examples/placement_autodeploy-2d1c143314a81e4a.d: examples/placement_autodeploy.rs Cargo.toml

/root/repo/target/debug/examples/libplacement_autodeploy-2d1c143314a81e4a.rmeta: examples/placement_autodeploy.rs Cargo.toml

examples/placement_autodeploy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
