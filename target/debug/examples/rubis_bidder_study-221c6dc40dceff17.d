/root/repo/target/debug/examples/rubis_bidder_study-221c6dc40dceff17.d: examples/rubis_bidder_study.rs

/root/repo/target/debug/examples/rubis_bidder_study-221c6dc40dceff17: examples/rubis_bidder_study.rs

examples/rubis_bidder_study.rs:
