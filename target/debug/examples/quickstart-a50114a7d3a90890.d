/root/repo/target/debug/examples/quickstart-a50114a7d3a90890.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a50114a7d3a90890: examples/quickstart.rs

examples/quickstart.rs:
