/root/repo/target/debug/examples/placement_autodeploy-ec1c488be3b01da1.d: examples/placement_autodeploy.rs

/root/repo/target/debug/examples/placement_autodeploy-ec1c488be3b01da1: examples/placement_autodeploy.rs

examples/placement_autodeploy.rs:
