/root/repo/target/debug/examples/rubis_bidder_study-d5a42337e754f63e.d: examples/rubis_bidder_study.rs

/root/repo/target/debug/examples/rubis_bidder_study-d5a42337e754f63e: examples/rubis_bidder_study.rs

examples/rubis_bidder_study.rs:
