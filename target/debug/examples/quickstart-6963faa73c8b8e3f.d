/root/repo/target/debug/examples/quickstart-6963faa73c8b8e3f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6963faa73c8b8e3f: examples/quickstart.rs

examples/quickstart.rs:
