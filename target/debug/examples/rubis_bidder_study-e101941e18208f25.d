/root/repo/target/debug/examples/rubis_bidder_study-e101941e18208f25.d: examples/rubis_bidder_study.rs Cargo.toml

/root/repo/target/debug/examples/librubis_bidder_study-e101941e18208f25.rmeta: examples/rubis_bidder_study.rs Cargo.toml

examples/rubis_bidder_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
