/root/repo/target/debug/examples/placement_autodeploy-cd9bb6fcf1de169b.d: examples/placement_autodeploy.rs Cargo.toml

/root/repo/target/debug/examples/libplacement_autodeploy-cd9bb6fcf1de169b.rmeta: examples/placement_autodeploy.rs Cargo.toml

examples/placement_autodeploy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
