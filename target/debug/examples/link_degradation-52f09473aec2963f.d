/root/repo/target/debug/examples/link_degradation-52f09473aec2963f.d: examples/link_degradation.rs

/root/repo/target/debug/examples/link_degradation-52f09473aec2963f: examples/link_degradation.rs

examples/link_degradation.rs:
