/root/repo/target/debug/examples/w109check-796f8b85b84d8000.d: crates/analyze/examples/w109check.rs

/root/repo/target/debug/examples/w109check-796f8b85b84d8000: crates/analyze/examples/w109check.rs

crates/analyze/examples/w109check.rs:
