/root/repo/target/debug/examples/placement_autodeploy-efd944a3cec15742.d: examples/placement_autodeploy.rs

/root/repo/target/debug/examples/placement_autodeploy-efd944a3cec15742: examples/placement_autodeploy.rs

examples/placement_autodeploy.rs:
