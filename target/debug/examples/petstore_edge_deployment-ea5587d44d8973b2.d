/root/repo/target/debug/examples/petstore_edge_deployment-ea5587d44d8973b2.d: examples/petstore_edge_deployment.rs

/root/repo/target/debug/examples/petstore_edge_deployment-ea5587d44d8973b2: examples/petstore_edge_deployment.rs

examples/petstore_edge_deployment.rs:
