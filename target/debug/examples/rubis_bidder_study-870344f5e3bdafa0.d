/root/repo/target/debug/examples/rubis_bidder_study-870344f5e3bdafa0.d: examples/rubis_bidder_study.rs Cargo.toml

/root/repo/target/debug/examples/librubis_bidder_study-870344f5e3bdafa0.rmeta: examples/rubis_bidder_study.rs Cargo.toml

examples/rubis_bidder_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
