/root/repo/target/debug/examples/petstore_edge_deployment-73f115f33f6c1fcc.d: examples/petstore_edge_deployment.rs

/root/repo/target/debug/examples/petstore_edge_deployment-73f115f33f6c1fcc: examples/petstore_edge_deployment.rs

examples/petstore_edge_deployment.rs:
