//! Cross-layer consistency: the placement layer's automatic deployments
//! agree with the simulator's measurements — the configuration the optimizer
//! picks really is the one that measures fastest.

use mutable_services::core::{AppKind, Config, Scenario};
use mutable_services::placement::algorithms::greedy::{solve, GreedyOptions};
use mutable_services::placement::derive::{petstore_problem, rubis_problem};
use mutable_services::placement::{cost, HostId, Placement};

const REMOTE: [&str; 2] = ["remote1", "remote2"];

#[test]
fn optimizer_cost_ordering_matches_measured_ordering() {
    // Placement cost of centralized vs the optimized (replicated) deployment…
    let (problem, _) = petstore_problem();
    let centralized_cost = cost(&problem, &Placement::all_on(&problem, HostId(0)));
    let (_, optimized_cost) = solve(&problem, &GreedyOptions::default());
    assert!(optimized_cost < centralized_cost / 2.0);

    // …mirrors the simulator: async-updates beats centralized by a similar
    // margin for remote browsers.
    let centralized = Scenario::quick(AppKind::PetStore, Config::Centralized).run();
    let best = Scenario::quick(AppKind::PetStore, Config::AsyncUpdates).run();
    let before = centralized
        .stats
        .session_mean_over_groups(&REMOTE, "Browser")
        .unwrap();
    let after = best
        .stats
        .session_mean_over_groups(&REMOTE, "Browser")
        .unwrap();
    assert!(after < before / 2.0, "measured {before:.0} -> {after:.0}");
}

#[test]
fn derived_replication_set_matches_the_best_configuration() {
    // Components the optimizer replicates are exactly those the §4.5
    // descriptor replicates (modulo infrastructure beans).
    let (problem, ps) = petstore_problem();
    let (placement, _) = solve(&problem, &GreedyOptions::default());
    let (input, nodes) = Scenario::quick(AppKind::PetStore, Config::AsyncUpdates).build();

    for name in ["Catalog", "ItemEJB", "InventoryEJB", "ShoppingCart"] {
        let node = problem.graph.by_name(name).unwrap();
        let optimizer_replicates = !placement.replicas[node.index()].is_empty();
        let component = input.registry.by_name(name).unwrap();
        let descriptor_replicates = input.descriptor.placement(component).hosts(nodes.edge1);
        assert_eq!(optimizer_replicates, descriptor_replicates, "{name}");
    }
    for name in ["SignOnEJB", "OrderEJB", "AccountEJB"] {
        let node = problem.graph.by_name(name).unwrap();
        assert!(placement.replicas[node.index()].is_empty(), "{name}");
    }
    let _ = ps;
}

#[test]
fn rubis_derivation_is_stable() {
    // Building the problem twice gives identical structure (determinism of
    // the derivation walk).
    let (a, _) = rubis_problem();
    let (b, _) = rubis_problem();
    assert_eq!(a.graph.len(), b.graph.len());
    assert_eq!(a.graph.graph.edge_count(), b.graph.graph.edge_count());
    let (_, ca) = solve(&a, &GreedyOptions::default());
    let (_, cb) = solve(&b, &GreedyOptions::default());
    assert_eq!(ca.to_bits(), cb.to_bits());
}
