//! Reproducibility: identical seeds give bit-identical measurements across
//! the full stack; different seeds do not.

use mutable_services::core::{AppKind, Config, Scenario};
use mutable_services::desim::SimDuration;

fn short(app: AppKind, config: Config, seed: u64) -> mutable_services::workload::ExperimentReport {
    let mut s = Scenario::quick(app, config).with_seed(seed);
    s.warmup = SimDuration::from_secs(30);
    s.duration = SimDuration::from_secs(90);
    s.run()
}

#[test]
fn same_seed_same_tables() {
    for config in [
        Config::Centralized,
        Config::QueryCaching,
        Config::AsyncUpdates,
    ] {
        let a = short(AppKind::PetStore, config, 7);
        let b = short(AppKind::PetStore, config, 7);
        assert_eq!(a.completed, b.completed, "{}", config.name());
        assert_eq!(a.bind_totals, b.bind_totals, "{}", config.name());
        for (key, summary) in a.stats.iter() {
            let other = b.stats.series(&key.group, &key.pattern, &key.page).unwrap();
            assert_eq!(summary.mean().to_bits(), other.mean().to_bits(), "{key:?}");
        }
    }
}

#[test]
fn different_seed_different_samples() {
    let a = short(AppKind::Rubis, Config::RemoteFacade, 1);
    let b = short(AppKind::Rubis, Config::RemoteFacade, 2);
    let ma = a.stats.mean_ms("local", "Browser", "Item").unwrap();
    let mb = b.stats.mean_ms("local", "Browser", "Item").unwrap();
    assert_ne!(ma.to_bits(), mb.to_bits());
}

#[test]
fn staleness_accounting_is_deterministic_too() {
    let a = short(AppKind::Rubis, Config::AsyncUpdates, 3);
    let b = short(AppKind::Rubis, Config::AsyncUpdates, 3);
    assert_eq!(a.staleness_ms.count(), b.staleness_ms.count());
    assert_eq!(
        a.staleness_ms.mean().to_bits(),
        b.staleness_ms.mean().to_bits()
    );
}
