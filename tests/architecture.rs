//! Structural invariants: Figure 1's component relationships, descriptor
//! wiring across the five configurations, and the §5 design rules.

use mutable_services::apps::App;
use mutable_services::core::{AppKind, Config, Scenario};
use mutable_services::middleware::{ComponentKind, UpdatePropagation};

#[test]
fn petstore_architecture_matches_figure_1() {
    let (app, registry, _) = App::petstore(true);
    let App::PetStore(ps) = app else {
        unreachable!()
    };
    let c = ps.components;
    let edges = c.architecture_edges();
    // The figure's core relationships are present.
    for (from, to) in [
        (c.web, c.controller),
        (c.controller, c.cart),
        (c.cart, c.catalog),
        (c.catalog, c.item),
        (c.catalog, c.inventory),
        (c.customer, c.order),
        (c.customer, c.account),
    ] {
        assert!(edges.contains(&(from, to)), "missing edge");
    }
    // §5 design rule: the web tier never references entities directly.
    for (from, to) in edges {
        if from == c.web {
            assert_ne!(registry.spec(to).kind, ComponentKind::Entity);
        }
    }
}

#[test]
fn configurations_differ_only_in_descriptors() {
    // The same page built twice under different scenario configs (beyond the
    // one-time façade refactoring) is structurally identical — the paper's
    // "application code untouched" claim.
    let (input_a, _) = Scenario::quick(AppKind::Rubis, Config::RemoteFacade).build();
    let (input_b, _) = Scenario::quick(AppKind::Rubis, Config::AsyncUpdates).build();
    assert_eq!(input_a.registry.len(), input_b.registry.len());
    // Only descriptor knobs change.
    assert_ne!(
        input_a.descriptor.entity_propagation,
        input_b.descriptor.entity_propagation
    );
    assert_eq!(
        input_b.descriptor.entity_propagation,
        UpdatePropagation::AsyncPush
    );
}

#[test]
fn incremental_configurations_grow_monotonically() {
    // Each configuration strictly extends the previous one's edge footprint.
    let mut previous_edge_components = 0;
    for config in Config::all() {
        let (input, nodes) = Scenario::quick(AppKind::PetStore, config).build();
        let on_edge = input
            .descriptor
            .placements
            .values()
            .filter(|p| p.hosts(nodes.edge1))
            .count();
        assert!(
            on_edge >= previous_edge_components,
            "{}: {on_edge} < {previous_edge_components}",
            config.name()
        );
        previous_edge_components = on_edge;
    }
}

#[test]
fn every_config_places_every_component() {
    for app in AppKind::all() {
        for config in Config::all() {
            let (input, _) = Scenario::quick(app, config).build();
            for id in input.registry.ids() {
                // placement() panics if missing; reaching here proves totality.
                let _ = input.descriptor.placement(id);
            }
        }
    }
}

#[test]
fn facades_are_the_only_wide_area_entry_points() {
    // §5: "define façades as the only components that can be invoked by
    // remote clients" — in every distributed config, entities are never
    // placed on an edge without a co-located façade in front of them.
    for config in [
        Config::StatefulCaching,
        Config::QueryCaching,
        Config::AsyncUpdates,
    ] {
        let (input, nodes) = Scenario::quick(AppKind::PetStore, config).build();
        let catalog = input.registry.by_name("Catalog").unwrap();
        let item = input.registry.by_name("ItemEJB").unwrap();
        let item_on_edge = input.descriptor.placement(item).hosts(nodes.edge1);
        let catalog_on_edge = input.descriptor.placement(catalog).hosts(nodes.edge1);
        assert!(item_on_edge, "{}", config.name());
        assert!(
            catalog_on_edge,
            "entity replica without its façade in {}",
            config.name()
        );
    }
}
