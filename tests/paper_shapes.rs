//! Full paper-mode shape validation (Tables 6/7, Figures 7/8 criteria from
//! `DESIGN.md` §5). These run one-hour simulated windows per configuration —
//! a few seconds each in release mode, slower in debug — so they are
//! `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test paper_shapes -- --ignored
//! ```
//!
//! The same validation runs on every `repro-report --validate` invocation.

use mutable_services::core::{run_sweep, validate_shapes, AppKind};

#[test]
#[ignore = "paper-length windows; run with --release -- --ignored"]
fn petstore_reproduces_table_6_shapes() {
    let reports = run_sweep(AppKind::PetStore, false, 42);
    let violations = validate_shapes(AppKind::PetStore, &reports);
    assert!(violations.is_empty(), "violations: {violations:#?}");
}

#[test]
#[ignore = "paper-length windows; run with --release -- --ignored"]
fn rubis_reproduces_table_7_shapes() {
    let reports = run_sweep(AppKind::Rubis, false, 42);
    let violations = validate_shapes(AppKind::Rubis, &reports);
    assert!(violations.is_empty(), "violations: {violations:#?}");
}

#[test]
#[ignore = "paper-length windows; run with --release -- --ignored"]
fn shapes_hold_across_seeds() {
    for seed in [1, 99] {
        let reports = run_sweep(AppKind::PetStore, false, seed);
        let violations = validate_shapes(AppKind::PetStore, &reports);
        assert!(violations.is_empty(), "seed {seed}: {violations:#?}");
    }
}
