//! Cross-crate end-to-end tests: full scenarios through the façade crate,
//! using quick measurement windows. Criteria here are chosen to be robust
//! at 300 s windows (the full paper-mode validation lives in
//! `tests/paper_shapes.rs`).

use mutable_services::core::{AppKind, Config, Scenario};

const REMOTE: [&str; 2] = ["remote1", "remote2"];

#[test]
fn centralized_petstore_pays_two_wan_round_trips() {
    let report = Scenario::quick(AppKind::PetStore, Config::Centralized).run();
    let local = report.stats.mean_ms("local", "Browser", "Item").unwrap();
    let remote = report
        .stats
        .mean_ms_over_groups(&REMOTE, "Browser", "Item")
        .unwrap();
    let gap = remote - local;
    assert!((330.0..520.0).contains(&gap), "gap {gap:.0}ms");
    // Redirect pages pay a third round trip.
    let commit = report
        .stats
        .mean_ms_over_groups(&REMOTE, "Buyer", "Commit")
        .unwrap();
    assert!(
        commit > remote + 120.0,
        "commit {commit:.0} vs item {remote:.0}"
    );
}

#[test]
fn facade_localizes_session_pages_and_halves_browse_pages() {
    let centralized = Scenario::quick(AppKind::PetStore, Config::Centralized).run();
    let facade = Scenario::quick(AppKind::PetStore, Config::RemoteFacade).run();
    // Session-only buyer pages become local.
    for page in ["Checkout", "Billing", "SignOut"] {
        let v = facade
            .stats
            .mean_ms_over_groups(&REMOTE, "Buyer", page)
            .unwrap();
        assert!(v < 120.0, "{page} {v:.0}ms");
    }
    // One-RMI pages improve on centralized.
    let before = centralized
        .stats
        .mean_ms_over_groups(&REMOTE, "Browser", "Category")
        .unwrap();
    let after = facade
        .stats
        .mean_ms_over_groups(&REMOTE, "Browser", "Category")
        .unwrap();
    assert!(after < before - 40.0, "{before:.0} -> {after:.0}");
    // Verify Sign-in keeps two wide-area calls.
    let verify = facade
        .stats
        .mean_ms_over_groups(&REMOTE, "Buyer", "VerifySignIn")
        .unwrap();
    assert!(verify > 400.0, "verify {verify:.0}ms");
}

#[test]
fn sync_push_blocks_buyers_async_recovers_them() {
    let caching = Scenario::quick(AppKind::PetStore, Config::StatefulCaching).run();
    let asynch = Scenario::quick(AppKind::PetStore, Config::AsyncUpdates).run();
    let sync_commit = caching.stats.mean_ms("local", "Buyer", "Commit").unwrap();
    let async_commit = asynch.stats.mean_ms("local", "Buyer", "Commit").unwrap();
    assert!(
        sync_commit > async_commit * 2.0,
        "sync {sync_commit:.0} vs async {async_commit:.0}"
    );
    // The asynchronous run reports propagation delays (staleness windows).
    assert!(asynch.staleness_ms.count() > 0);
    assert!(
        caching.staleness_ms.count() == 0,
        "sync pushes are not deferred"
    );
    // Staleness is roughly a WAN trip (publish + delivery), well under 1s.
    let mean = asynch.staleness_ms.mean();
    assert!((100.0..600.0).contains(&mean), "staleness {mean:.0}ms");
}

#[test]
fn rubis_query_caching_localizes_remote_browsing() {
    let report = Scenario::quick(AppKind::Rubis, Config::QueryCaching).run();
    for page in ["AllCategories", "Category", "Item", "Bids"] {
        let v = report
            .stats
            .mean_ms_over_groups(&REMOTE, "Browser", page)
            .unwrap();
        assert!(v < 60.0, "{page} {v:.0}ms should be near-local");
    }
    // The writers still block on synchronous pushes.
    let store = report
        .stats
        .mean_ms_over_groups(&REMOTE, "Bidder", "StoreBid")
        .unwrap();
    assert!(store > 400.0, "StoreBid {store:.0}ms");
}

#[test]
fn remote_browser_sessions_collapse_across_the_sweep() {
    let centralized = Scenario::quick(AppKind::Rubis, Config::Centralized).run();
    let asynch = Scenario::quick(AppKind::Rubis, Config::AsyncUpdates).run();
    let before = centralized
        .stats
        .session_mean_over_groups(&REMOTE, "Browser")
        .unwrap();
    let after = asynch
        .stats
        .session_mean_over_groups(&REMOTE, "Browser")
        .unwrap();
    assert!(before > 400.0, "centralized {before:.0}ms");
    assert!(after < 60.0, "async {after:.0}ms");
    assert!(
        before / after > 8.0,
        "collapse factor {:.1}",
        before / after
    );
}

#[test]
fn load_distribution_shifts_cpu_to_the_edges() {
    let centralized = Scenario::quick(AppKind::PetStore, Config::Centralized).run();
    let facade = Scenario::quick(AppKind::PetStore, Config::RemoteFacade).run();
    let util = |r: &mutable_services::workload::ExperimentReport, n: &str| {
        r.cpu_utilization
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, u)| *u)
            .unwrap()
    };
    assert!(util(&centralized, "edge1") < 0.01);
    assert!(util(&facade, "edge1") > 0.05);
    assert!(util(&facade, "main") < util(&centralized, "main"));
    // The paper keeps every server under 40 %.
    for r in [&centralized, &facade] {
        for (name, u) in &r.cpu_utilization {
            assert!(*u < 0.55, "{name} at {u:.2}");
        }
    }
}
