//! The full Pet Store study: all five configurations, Table 6 and Figure 7,
//! compared against the published numbers.
//!
//! ```sh
//! cargo run --release --example petstore_edge_deployment [-- --paper]
//! ```

use mutable_services::core::{
    render_comparison, render_figure, render_table, run_sweep, validate_shapes, AppKind,
};

fn main() {
    let paper_mode = std::env::args().any(|a| a == "--paper");
    eprintln!(
        "running the five Pet Store configurations ({} windows)...",
        if paper_mode {
            "paper one-hour"
        } else {
            "quick"
        }
    );
    let reports = run_sweep(AppKind::PetStore, !paper_mode, 42);

    println!("{}", render_table(AppKind::PetStore, &reports));
    println!("{}", render_figure(AppKind::PetStore, &reports));
    println!("{}", render_comparison(AppKind::PetStore, &reports));

    let violations = validate_shapes(AppKind::PetStore, &reports);
    if violations.is_empty() {
        println!("All DESIGN.md §5 shape criteria hold for this run.");
    } else {
        println!("Shape deviations ({}):", violations.len());
        for v in violations {
            println!("  - {v}");
        }
        if !paper_mode {
            println!("(quick windows leave edge caches partly cold; try --paper)");
        }
    }
}
