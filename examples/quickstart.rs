//! Quickstart: measure one page under two configurations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mutable_services::core::{AppKind, Config, Scenario};

fn main() {
    println!("Java Pet Store, Item page, remote clients (quick windows)\n");
    for config in [
        Config::Centralized,
        Config::RemoteFacade,
        Config::StatefulCaching,
    ] {
        let report = Scenario::quick(AppKind::PetStore, config).run();
        let local = report.stats.mean_ms("local", "Browser", "Item").unwrap();
        let remote = report
            .stats
            .mean_ms_over_groups(&["remote1", "remote2"], "Browser", "Item")
            .unwrap();
        println!(
            "{:<18} local {:>5.0} ms   remote {:>5.0} ms   ({} requests measured)",
            config.name(),
            local,
            remote,
            report.completed
        );
    }
    println!("\nRead-only entity replicas on the edge servers absorb the WAN:");
    println!("the remote Item page collapses from ~2 round trips to local time.");
}
