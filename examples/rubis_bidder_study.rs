//! The RUBiS bidder's story: what each design pattern costs the *writers*.
//!
//! The paper's sharpest trade-off (§4.3 → §4.5): zero-staleness blocking
//! pushes make browsing local but punish every `StoreBid`/`StoreComment`;
//! asynchronous JMS propagation recovers the writers at the price of bounded
//! staleness. This example quantifies both sides, including the measured
//! propagation delay (staleness window) of the asynchronous configuration.
//!
//! ```sh
//! cargo run --release --example rubis_bidder_study
//! ```

use mutable_services::core::{AppKind, Config, Scenario};

fn main() {
    println!("RUBiS bidder pages across the five configurations (quick windows)\n");
    println!(
        "{:<18} {:>9} {:>9} {:>12} {:>12} {:>10}",
        "configuration", "StoreBid", "StoreCmnt", "bidder sess.", "browser sess.", "staleness"
    );
    for config in Config::all() {
        let report = Scenario::quick(AppKind::Rubis, config).run();
        let remote = ["remote1", "remote2"];
        let store_bid = report
            .stats
            .mean_ms_over_groups(&remote, "Bidder", "StoreBid")
            .unwrap();
        let store_comment = report
            .stats
            .mean_ms_over_groups(&remote, "Bidder", "StoreComment")
            .unwrap();
        let bidder = report
            .stats
            .session_mean_over_groups(&remote, "Bidder")
            .unwrap();
        let browser = report
            .stats
            .session_mean_over_groups(&remote, "Browser")
            .unwrap();
        let staleness = if report.staleness_ms.count() > 0 {
            format!("{:.0} ms", report.staleness_ms.mean())
        } else {
            "none".to_string()
        };
        println!(
            "{:<18} {:>7.0}ms {:>7.0}ms {:>10.0}ms {:>10.0}ms {:>10}",
            config.name(),
            store_bid,
            store_comment,
            bidder,
            browser,
            staleness
        );
    }
    println!("\nReading the table:");
    println!("- stateful/query caching: browsing collapses, but writers block on WAN pushes;");
    println!("- async-updates: writers recover; replicas trail the primary by ~one WAN trip.");
}
