//! Automatic deployment: derive the component interaction graphs from the
//! applications and let the placement algorithms rediscover the paper's
//! hand-crafted configurations.
//!
//! ```sh
//! cargo run --release --example placement_autodeploy
//! ```

use mutable_services::placement::algorithms::greedy::{solve as greedy, GreedyOptions};
use mutable_services::placement::algorithms::multilevel::{solve as multilevel, MultilevelOptions};
use mutable_services::placement::algorithms::{solve_multistart, MultistartOptions};
use mutable_services::placement::derive::{petstore_problem, rubis_problem};
use mutable_services::placement::{cost, cost_breakdown, HostId, Placement, PlacementProblem};

fn study(name: &str, problem: &PlacementProblem) {
    println!("== {name}: {} components ==", problem.graph.len());
    let centralized = Placement::all_on(problem, HostId(0));
    println!(
        "  centralized cost:         {:>8.0} ms/s",
        cost(problem, &centralized)
    );

    let ml = multilevel(problem, &MultilevelOptions::default());
    println!(
        "  multilevel partitioning:  {:>8.0} ms/s (primaries only)",
        cost(problem, &ml)
    );

    let (placement, c) = greedy(
        problem,
        &GreedyOptions {
            with_replication: false,
            ..Default::default()
        },
    );
    println!("  greedy (no replication):  {:>8.0} ms/s", c);
    drop(placement);

    let (_, c) = solve_multistart(problem, &MultistartOptions::default());
    println!(
        "  parallel multi-start:     {:>8.0} ms/s (deterministic across thread counts)",
        c
    );

    let (placement, c) = greedy(problem, &GreedyOptions::default());
    let b = cost_breakdown(problem, &placement);
    println!(
        "  greedy + read replicas:   {:>8.0} ms/s (comm {:.0} + consistency {:.0})",
        c, b.communication, b.consistency
    );

    println!("  derived deployment:");
    for node in problem.graph.graph.node_indices() {
        let comp = &problem.graph.graph[node];
        let idx = node.index();
        let primary = &problem.hosts[placement.primary[idx].0].name;
        let replicas: Vec<&str> = placement.replicas[idx]
            .iter()
            .map(|h| problem.hosts[h.0].name.as_str())
            .collect();
        if replicas.is_empty() {
            println!("    {:<26} @ {primary}", comp.name);
        } else {
            println!(
                "    {:<26} @ {primary} + read-only on {}",
                comp.name,
                replicas.join(", ")
            );
        }
    }
    println!();
}

fn main() {
    let (ps_problem, _) = petstore_problem();
    study("Java Pet Store", &ps_problem);
    let (rubis_problem, _) = rubis_problem();
    study("RUBiS", &rubis_problem);
    println!("The greedy optimizer independently arrives at the paper's design rules:");
    println!("session tier + catalog caches at the edges, authoritative state at main.");
}
