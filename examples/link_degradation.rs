//! Failure injection: what happens to each configuration when the WAN
//! degrades mid-run (latency triples for the middle third of the window)?
//!
//! The paper's project context ("Mutable Services") motivates exactly this:
//! adapting deployments to *unfriendly system conditions — network
//! congestion, bandwidth mismatches and high latency*. The distributed
//! configurations insulate remote clients from the degradation because most
//! of their pages never touch the WAN.
//!
//! ```sh
//! cargo run --release --example link_degradation
//! ```

use mutable_services::core::{AppKind, Config, Scenario};
use mutable_services::desim::{SimDuration, SimTime};
use mutable_services::workload::{run_experiment, NetAction};

const REMOTE: [&str; 2] = ["remote1", "remote2"];

fn main() {
    println!("WAN degradation (one-way latency x3 for the middle third of the run)\n");
    println!(
        "{:<18} {:>16} {:>16} {:>10}",
        "configuration", "healthy remote", "degraded remote", "impact"
    );
    for config in [
        Config::Centralized,
        Config::RemoteFacade,
        Config::QueryCaching,
    ] {
        let scenario = Scenario::quick(AppKind::PetStore, config);
        let healthy = scenario.run();

        let (mut input, _) = scenario.build();
        let horizon = input.spec.horizon() - SimTime::ZERO;
        input.spec = input
            .spec
            .with_perturbation(
                horizon.mul_f64(1.0 / 3.0),
                NetAction::ScaleWanLatency {
                    threshold: SimDuration::from_millis(50),
                    factor: 3.0,
                },
            )
            .with_perturbation(horizon.mul_f64(2.0 / 3.0), NetAction::Restore);
        let degraded = run_experiment(input);

        let h = healthy
            .stats
            .session_mean_over_groups(&REMOTE, "Browser")
            .unwrap();
        let d = degraded
            .stats
            .session_mean_over_groups(&REMOTE, "Browser")
            .unwrap();
        println!(
            "{:<18} {:>14.0}ms {:>14.0}ms {:>9.0}%",
            config.name(),
            h,
            d,
            (d - h) / h * 100.0
        );
    }
    println!("\nEdge caching absorbs the degradation: pages that never cross the WAN");
    println!("cannot be hurt by it — the paper's insulation argument, quantified.");
}
