//! Tables: rows, columns and hash indexes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::value::{RowId, Value};

/// Identifies a table within a [`Database`](crate::database::Database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub(crate) usize);

impl TableId {
    /// Dense index of the table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Column description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Whether an equality hash index is maintained.
    pub indexed: bool,
}

/// A heap of rows plus optional per-column hash indexes.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<ColumnDef>,
    /// Average serialized row size, used for result-set byte accounting.
    row_bytes: u64,
    rows: HashMap<RowId, Vec<Value>>,
    /// column index -> value -> row ids (insertion-ordered within a value).
    indexes: HashMap<usize, HashMap<Value, Vec<RowId>>>,
    next_id: u64,
}

impl Table {
    pub(crate) fn new(name: String, columns: Vec<ColumnDef>, row_bytes: u64) -> Self {
        let indexes = columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.indexed)
            .map(|(i, _)| (i, HashMap::new()))
            .collect();
        Table {
            name,
            columns,
            row_bytes,
            rows: HashMap::new(),
            indexes,
            next_id: 1,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Average serialized row size in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Inserts a row, assigning a fresh [`RowId`].
    ///
    /// # Panics
    ///
    /// Panics if the arity of `values` does not match the schema.
    pub fn insert(&mut self, values: Vec<Value>) -> RowId {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity mismatch in table {}",
            self.name
        );
        let id = RowId(self.next_id);
        self.next_id += 1;
        for (&col, index) in &mut self.indexes {
            index.entry(values[col].clone()).or_default().push(id);
        }
        self.rows.insert(id, values);
        id
    }

    /// Fetches a row by primary key.
    pub fn get(&self, id: RowId) -> Option<&[Value]> {
        self.rows.get(&id).map(Vec::as_slice)
    }

    /// Reads one cell.
    pub fn cell(&self, id: RowId, column: usize) -> Option<&Value> {
        self.rows.get(&id).and_then(|r| r.get(column))
    }

    /// Updates one cell; returns the previous value, or `None` if the row
    /// does not exist.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range for an existing row.
    pub fn update(&mut self, id: RowId, column: usize, value: Value) -> Option<Value> {
        let row = self.rows.get_mut(&id)?;
        assert!(
            column < row.len(),
            "column {column} out of range in {}",
            self.name
        );
        let old = std::mem::replace(&mut row[column], value.clone());
        if let Some(index) = self.indexes.get_mut(&column) {
            if let Some(ids) = index.get_mut(&old) {
                ids.retain(|&r| r != id);
                if ids.is_empty() {
                    index.remove(&old);
                }
            }
            index.entry(value).or_default().push(id);
        }
        Some(old)
    }

    /// Deletes a row; returns its values if it existed.
    pub fn delete(&mut self, id: RowId) -> Option<Vec<Value>> {
        let row = self.rows.remove(&id)?;
        for (&col, index) in &mut self.indexes {
            if let Some(ids) = index.get_mut(&row[col]) {
                ids.retain(|&r| r != id);
                if ids.is_empty() {
                    index.remove(&row[col]);
                }
            }
        }
        Some(row)
    }

    /// Row ids whose `column` equals `value`. Uses the hash index when one
    /// exists, otherwise scans. Results are sorted for determinism.
    pub fn find_eq(&self, column: usize, value: &Value) -> Vec<RowId> {
        let mut ids = if let Some(index) = self.indexes.get(&column) {
            index.get(value).cloned().unwrap_or_default()
        } else {
            self.rows
                .iter()
                .filter(|(_, r)| &r[column] == value)
                .map(|(&id, _)| id)
                .collect()
        };
        ids.sort_unstable();
        ids
    }

    /// Row ids whose string `column` contains `needle` (case-insensitive) —
    /// the keyword-search query shape. Always a scan.
    pub fn find_like(&self, column: usize, needle: &str) -> Vec<RowId> {
        let needle = needle.to_ascii_lowercase();
        let mut ids: Vec<RowId> = self
            .rows
            .iter()
            .filter(|(_, r)| {
                r[column]
                    .as_str()
                    .is_some_and(|s| s.to_ascii_lowercase().contains(&needle))
            })
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// All row ids, sorted.
    pub fn all_ids(&self) -> Vec<RowId> {
        let mut ids: Vec<RowId> = self.rows.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(
            "person".into(),
            vec![
                ColumnDef {
                    name: "name".into(),
                    indexed: false,
                },
                ColumnDef {
                    name: "city".into(),
                    indexed: true,
                },
            ],
            64,
        );
        t.insert(vec!["ann".into(), "nyc".into()]);
        t.insert(vec!["bob".into(), "sf".into()]);
        t.insert(vec!["cal".into(), "nyc".into()]);
        t
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let t = people();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(RowId(1)).unwrap()[0], Value::from("ann"));
        assert_eq!(t.all_ids(), vec![RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn indexed_lookup_matches_scan() {
        let t = people();
        let city = t.column("city").unwrap();
        assert_eq!(t.find_eq(city, &"nyc".into()), vec![RowId(1), RowId(3)]);
        let name = t.column("name").unwrap();
        // Unindexed column falls back to a scan.
        assert_eq!(t.find_eq(name, &"bob".into()), vec![RowId(2)]);
    }

    #[test]
    fn update_maintains_index() {
        let mut t = people();
        let city = t.column("city").unwrap();
        let old = t.update(RowId(1), city, "sf".into());
        assert_eq!(old, Some("nyc".into()));
        assert_eq!(t.find_eq(city, &"nyc".into()), vec![RowId(3)]);
        assert_eq!(t.find_eq(city, &"sf".into()), vec![RowId(1), RowId(2)]);
        assert_eq!(t.update(RowId(99), city, "la".into()), None);
    }

    #[test]
    fn delete_maintains_index() {
        let mut t = people();
        let city = t.column("city").unwrap();
        assert!(t.delete(RowId(3)).is_some());
        assert_eq!(t.find_eq(city, &"nyc".into()), vec![RowId(1)]);
        assert!(t.delete(RowId(3)).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn like_is_case_insensitive_substring() {
        let t = people();
        let name = t.column("name").unwrap();
        assert_eq!(t.find_like(name, "A"), vec![RowId(1), RowId(3)]);
        assert_eq!(t.find_like(name, "zzz"), Vec::<RowId>::new());
    }

    #[test]
    fn cell_access() {
        let t = people();
        assert_eq!(t.cell(RowId(2), 1), Some(&Value::from("sf")));
        assert_eq!(t.cell(RowId(9), 0), None);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = people();
        t.insert(vec!["x".into()]);
    }
}
