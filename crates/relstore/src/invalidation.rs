//! Cached-query invalidation.
//!
//! Edge query caches (paper §4.4) must know which writes invalidate which
//! cached results. The paper leaves identification of invalidating operations
//! to the application/deployment descriptor; we implement the precise check a
//! container could derive automatically from EJB QL (§5): a mutation affects
//! a cached query iff it can change the query's result *content*.

use crate::database::{MutationEffect, Query};

/// Does `effect` invalidate a cached result of `query`?
///
/// Sound but slightly conservative: `Like` queries are invalidated by any
/// mutation of their table (keyword search predicates are opaque), matching
/// the paper's observation that such queries are not worth caching.
pub fn affects(effect: &MutationEffect, query: &Query) -> bool {
    if !effect.applied || effect.table != query.table() {
        return false;
    }
    match query {
        Query::ByPk { id, .. } => effect.row == *id,
        Query::Eq { column, value, .. } => {
            // The row matches the predicate now…
            let matches_now = effect
                .after
                .as_ref()
                .and_then(|r| r.get(*column))
                .is_some_and(|v| v == value);
            // …or matched before an update/delete changed it.
            let matched_before = match (&effect.changed, &effect.after) {
                // An update changed the predicate column: compare the old value.
                (Some((changed_col, old)), _) if changed_col == column => old == value,
                // An update of some other column: membership is unchanged and
                // already decided by `matches_now`.
                (Some(_), _) => false,
                // A delete: the old row is gone, so membership before the
                // write is unknown — be conservative.
                (None, None) => true,
                // An insert: membership is decided by `matches_now`.
                (None, Some(_)) => false,
            };
            matches_now || matched_before
        }
        Query::Like { .. } => true,
        Query::All { .. } => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{DatabaseBuilder, Mutation, Query};
    use crate::table::TableId;
    use crate::value::{RowId, Value};

    fn setup() -> (crate::database::Database, TableId, TableId) {
        let mut b = DatabaseBuilder::new();
        let item = b.table("item", &["name", "*product"], 100);
        let inv = b.table("inventory", &["*item", "qty"], 40);
        let mut db = b.build();
        for i in 0..4i64 {
            let id = db
                .table_mut(item)
                .insert(vec![format!("i{i}").into(), Value::Int(i % 2)]);
            db.table_mut(inv).insert(vec![id.into(), Value::Int(100)]);
        }
        (db, item, inv)
    }

    #[test]
    fn cross_table_writes_never_invalidate() {
        let (mut db, item, inv) = setup();
        let products_q = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        // Decrement inventory: must not invalidate an item query.
        let e = db.mutate(Mutation::Update {
            table: inv,
            id: RowId(1),
            column: 1,
            value: Value::Int(99),
        });
        assert!(!affects(&e, &products_q));
    }

    #[test]
    fn matching_insert_invalidates_eq() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let q1 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(1),
        };
        let e = db.mutate(Mutation::Insert {
            table: item,
            values: vec!["new".into(), Value::Int(0)],
        });
        assert!(affects(&e, &q0));
        assert!(!affects(&e, &q1));
    }

    #[test]
    fn update_invalidates_old_and_new_groups() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let q1 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(1),
        };
        let q2 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(2),
        };
        // Move row 1 from product 0 to product 2.
        let e = db.mutate(Mutation::Update {
            table: item,
            id: RowId(1),
            column: 1,
            value: Value::Int(2),
        });
        assert!(affects(&e, &q0), "old group loses a row");
        assert!(affects(&e, &q2), "new group gains a row");
        assert!(!affects(&e, &q1), "unrelated group untouched");
    }

    #[test]
    fn update_of_other_column_invalidates_current_group_only() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let q1 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(1),
        };
        // Rename row 2 (product 1): content change inside group 1.
        let e = db.mutate(Mutation::Update {
            table: item,
            id: RowId(2),
            column: 0,
            value: "renamed".into(),
        });
        assert!(affects(&e, &q1));
        assert!(!affects(&e, &q0));
    }

    #[test]
    fn pk_query_invalidated_by_its_row_only() {
        let (mut db, _, inv) = setup();
        let q = Query::ByPk {
            table: inv,
            id: RowId(2),
        };
        let hit = db.mutate(Mutation::Update {
            table: inv,
            id: RowId(2),
            column: 1,
            value: Value::Int(0),
        });
        let miss = db.mutate(Mutation::Update {
            table: inv,
            id: RowId(3),
            column: 1,
            value: Value::Int(0),
        });
        assert!(affects(&hit, &q));
        assert!(!affects(&miss, &q));
    }

    #[test]
    fn like_and_all_are_conservatively_invalidated() {
        let (mut db, item, _) = setup();
        let like = Query::Like {
            table: item,
            column: 0,
            needle: "i".into(),
        };
        let all = Query::All { table: item };
        let e = db.mutate(Mutation::Update {
            table: item,
            id: RowId(1),
            column: 0,
            value: "x".into(),
        });
        assert!(affects(&e, &like));
        assert!(affects(&e, &all));
    }

    #[test]
    fn unapplied_mutations_never_invalidate() {
        let (mut db, item, _) = setup();
        let q = Query::All { table: item };
        let e = db.mutate(Mutation::Delete {
            table: item,
            id: RowId(99),
        });
        assert!(!affects(&e, &q));
    }

    #[test]
    fn delete_invalidates_eq_conservatively() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let e = db.mutate(Mutation::Delete {
            table: item,
            id: RowId(1),
        });
        assert!(affects(&e, &q0));
    }
}
