//! Cached-query invalidation.
//!
//! Edge query caches (paper §4.4) must know which writes invalidate which
//! cached results. The paper leaves identification of invalidating operations
//! to the application/deployment descriptor; we implement the precise check a
//! container could derive automatically from EJB QL (§5): a mutation affects
//! a cached query iff it can change the query's result *content*.

use std::collections::BTreeSet;

use crate::database::{MutationEffect, Query};

/// Does `effect` invalidate a cached result of `query`?
///
/// Sound but slightly conservative: `Like` queries are invalidated by any
/// mutation of their table (keyword search predicates are opaque), matching
/// the paper's observation that such queries are not worth caching.
pub fn affects(effect: &MutationEffect, query: &Query) -> bool {
    if !effect.applied || effect.table != query.table() {
        return false;
    }
    match query {
        Query::ByPk { id, .. } => effect.row == *id,
        Query::Eq { column, value, .. } => {
            // The row matches the predicate now…
            let matches_now = effect
                .after
                .as_ref()
                .and_then(|r| r.get(*column))
                .is_some_and(|v| v == value);
            // …or matched before an update/delete changed it.
            let matched_before = match (&effect.changed, &effect.after) {
                // An update changed the predicate column: compare the old value.
                (Some((changed_col, old)), _) if changed_col == column => old == value,
                // An update of some other column: membership is unchanged and
                // already decided by `matches_now`.
                (Some(_), _) => false,
                // A delete: the old row is gone, so membership before the
                // write is unknown — be conservative.
                (None, None) => true,
                // An insert: membership is decided by `matches_now`.
                (None, Some(_)) => false,
            };
            matches_now || matched_before
        }
        Query::Like { .. } => true,
        Query::All { .. } => true,
    }
}

/// Replica-side cursor over the authority's invalidation push stream.
///
/// The authority numbers its pushes with a dense, monotonically increasing
/// generation (1, 2, 3, …). Asynchronous delivery (paper §4.3) can reorder,
/// duplicate, or — under injected faults — drop pushes entirely. The cursor
/// gives the replica two guarantees regardless:
///
/// * **The watermark never regresses.** Stale replays and duplicates are
///   recognised and ignored; applying pushes in any order converges to the
///   same watermark.
/// * **A dropped push is detectable.** The watermark only advances over
///   *contiguous* generations, so a gap holds it back and
///   [`GenerationCursor::lag`] against the authority's generation stays
///   positive until the replica resynchronises ([`GenerationCursor::resync`],
///   modelling a full re-fetch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenerationCursor {
    /// Highest generation through which every push has been applied.
    contiguous: u64,
    /// Applied generations above the watermark (out-of-order arrivals).
    pending: BTreeSet<u64>,
}

impl GenerationCursor {
    /// A fresh cursor: nothing applied, watermark 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the push numbered `generation`. Returns `true` if it was
    /// fresh, `false` for a duplicate or already-covered replay (ignored —
    /// the watermark never moves backwards).
    pub fn apply(&mut self, generation: u64) -> bool {
        if generation <= self.contiguous || !self.pending.insert(generation) {
            return false;
        }
        while self.pending.remove(&(self.contiguous + 1)) {
            self.contiguous += 1;
        }
        true
    }

    /// Highest generation through which no push is missing.
    pub fn watermark(&self) -> u64 {
        self.contiguous
    }

    /// Generations above the watermark that arrived out of order.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// How far the replica is behind an authority at `authority_generation`:
    /// 0 means provably up to date, anything positive means pushes are
    /// missing (lost or still in flight) — the replica is detectably stale.
    pub fn lag(&self, authority_generation: u64) -> u64 {
        authority_generation.saturating_sub(self.contiguous)
    }

    /// Resynchronises with the authority (a full re-fetch at
    /// `authority_generation`): the watermark jumps forward and buffered
    /// out-of-order pushes at or below it are discarded.
    pub fn resync(&mut self, authority_generation: u64) {
        self.contiguous = self.contiguous.max(authority_generation);
        let keep = self.pending.split_off(&(self.contiguous + 1));
        self.pending = keep;
        while self.pending.remove(&(self.contiguous + 1)) {
            self.contiguous += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{DatabaseBuilder, Mutation, Query};
    use crate::table::TableId;
    use crate::value::{RowId, Value};

    fn setup() -> (crate::database::Database, TableId, TableId) {
        let mut b = DatabaseBuilder::new();
        let item = b.table("item", &["name", "*product"], 100);
        let inv = b.table("inventory", &["*item", "qty"], 40);
        let mut db = b.build();
        for i in 0..4i64 {
            let id = db
                .table_mut(item)
                .insert(vec![format!("i{i}").into(), Value::Int(i % 2)]);
            db.table_mut(inv).insert(vec![id.into(), Value::Int(100)]);
        }
        (db, item, inv)
    }

    #[test]
    fn cross_table_writes_never_invalidate() {
        let (mut db, item, inv) = setup();
        let products_q = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        // Decrement inventory: must not invalidate an item query.
        let e = db.mutate(Mutation::Update {
            table: inv,
            id: RowId(1),
            column: 1,
            value: Value::Int(99),
        });
        assert!(!affects(&e, &products_q));
    }

    #[test]
    fn matching_insert_invalidates_eq() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let q1 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(1),
        };
        let e = db.mutate(Mutation::Insert {
            table: item,
            values: vec!["new".into(), Value::Int(0)],
        });
        assert!(affects(&e, &q0));
        assert!(!affects(&e, &q1));
    }

    #[test]
    fn update_invalidates_old_and_new_groups() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let q1 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(1),
        };
        let q2 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(2),
        };
        // Move row 1 from product 0 to product 2.
        let e = db.mutate(Mutation::Update {
            table: item,
            id: RowId(1),
            column: 1,
            value: Value::Int(2),
        });
        assert!(affects(&e, &q0), "old group loses a row");
        assert!(affects(&e, &q2), "new group gains a row");
        assert!(!affects(&e, &q1), "unrelated group untouched");
    }

    #[test]
    fn update_of_other_column_invalidates_current_group_only() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let q1 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(1),
        };
        // Rename row 2 (product 1): content change inside group 1.
        let e = db.mutate(Mutation::Update {
            table: item,
            id: RowId(2),
            column: 0,
            value: "renamed".into(),
        });
        assert!(affects(&e, &q1));
        assert!(!affects(&e, &q0));
    }

    #[test]
    fn pk_query_invalidated_by_its_row_only() {
        let (mut db, _, inv) = setup();
        let q = Query::ByPk {
            table: inv,
            id: RowId(2),
        };
        let hit = db.mutate(Mutation::Update {
            table: inv,
            id: RowId(2),
            column: 1,
            value: Value::Int(0),
        });
        let miss = db.mutate(Mutation::Update {
            table: inv,
            id: RowId(3),
            column: 1,
            value: Value::Int(0),
        });
        assert!(affects(&hit, &q));
        assert!(!affects(&miss, &q));
    }

    #[test]
    fn like_and_all_are_conservatively_invalidated() {
        let (mut db, item, _) = setup();
        let like = Query::Like {
            table: item,
            column: 0,
            needle: "i".into(),
        };
        let all = Query::All { table: item };
        let e = db.mutate(Mutation::Update {
            table: item,
            id: RowId(1),
            column: 0,
            value: "x".into(),
        });
        assert!(affects(&e, &like));
        assert!(affects(&e, &all));
    }

    #[test]
    fn unapplied_mutations_never_invalidate() {
        let (mut db, item, _) = setup();
        let q = Query::All { table: item };
        let e = db.mutate(Mutation::Delete {
            table: item,
            id: RowId(99),
        });
        assert!(!affects(&e, &q));
    }

    /// Out-of-order delivery converges: any arrival order of a complete
    /// prefix yields the same watermark, and it never moves backwards.
    #[test]
    fn out_of_order_pushes_converge_without_regressing() {
        let mut c = GenerationCursor::new();
        assert!(c.apply(2));
        assert_eq!(c.watermark(), 0, "gap at 1 holds the watermark");
        assert_eq!(c.pending(), 1);
        assert!(c.apply(4));
        assert!(c.apply(1));
        assert_eq!(c.watermark(), 2, "1 arrived, 1..=2 now contiguous");
        assert!(c.apply(3));
        assert_eq!(c.watermark(), 4);
        assert_eq!(c.pending(), 0);

        // The same set in a different order lands on the same cursor.
        let mut d = GenerationCursor::new();
        for g in [4, 3, 2, 1] {
            d.apply(g);
        }
        assert_eq!(c, d);
    }

    #[test]
    fn duplicate_and_stale_replays_are_ignored() {
        let mut c = GenerationCursor::new();
        assert!(c.apply(1));
        assert!(c.apply(2));
        assert!(!c.apply(2), "duplicate above nothing");
        assert!(!c.apply(1), "replay below the watermark");
        assert_eq!(c.watermark(), 2);
        assert!(c.apply(4));
        assert!(!c.apply(4), "duplicate of a pending push");
        assert_eq!(c.watermark(), 2);
    }

    /// A dropped push leaves the replica *detectably* stale: the watermark
    /// stalls at the gap and the lag against the authority stays positive —
    /// forever — until an explicit resync.
    #[test]
    fn dropped_push_is_detectable_until_resync() {
        let mut c = GenerationCursor::new();
        c.apply(1);
        // Push 2 is lost on a faulty link; 3..=5 arrive fine.
        for g in [3, 4, 5] {
            c.apply(g);
        }
        assert_eq!(c.watermark(), 1);
        assert_eq!(c.lag(5), 4, "replica knows it is behind");
        assert_eq!(c.pending(), 3);

        // Re-fetch from the authority at generation 5.
        c.resync(5);
        assert_eq!(c.watermark(), 5);
        assert_eq!(c.lag(5), 0);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn resync_never_regresses_and_keeps_future_pushes() {
        let mut c = GenerationCursor::new();
        for g in 1..=6 {
            c.apply(g);
        }
        c.resync(3); // a lagging snapshot cannot move the watermark back
        assert_eq!(c.watermark(), 6);

        let mut d = GenerationCursor::new();
        d.apply(5); // in-flight push from beyond the snapshot
        d.apply(7);
        d.resync(4);
        assert_eq!(d.watermark(), 5, "buffered 5 extends the snapshot");
        assert_eq!(d.pending(), 1, "7 still waits for 6");
        assert_eq!(d.lag(7), 2);
    }

    #[test]
    fn delete_invalidates_eq_conservatively() {
        let (mut db, item, _) = setup();
        let q0 = Query::Eq {
            table: item,
            column: 1,
            value: Value::Int(0),
        };
        let e = db.mutate(Mutation::Delete {
            table: item,
            id: RowId(1),
        });
        assert!(affects(&e, &q0));
    }
}
