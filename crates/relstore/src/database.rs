//! The database: named tables, query execution and mutations with effects.
//!
//! Costs follow a simple statement model — a per-statement base (parse +
//! plan + round trip inside the DBMS host) plus per-row scan and return
//! charges — which is all the paper's analysis needs: its databases "never
//! became a performance bottleneck" (§3.1, < 5 % CPU), but *query shape*
//! (indexed lookup vs keyword scan vs write) still determines local response
//! composition.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mutsvc_desim::time::SimDuration;

use crate::table::{ColumnDef, Table, TableId};
use crate::value::{RowId, Value};

/// CPU cost parameters for statement execution on the database host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed cost per read statement.
    pub statement_base: SimDuration,
    /// Cost per row in the result set.
    pub per_row_returned: SimDuration,
    /// Cost per row scanned (unindexed predicates, LIKE).
    pub per_row_scanned: SimDuration,
    /// Fixed cost per write statement.
    pub write_base: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            statement_base: SimDuration::from_micros(1_500),
            per_row_returned: SimDuration::from_micros(30),
            per_row_scanned: SimDuration::from_micros(5),
            write_base: SimDuration::from_micros(2_500),
        }
    }
}

/// A read query shape.
///
/// `Ord` gives propagation code a cheap canonical order (variant, then
/// fields) for deterministic invalidation batches without string keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Query {
    /// Primary-key fetch.
    ByPk {
        /// Target table.
        table: TableId,
        /// Key.
        id: RowId,
    },
    /// Equality predicate (`WHERE column = value`).
    Eq {
        /// Target table.
        table: TableId,
        /// Column index.
        column: usize,
        /// Matched value.
        value: Value,
    },
    /// Case-insensitive substring search (`WHERE column LIKE %needle%`).
    Like {
        /// Target table.
        table: TableId,
        /// Column index.
        column: usize,
        /// Search term.
        needle: String,
    },
    /// Full-table fetch.
    All {
        /// Target table.
        table: TableId,
    },
}

impl Query {
    /// The table this query reads.
    pub fn table(&self) -> TableId {
        match self {
            Query::ByPk { table, .. }
            | Query::Eq { table, .. }
            | Query::Like { table, .. }
            | Query::All { table } => *table,
        }
    }
}

/// The result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Matching row ids (sorted).
    pub rows: Vec<RowId>,
    /// Serialized size of the result set.
    pub bytes: u64,
    /// CPU cost on the database host.
    pub cpu: SimDuration,
}

impl QueryOutcome {
    /// Number of matching rows.
    pub fn row_count(&self) -> u64 {
        self.rows.len() as u64
    }
}

/// A write operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Insert a new row.
    Insert {
        /// Target table.
        table: TableId,
        /// Row values (schema order).
        values: Vec<Value>,
    },
    /// Update one cell of an existing row.
    Update {
        /// Target table.
        table: TableId,
        /// Row key.
        id: RowId,
        /// Column index.
        column: usize,
        /// New value.
        value: Value,
    },
    /// Delete a row.
    Delete {
        /// Target table.
        table: TableId,
        /// Row key.
        id: RowId,
    },
}

impl Mutation {
    /// The table this mutation writes.
    pub fn table(&self) -> TableId {
        match self {
            Mutation::Insert { table, .. }
            | Mutation::Update { table, .. }
            | Mutation::Delete { table, .. } => *table,
        }
    }
}

/// What a mutation did — enough information to decide which cached queries
/// it invalidates (see [`crate::invalidation::affects`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MutationEffect {
    /// Table written.
    pub table: TableId,
    /// Row affected (the fresh id for inserts).
    pub row: RowId,
    /// Row contents after the mutation (`None` after a delete or failed update).
    pub after: Option<Vec<Value>>,
    /// For updates: `(column, old value)`.
    pub changed: Option<(usize, Value)>,
    /// CPU cost on the database host.
    pub cpu: SimDuration,
    /// Whether the mutation found its target (updates/deletes of missing rows
    /// are no-ops with `applied == false`).
    pub applied: bool,
}

/// Builds a [`Database`] schema.
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    cost: Option<CostModel>,
}

impl DatabaseBuilder {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the default cost model.
    pub fn cost_model(&mut self, cost: CostModel) -> &mut Self {
        self.cost = Some(cost);
        self
    }

    /// Adds a table. Column names prefixed with `*` get an equality index
    /// (`"*category"` indexes the `category` column).
    ///
    /// # Panics
    ///
    /// Panics on duplicate table names.
    pub fn table(&mut self, name: &str, columns: &[&str], row_bytes: u64) -> TableId {
        assert!(!self.by_name.contains_key(name), "duplicate table {name}");
        let defs = columns
            .iter()
            .map(|c| match c.strip_prefix('*') {
                Some(rest) => ColumnDef {
                    name: rest.to_string(),
                    indexed: true,
                },
                None => ColumnDef {
                    name: c.to_string(),
                    indexed: false,
                },
            })
            .collect();
        let id = TableId(self.tables.len());
        self.tables
            .push(Table::new(name.to_string(), defs, row_bytes));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Finalizes the schema.
    pub fn build(self) -> Database {
        Database {
            tables: self.tables,
            by_name: self.by_name,
            cost: self.cost.unwrap_or_default(),
        }
    }
}

/// A set of named in-memory tables with a cost model.
#[derive(Debug, Clone)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    cost: CostModel,
}

impl Database {
    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Shared access to a table.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this database.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Exclusive access to a table (bulk loading).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this database.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0]
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Executes a read query, returning matching rows, result bytes and the
    /// database-host CPU cost.
    pub fn execute(&self, query: &Query) -> QueryOutcome {
        let table = self.table(query.table());
        let (rows, scanned) = match query {
            Query::ByPk { id, .. } => (table.get(*id).map(|_| vec![*id]).unwrap_or_default(), 0),
            Query::Eq { column, value, .. } => {
                let indexed = table.columns().get(*column).is_some_and(|c| c.indexed);
                let rows = table.find_eq(*column, value);
                let scanned = if indexed { 0 } else { table.len() };
                (rows, scanned)
            }
            Query::Like { column, needle, .. } => (table.find_like(*column, needle), table.len()),
            Query::All { .. } => (table.all_ids(), 0),
        };
        let returned = rows.len() as u64;
        let cpu = self.cost.statement_base
            + self.cost.per_row_returned * returned
            + self.cost.per_row_scanned * scanned as u64;
        QueryOutcome {
            bytes: returned * table.row_bytes(),
            rows,
            cpu,
        }
    }

    /// Applies a mutation and describes its effect.
    pub fn mutate(&mut self, mutation: Mutation) -> MutationEffect {
        let cpu = self.cost.write_base;
        match mutation {
            Mutation::Insert { table, values } => {
                let id = self.tables[table.0].insert(values.clone());
                MutationEffect {
                    table,
                    row: id,
                    after: Some(values),
                    changed: None,
                    cpu,
                    applied: true,
                }
            }
            Mutation::Update {
                table,
                id,
                column,
                value,
            } => {
                let old = self.tables[table.0].update(id, column, value);
                let applied = old.is_some();
                let after = self.tables[table.0].get(id).map(<[Value]>::to_vec);
                MutationEffect {
                    table,
                    row: id,
                    after,
                    changed: old.map(|o| (column, o)),
                    cpu,
                    applied,
                }
            }
            Mutation::Delete { table, id } => {
                let removed = self.tables[table.0].delete(id);
                MutationEffect {
                    table,
                    row: id,
                    after: None,
                    changed: None,
                    cpu,
                    applied: removed.is_some(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> (Database, TableId) {
        let mut b = DatabaseBuilder::new();
        let items = b.table("item", &["name", "*product", "price"], 250);
        let mut db = b.build();
        for i in 0..6i64 {
            db.table_mut(items).insert(vec![
                format!("item-{i}").into(),
                Value::Int(i % 2),
                Value::Int(100 + i),
            ]);
        }
        (db, items)
    }

    #[test]
    fn pk_query_returns_single_row() {
        let (db, items) = db();
        let out = db.execute(&Query::ByPk {
            table: items,
            id: RowId(3),
        });
        assert_eq!(out.rows, vec![RowId(3)]);
        assert_eq!(out.bytes, 250);
        assert_eq!(out.cpu, SimDuration::from_micros(1_530));
    }

    #[test]
    fn pk_miss_is_empty_but_costs_the_statement() {
        let (db, items) = db();
        let out = db.execute(&Query::ByPk {
            table: items,
            id: RowId(99),
        });
        assert!(out.rows.is_empty());
        assert_eq!(out.bytes, 0);
        assert_eq!(out.cpu, SimDuration::from_micros(1_500));
    }

    #[test]
    fn indexed_eq_does_not_scan() {
        let (db, items) = db();
        let out = db.execute(&Query::Eq {
            table: items,
            column: 1,
            value: Value::Int(0),
        });
        assert_eq!(out.row_count(), 3);
        // base + 3 returned, no scan charge.
        assert_eq!(out.cpu, SimDuration::from_micros(1_500 + 90));
    }

    #[test]
    fn unindexed_eq_scans_the_table() {
        let (db, items) = db();
        let out = db.execute(&Query::Eq {
            table: items,
            column: 2,
            value: Value::Int(103),
        });
        assert_eq!(out.row_count(), 1);
        assert_eq!(out.cpu, SimDuration::from_micros(1_500 + 30 + 6 * 5));
    }

    #[test]
    fn like_scans_and_matches() {
        let (db, items) = db();
        let out = db.execute(&Query::Like {
            table: items,
            column: 0,
            needle: "ITEM-".into(),
        });
        assert_eq!(out.row_count(), 6);
        let out2 = db.execute(&Query::Like {
            table: items,
            column: 0,
            needle: "item-5".into(),
        });
        assert_eq!(out2.rows, vec![RowId(6)]);
    }

    #[test]
    fn all_query_returns_everything() {
        let (db, items) = db();
        assert_eq!(db.execute(&Query::All { table: items }).row_count(), 6);
    }

    #[test]
    fn insert_effect_carries_values() {
        let (mut db, items) = db();
        let e = db.mutate(Mutation::Insert {
            table: items,
            values: vec!["new".into(), Value::Int(1), Value::Int(1)],
        });
        assert!(e.applied);
        assert_eq!(e.row, RowId(7));
        assert_eq!(e.after.as_ref().unwrap()[0], Value::from("new"));
        assert_eq!(db.table(items).len(), 7);
    }

    #[test]
    fn update_effect_records_old_value() {
        let (mut db, items) = db();
        let e = db.mutate(Mutation::Update {
            table: items,
            id: RowId(1),
            column: 2,
            value: Value::Int(999),
        });
        assert!(e.applied);
        assert_eq!(e.changed, Some((2, Value::Int(100))));
        assert_eq!(e.after.as_ref().unwrap()[2], Value::Int(999));
    }

    #[test]
    fn missing_update_and_delete_are_unapplied() {
        let (mut db, items) = db();
        let e = db.mutate(Mutation::Update {
            table: items,
            id: RowId(50),
            column: 0,
            value: Value::Int(0),
        });
        assert!(!e.applied);
        let e = db.mutate(Mutation::Delete {
            table: items,
            id: RowId(50),
        });
        assert!(!e.applied);
    }

    #[test]
    fn delete_then_query_misses() {
        let (mut db, items) = db();
        let e = db.mutate(Mutation::Delete {
            table: items,
            id: RowId(2),
        });
        assert!(e.applied);
        assert!(db
            .execute(&Query::ByPk {
                table: items,
                id: RowId(2)
            })
            .rows
            .is_empty());
    }

    #[test]
    fn table_lookup_by_name() {
        let (db, items) = db();
        assert_eq!(db.table_id("item"), Some(items));
        assert_eq!(db.table_id("nope"), None);
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_panics() {
        let mut b = DatabaseBuilder::new();
        b.table("t", &["a"], 10);
        b.table("t", &["b"], 10);
    }
}
