//! Cell values and row identifiers.

use serde::{Deserialize, Serialize};

/// A stable row identifier (primary key), unique within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A cell value. The model only needs integers (including foreign keys) and
/// strings (names, keywords); monetary amounts are stored as integer cents.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An integer (quantity, price in cents, foreign key…).
    Int(i64),
    /// A string (name, description, keyword…).
    Str(String),
}

impl Value {
    /// Reference to the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// The integer contents, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Interprets this value as a foreign key.
    pub fn as_fk(&self) -> Option<RowId> {
        self.as_int().and_then(|i| u64::try_from(i).ok()).map(RowId)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<RowId> for Value {
    fn from(v: RowId) -> Self {
        Value::Int(v.0 as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5), Value::Int(5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(RowId(9)), Value::Int(9));
        assert_eq!(Value::Int(9).as_fk(), Some(RowId(9)));
        assert_eq!(Value::Int(-1).as_fk(), None);
        assert_eq!(Value::Str("a".into()).as_int(), None);
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", Value::Int(3)), "3");
        assert_eq!(format!("{}", Value::Str(String::new())), "\"\"");
        assert_eq!(format!("{}", RowId(4)), "#4");
    }
}
