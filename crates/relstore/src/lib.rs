//! # mutsvc-relstore — relational store substrate
//!
//! The paper's applications keep shared persistent state in Oracle/MySQL
//! behind entity beans; this crate is the equivalent substrate for the
//! simulation testbed. It provides
//!
//! * [`table`] — in-memory tables with hash indexes,
//! * [`database`] — schema building, typed queries (PK / equality / keyword
//!   LIKE / full scan), mutations with structured [`MutationEffect`]s, and a
//!   statement cost model,
//! * [`invalidation`] — the write-vs-cached-query dependency check that edge
//!   query-cache containers need (§4.4/§5 of the paper).
//!
//! ## Example
//!
//! ```
//! use mutsvc_relstore::{DatabaseBuilder, Query, Mutation, Value, affects};
//!
//! let mut b = DatabaseBuilder::new();
//! let product = b.table("product", &["name", "*category"], 180);
//! let mut db = b.build();
//! db.table_mut(product).insert(vec!["Koi".into(), Value::Int(1)]);
//!
//! let by_cat = Query::Eq { table: product, column: 1, value: Value::Int(1) };
//! assert_eq!(db.execute(&by_cat).row_count(), 1);
//!
//! // A write to category 1 invalidates the cached result…
//! let e = db.mutate(Mutation::Insert { table: product, values: vec!["Carp".into(), Value::Int(1)] });
//! assert!(affects(&e, &by_cat));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod invalidation;
pub mod table;
pub mod value;

pub use database::{
    CostModel, Database, DatabaseBuilder, Mutation, MutationEffect, Query, QueryOutcome,
};
pub use invalidation::{affects, GenerationCursor};
pub use table::{ColumnDef, Table, TableId};
pub use value::{RowId, Value};
