//! Traced-run determinism and golden cross-checks.
//!
//! The span log is part of the repro surface: two runs with the same seed
//! must produce byte-identical JSONL, whether the sweep runs sequentially
//! or across threads. The remote-façade golden check pins the traced
//! *logical* WAN accounting to the static analyzer's walk.

use mutsvc_bench::run_scenarios_parallel;
use mutsvc_bench::trace_artifacts::{run_traced_sweep, traced_scenario, validate_chrome_trace};
use mutsvc_core::{AppKind, Config};
use mutsvc_workload::{chrome_trace_json, jsonl};

fn smoke_jsonl(app: AppKind, config: Config, seed: u64) -> String {
    let report = traced_scenario(app, config, true, true, seed).run();
    jsonl(
        report
            .trace
            .as_ref()
            .expect("traced run must carry trace data"),
    )
}

#[test]
fn span_logs_are_byte_identical_across_identical_seed_runs() {
    let first = smoke_jsonl(AppKind::PetStore, Config::RemoteFacade, 7);
    let second = smoke_jsonl(AppKind::PetStore, Config::RemoteFacade, 7);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must replay the same span log");
    let other_seed = smoke_jsonl(AppKind::PetStore, Config::RemoteFacade, 8);
    assert_ne!(first, other_seed, "different seeds must differ");
}

#[test]
fn parallel_sweep_span_logs_match_sequential_runs() {
    let configs = [
        Config::Centralized,
        Config::RemoteFacade,
        Config::AsyncUpdates,
    ];
    let sequential: Vec<String> = configs
        .iter()
        .map(|&config| smoke_jsonl(AppKind::Rubis, config, 11))
        .collect();
    let scenarios = configs
        .iter()
        .map(|&config| traced_scenario(AppKind::Rubis, config, true, true, 11))
        .collect();
    let parallel: Vec<String> = run_scenarios_parallel(scenarios)
        .iter()
        .map(|report| jsonl(report.trace.as_ref().unwrap()))
        .collect();
    assert_eq!(
        sequential, parallel,
        "thread scheduling must not leak into span logs"
    );
}

#[test]
fn chrome_exports_validate_for_every_configuration() {
    for config in Config::all() {
        let report = traced_scenario(AppKind::PetStore, config, true, true, 3).run();
        let chrome = chrome_trace_json(report.trace.as_ref().unwrap(), 10);
        let pairs = validate_chrome_trace(&chrome)
            .unwrap_or_else(|e| panic!("{} chrome trace invalid: {e}", config.name()));
        assert!(pairs > 0, "{} exported no spans", config.name());
    }
}

#[test]
fn remote_facade_traced_wan_matches_the_static_walk() {
    for app in [AppKind::PetStore, AppKind::Rubis] {
        let cells = run_traced_sweep(app, &[Config::RemoteFacade], true, true, 42);
        let cell = &cells[0];
        assert_eq!(
            cell.w108,
            0,
            "{}: traced remote-facade WAN accounting disagrees with the static walk:\n{}",
            app.name(),
            cell.static_report.render_text()
        );
        // The traced run must actually exercise wide-area pages: at least one
        // remote1 page with a positive logical count that the walk confirms.
        let confirmed = cell
            .rows
            .iter()
            .filter(|r| r.group == "remote1" && r.wan_rts_logical > 0.5)
            .filter(|r| {
                cell.static_report
                    .pages
                    .iter()
                    .any(|p| p.page == r.page && p.wan_round_trips > 0)
            })
            .count();
        assert!(
            confirmed >= 3,
            "{}: only {confirmed} wide-area pages confirmed",
            app.name()
        );
    }
}
