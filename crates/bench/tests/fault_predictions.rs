//! Acceptance: the analyzer's static per-episode availability predictions
//! agree with the fault suite's *simulated* availability — the same runs
//! that feed `BENCH_faults.json` — within one percentage point, for all
//! three standard episodes across every application × configuration cell
//! (resilient policy arm, the arm the predictions model).

use mutsvc_analyze::analyze_target;
use mutsvc_bench::fault_artifacts::run_fault_suite;
use mutsvc_core::{AppKind, Config};

const TOLERANCE: f64 = 0.01;

#[test]
fn static_availability_within_one_point_of_simulated() {
    for app in AppKind::all() {
        let cells = run_fault_suite(app, true, false, 42);
        for config in Config::all() {
            let report = analyze_target(app, config);
            let mut checked = 0;
            for cell in cells
                .iter()
                .filter(|c| c.policy == "resilient" && c.config == config)
            {
                let episode = cell.case.name();
                let row = report
                    .availability
                    .iter()
                    .find(|r| r.episode == episode)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}/{}: no prediction for episode `{episode}`",
                            app.name(),
                            config.name()
                        )
                    });
                let simulated = cell
                    .report
                    .stats
                    .outcome("remote1")
                    .expect("remote1 group outcome")
                    .availability();
                let diff = (row.availability - simulated).abs();
                assert!(
                    diff.is_finite() && diff <= TOLERANCE,
                    "{}/{} {episode}: predicted {:.4}, simulated {:.4}, diff {:.4} > {TOLERANCE}",
                    app.name(),
                    config.name(),
                    row.availability,
                    simulated,
                    diff
                );
                checked += 1;
            }
            assert_eq!(
                checked,
                3,
                "{}/{}: expected all three standard episodes",
                app.name(),
                config.name()
            );
        }
    }
}
