//! Thread-count invariance of the conservative-parallel engine.
//!
//! The parallel engine's contract (DESIGN.md §6.5) is that the OS thread
//! count is invisible in the simulated history: shard decomposition, RNG
//! streams, window structure and the merge order depend only on the input,
//! never on scheduling. These tests pin the contract at the artifact level —
//! the rendered `BENCH_faults.json` for the three standard fault episodes
//! and the traced span JSONL must be byte-identical at 1, 2, 4 and 8
//! threads.

use mutsvc_bench::adaptive_artifacts::{
    adaptive_cell_json, suite_cadence, suite_windows, AdaptiveCell,
};
use mutsvc_bench::fault_artifacts::{fault_scenario, render_faults_json, validate_faults_json};
use mutsvc_bench::metrics_artifacts::{default_slo, metrics_jsonl};
use mutsvc_bench::simperf_report::thread_counts;
use mutsvc_core::{
    adaptive_episode_input, multi_tier_input, AdaptiveEpisode, AppKind, Config, FaultCase,
    MultiTierSpec,
};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::{
    evaluate, jsonl, run_experiment_parallel, AdaptiveSettings, FaultPolicy, MetricsSettings,
    SloReport, TraceSettings,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The three standard episodes under the resilient policy, rendered through
/// the real `BENCH_faults.json` renderer, at one thread count.
fn faults_json_at(threads: usize, seed: u64) -> String {
    let mut cells = Vec::new();
    for case in FaultCase::all() {
        for config in [Config::Centralized, Config::StatefulCaching] {
            let scenario = fault_scenario(
                AppKind::PetStore,
                config,
                case,
                FaultPolicy::resilient(),
                true,
                true,
                seed,
            )
            .with_parallel(threads);
            let window = scenario.duration;
            let report = scenario.run();
            assert_eq!(
                report.shard_events.len(),
                3,
                "paper topology decomposes into three client regions"
            );
            cells.push(mutsvc_bench::fault_artifacts::FaultCell {
                config,
                case,
                policy: "resilient",
                window,
                report,
            });
        }
    }
    render_faults_json(&[(AppKind::PetStore, cells)], seed, "smoke")
}

#[test]
fn fault_suite_json_is_byte_identical_at_every_thread_count() {
    let baseline = faults_json_at(THREADS[0], 42);
    validate_faults_json(&baseline).expect("single-thread suite renders valid JSON");
    for &threads in &THREADS[1..] {
        let json = faults_json_at(threads, 42);
        assert_eq!(
            baseline, json,
            "{threads}-thread fault suite diverged from the 1-thread artifact"
        );
    }
    // The artifact is seed-sensitive, so the equality above is not vacuous.
    assert_ne!(baseline, faults_json_at(1, 43));
}

fn span_log_at(threads: usize, seed: u64) -> String {
    let mut scenario = fault_scenario(
        AppKind::Rubis,
        Config::AsyncUpdates,
        FaultCase::EdgeCrash,
        FaultPolicy::resilient(),
        true,
        true,
        seed,
    )
    .with_parallel(threads);
    scenario.trace = TraceSettings::full();
    let report = scenario.run();
    jsonl(
        report
            .trace
            .as_ref()
            .expect("traced run must carry trace data"),
    )
}

#[test]
fn span_logs_are_byte_identical_at_every_thread_count() {
    let baseline = span_log_at(THREADS[0], 7);
    assert!(!baseline.is_empty());
    for &threads in &THREADS[1..] {
        assert_eq!(
            baseline,
            span_log_at(threads, 7),
            "{threads}-thread span log diverged from the 1-thread log"
        );
    }
    assert_ne!(baseline, span_log_at(1, 8), "different seeds must differ");
}

/// A generated multi-tier topology (4 hubs × 8 WAN PoPs → 33 client
/// regions) run through the conservative-parallel engine at one thread
/// count: the shard-count scaling cell of the invariance suite.
fn multi_tier_report_at(threads: usize, seed: u64) -> (String, mutsvc_workload::ExperimentReport) {
    let spec = MultiTierSpec {
        hubs: 4,
        edges_per_hub: 8,
        metro_edges: false,
        db_on_main: false,
    };
    let mut input = multi_tier_input(AppKind::Rubis, Config::StatefulCaching, &spec, seed);
    // Short windows: the cell pins determinism across 33 shards, not the
    // paper's full measurement horizon.
    input.spec = input
        .spec
        .with_duration(SimDuration::from_secs(5), SimDuration::from_secs(20))
        .with_trace(TraceSettings::full());
    let report = run_experiment_parallel(input, threads);
    let log = jsonl(
        report
            .trace
            .as_ref()
            .expect("traced run carries trace data"),
    );
    (log, report)
}

#[test]
fn multi_tier_topology_is_byte_identical_at_every_thread_count() {
    let (baseline_log, baseline) = multi_tier_report_at(THREADS[0], 42);
    assert!(
        baseline.shard_events.len() >= 32,
        "WAN edge tier must decompose into one shard per client region, got {}",
        baseline.shard_events.len()
    );
    assert!(baseline.completed > 100, "completed {}", baseline.completed);
    for &threads in &THREADS[1..] {
        let (log, report) = multi_tier_report_at(threads, 42);
        assert_eq!(baseline.stats, report.stats);
        assert_eq!(baseline.completed, report.completed);
        assert_eq!(baseline.events_fired, report.events_fired);
        assert_eq!(baseline.shard_events, report.shard_events);
        assert_eq!(
            baseline_log, log,
            "{threads}-thread multi-tier span log diverged from the 1-thread log"
        );
    }
    assert_ne!(
        baseline_log,
        multi_tier_report_at(1, 43).0,
        "different seeds must differ"
    );
}

/// The multi-tier cell with the windowed metrics recorder armed instead of
/// the tracer: the rendered `METRICS_*.jsonl` window log and the burn-rate
/// engine's verdicts at one thread count.
fn multi_tier_metrics_at(
    threads: usize,
    seed: u64,
) -> (String, SloReport, mutsvc_workload::ExperimentReport) {
    let spec = MultiTierSpec {
        hubs: 4,
        edges_per_hub: 8,
        metro_edges: false,
        db_on_main: false,
    };
    let mut input = multi_tier_input(AppKind::Rubis, Config::StatefulCaching, &spec, seed);
    input.spec = input
        .spec
        .with_duration(SimDuration::from_secs(5), SimDuration::from_secs(20))
        .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(5)));
    let report = run_experiment_parallel(input, threads);
    let data = report
        .metrics
        .as_ref()
        .expect("metrics run carries recorder data");
    let log = metrics_jsonl(data);
    let slo = evaluate(&default_slo(AppKind::Rubis), &data.recorder);
    (log, slo, report)
}

#[test]
fn metrics_and_slo_verdicts_are_byte_identical_at_every_thread_count() {
    let (baseline_log, baseline_slo, baseline) = multi_tier_metrics_at(THREADS[0], 42);
    let data = baseline.metrics.as_ref().unwrap();
    assert!(
        data.shard_profiles.len() >= 32,
        "one self-profile per shard, got {}",
        data.shard_profiles.len()
    );
    assert!(
        data.recorder.rows().len() >= 4,
        "the 25 s horizon rolls several 5 s windows"
    );
    assert!(!baseline_log.is_empty());
    assert!(!baseline_slo.verdicts.is_empty());
    for &threads in &THREADS[1..] {
        let (log, slo, report) = multi_tier_metrics_at(threads, 42);
        assert_eq!(
            baseline_log, log,
            "{threads}-thread metrics window log diverged from the 1-thread log"
        );
        assert_eq!(
            baseline_slo, slo,
            "{threads}-thread SLO verdicts diverged from the 1-thread grade"
        );
        assert_eq!(baseline.metrics, report.metrics);
        assert_eq!(baseline.completed, report.completed);
    }
    assert_ne!(
        baseline_log,
        multi_tier_metrics_at(1, 43).0,
        "different seeds must differ"
    );
}

/// The flash-crowd adaptation episode with the live-migration controller
/// armed and the tracer on, at one thread count: the span log, the rendered
/// `BENCH_adaptive.json` arm cell, and the raw report.
fn flash_crowd_adaptive_at(
    threads: usize,
    seed: u64,
) -> (String, String, mutsvc_workload::ExperimentReport) {
    let (warmup, duration) = suite_windows(true, true);
    let mut input = adaptive_episode_input(
        AppKind::PetStore,
        AdaptiveEpisode::FlashCrowd,
        None,
        AdaptiveSettings::every(suite_cadence()),
        warmup,
        duration,
        seed,
    );
    input.spec = input.spec.with_trace(TraceSettings::full());
    let report = run_experiment_parallel(input, threads);
    let log = jsonl(
        report
            .trace
            .as_ref()
            .expect("traced run carries trace data"),
    );
    let slo = evaluate(
        &default_slo(AppKind::PetStore),
        &report
            .metrics
            .as_ref()
            .expect("the adaptation suite arms the recorder")
            .recorder,
    );
    let cell = AdaptiveCell {
        episode: AdaptiveEpisode::FlashCrowd,
        arm: "on",
        window: duration,
        report,
        slo,
    };
    let fragment = adaptive_cell_json(&cell);
    (log, fragment, cell.report)
}

#[test]
fn adaptive_migration_schedule_is_byte_identical_at_every_thread_count() {
    let (baseline_log, baseline_fragment, baseline) = flash_crowd_adaptive_at(THREADS[0], 42);
    let data = baseline.adaptive.as_ref().expect("controller log attached");
    assert!(
        !data.migrations.is_empty(),
        "the flash crowd must trigger adaptation"
    );
    assert!(!baseline_log.is_empty());
    for &threads in &THREADS[1..] {
        let (log, fragment, report) = flash_crowd_adaptive_at(threads, 42);
        assert_eq!(
            baseline.adaptive, report.adaptive,
            "{threads}-thread migration schedule diverged from the 1-thread run"
        );
        assert_eq!(baseline.stats, report.stats);
        assert_eq!(baseline.completed, report.completed);
        assert_eq!(baseline.events_fired, report.events_fired);
        assert_eq!(
            baseline_log, log,
            "{threads}-thread adaptive span log diverged from the 1-thread log"
        );
        assert_eq!(
            baseline_fragment, fragment,
            "{threads}-thread BENCH_adaptive.json cell diverged from the 1-thread render"
        );
    }
    assert_ne!(
        baseline_fragment,
        flash_crowd_adaptive_at(1, 43).1,
        "different seeds must differ"
    );
}

#[test]
fn thread_ladder_spans_the_suite() {
    // The suite's thread counts are exactly the bench ladder at its full
    // cap, so CI's `--parallel`-capped bench and this suite agree on what
    // "every thread count" means.
    assert_eq!(thread_counts(8), THREADS.to_vec());
}
