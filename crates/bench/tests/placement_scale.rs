//! Cross-layer properties of the planet-scale placement pipeline, on
//! randomized multi-tier topologies:
//!
//! * the placement host matrix (and the evaluator's shared APSP distance
//!   matrix behind it) prices every host pair exactly like the analyzer's
//!   [`PathModel`] and like an independent Floyd–Warshall over the raw
//!   links — the engine's Dijkstra routing, the static analyzer and the
//!   placement layer can never disagree about what a path costs;
//! * the placement layer's region coarsening ([`host_regions`], driven by
//!   the round-trip matrix alone) induces the same partition as the
//!   simulator's link-level [`Topology::regions`];
//! * the incremental evaluator stays within relative 1e-9 of the
//!   from-scratch sweep along randomized move/undo walks on multi-tier
//!   problems (the scale-ladder extension of the `mutsvc-placement`
//!   `incremental_equivalence` suite);
//! * region-coarsened search matches the flat greedy search to 1e-9 on
//!   small graphs and stays close when coarsening is forced.

use mutsvc_analyze::PathModel;
use mutsvc_bench::placement_report::{ladder_problem, move_sequence};
use mutsvc_core::{multi_tier_topology, MultiTierSpec};
use mutsvc_desim::rng::SimRng;
use mutsvc_placement::algorithms::{
    greedy_solve, host_regions, solve_regional, GreedyOptions, RegionalOptions,
};
use mutsvc_placement::graph::{HostId, Placement};
use mutsvc_placement::wan::{hosts_from_topology, rehost, ServerSpec};
use mutsvc_placement::{cost_breakdown, shared_distances, CostEvaluator};

/// A randomized multi-tier shape: 1–5 hubs, 1–5 PoPs per hub, metro or WAN
/// edge tier, database co-located or split out.
fn random_spec(rng: &mut SimRng) -> MultiTierSpec {
    MultiTierSpec {
        hubs: 1 + rng.index(5),
        edges_per_hub: 1 + rng.index(5),
        metro_edges: rng.chance(0.5),
        db_on_main: rng.chance(0.5),
    }
}

/// Builds the full server list (main, hubs, PoPs) with client traffic split
/// evenly over main + PoPs, as the scale ladder deploys it.
fn server_specs(nodes: &mutsvc_core::MultiTierNodes) -> Vec<ServerSpec> {
    let share = 1.0 / (nodes.edges.len() as f64 + 1.0);
    nodes
        .servers()
        .iter()
        .enumerate()
        .map(|(i, &node)| ServerSpec {
            node,
            entry_share: if i == 0 || i > nodes.hubs.len() {
                share
            } else {
                0.0
            },
            cpu_capacity: f64::INFINITY,
        })
        .collect()
}

/// Independent all-pairs one-way latencies (milliseconds) by Floyd–Warshall
/// over the raw link list — no shared code with `Topology::rtt`'s
/// per-source Dijkstra.
fn floyd_warshall_ms(topology: &mutsvc_netsim::Topology) -> Vec<Vec<f64>> {
    let n = topology.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for l in topology.link_ids() {
        let link = topology.link(l);
        let ms = link.latency.as_millis_f64();
        let (a, b) = (link.from.index(), link.to.index());
        if ms < d[a][b] {
            d[a][b] = ms;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

#[test]
fn apsp_pricing_matches_analyze_path_model() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(0x0A25_0000 + seed);
        let spec = random_spec(&mut rng);
        let (topology, nodes) = multi_tier_topology(&spec);
        let servers = server_specs(&nodes);
        let (hosts, rtt_ms) = hosts_from_topology(&topology, &servers);
        let model = PathModel::new(&topology);
        let fw = floyd_warshall_ms(&topology);

        let h = hosts.len();
        for a in 0..h {
            for b in 0..h {
                let (na, nb) = (servers[a].node, servers[b].node);
                let expected = if a == b {
                    0.0
                } else {
                    fw[na.index()][nb.index()] + fw[nb.index()][na.index()]
                };
                assert!(
                    (rtt_ms[a][b] - expected).abs() <= 1e-9 * expected.max(1.0),
                    "spec {spec:?}: matrix[{a}][{b}] = {} but Floyd–Warshall says {expected}",
                    rtt_ms[a][b]
                );
                if a != b {
                    let analyze = model.rtt(na, nb).as_millis_f64();
                    assert!(
                        (rtt_ms[a][b] - analyze).abs() <= 1e-9 * analyze.max(1.0),
                        "spec {spec:?}: matrix[{a}][{b}] = {} but PathModel says {analyze}",
                        rtt_ms[a][b]
                    );
                }
            }
        }

        // The evaluator's shared distance matrix is the same pricing,
        // flattened once per topology.
        let (rubis, _) = mutsvc_placement::derive::rubis_problem();
        let problem = rehost(&rubis, hosts, rtt_ms.clone());
        let dist = shared_distances(&problem);
        for a in 0..h {
            for b in 0..h {
                assert_eq!(dist[a * h + b], rtt_ms[a][b], "dist[{a}][{b}]");
            }
        }
    }
}

#[test]
fn placement_regions_agree_with_topology_regions() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(0x2E61_0000 + seed);
        let spec = random_spec(&mut rng);
        let (topology, nodes) = multi_tier_topology(&spec);
        let servers = server_specs(&nodes);
        let (_, rtt_ms) = hosts_from_topology(&topology, &servers);

        let link_regions = topology.regions();
        let matrix_regions = host_regions(&rtt_ms);
        for a in 0..servers.len() {
            for b in 0..servers.len() {
                let same_link =
                    link_regions[servers[a].node.index()] == link_regions[servers[b].node.index()];
                let same_matrix = matrix_regions[a] == matrix_regions[b];
                assert_eq!(
                    same_link, same_matrix,
                    "spec {spec:?}: hosts {a},{b} grouped {same_matrix} by the \
                     matrix but {same_link} by the topology"
                );
            }
        }
    }
}

/// The incremental-equivalence walk on the generated rungs: every applied
/// move's running breakdown must stay within relative 1e-9 of the full
/// sweep, on a host matrix whose entries are genuine multi-hop WAN paths.
#[test]
fn incremental_equivalence_on_multi_tier_rungs() {
    for hosts in [4usize, 16] {
        let problem = ladder_problem(hosts);
        let moves = move_sequence(&problem, 150, 0xE0_0000 + hosts as u64);
        let mut eval = CostEvaluator::new(&problem, Placement::all_on(&problem, HostId(0)));
        for (step, &mv) in moves.iter().enumerate() {
            eval.apply(mv);
            eval.commit();
            let full = cost_breakdown(&problem, eval.placement());
            let inc = eval.breakdown();
            for (term, i, f) in [
                ("communication", inc.communication, full.communication),
                ("consistency", inc.consistency, full.consistency),
                ("overload", inc.overload, full.overload),
                ("total", inc.total(), full.total()),
            ] {
                assert!(
                    (i - f).abs() <= 1e-9 * f.abs().max(1.0),
                    "{hosts} hosts, step {step}: {term} diverged: {i:.15e} vs {f:.15e}"
                );
            }
        }
    }
}

#[test]
fn coarsened_search_matches_flat_on_small_multi_tier_graphs() {
    // 4 hosts is under the small-graph cutoff: the regional solver must
    // reproduce the flat greedy result bit-for-bit (same code path).
    let problem = ladder_problem(4);
    let (flat_placement, flat_cost) = greedy_solve(&problem, &GreedyOptions::default());
    let (regional_placement, regional_cost) = solve_regional(&problem, &RegionalOptions::default());
    assert_eq!(flat_placement, regional_placement);
    assert!((flat_cost - regional_cost).abs() <= 1e-9 * flat_cost.abs().max(1.0));
}

#[test]
fn forced_coarsening_stays_close_to_flat_on_multi_tier_graphs() {
    // Force coarsening on the 16-host rung (cutoff 0): the restricted
    // search must land within a few percent of the flat greedy optimum and
    // be deterministic run-to-run.
    let problem = ladder_problem(16);
    let (_, flat_cost) = greedy_solve(&problem, &GreedyOptions::default());
    let options = RegionalOptions {
        small_flat: 0,
        ..RegionalOptions::default()
    };
    let (first, regional_cost) = solve_regional(&problem, &options);
    let (second, second_cost) = solve_regional(&problem, &options);
    assert_eq!(first, second);
    assert!((regional_cost - second_cost).abs() <= 1e-12 * regional_cost.abs().max(1.0));
    assert!(
        regional_cost >= flat_cost - 1e-9 * flat_cost.abs().max(1.0),
        "restricted search cannot beat the unrestricted one: {regional_cost} < {flat_cost}"
    );
    assert!(
        regional_cost <= flat_cost * 1.05,
        "coarsened search drifted too far from flat: {regional_cost} vs {flat_cost}"
    );
}
