//! Adaptation-suite artifacts: `BENCH_adaptive.json` and the controller
//! on/off tables.
//!
//! `repro-report --adaptive` runs the four adaptation episodes
//! ([`AdaptiveEpisode`]: quiescent, flash-crowd, link-degradation,
//! diurnal-shift) on the paper topology, each twice — once with the
//! closed-loop live-migration controller armed (`on`) and once frozen at
//! the deployment-time placement (`off`) — and reports the stressed
//! group's session time, every group's request outcomes, the SLO verdicts,
//! the controller's cost trajectory and its committed migrations per cell.
//!
//! The headline results are structural and enforced by
//! [`validate_adaptive_json`]: the quiescent control commits **zero**
//! migrations (the drift floor holds against telemetry noise), while
//! link-degradation commits at least one (the controller re-homes the
//! session tier when the stressed corridor slows down). Episodes script
//! drift, not outages, so the on/off delta is attributable to adaptation
//! alone. Schedules and controller rounds are deterministic: a same-seed
//! suite run renders `BENCH_adaptive.json` byte-identically.

use crate::fault_artifacts::{after_each, fmt2, fmt4, outcome_json};
use crate::metrics_artifacts::default_slo;
use mutsvc_core::{adaptive_episode_input, AdaptiveEpisode, AppKind};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::{
    evaluate, run_experiment, AdaptiveSettings, ExperimentReport, MoveKind, SloReport,
};

/// The client group every episode stresses (`EpisodeTargets::group1`).
pub const STRESSED_GROUP: &str = "remote1";

/// Controller round cadence the suite arms — two telemetry windows per
/// round at the 5 s recorder window [`adaptive_episode_input`] wires.
pub fn suite_cadence() -> SimDuration {
    SimDuration::from_secs(10)
}

/// Suite windows (warm-up, measured duration). Episode onset lands one
/// quarter into the measured window and heals at three quarters either
/// way; smoke compresses the wall clock for CI's schema-validation gate
/// while still leaving four controller rounds inside the episode.
pub fn suite_windows(quick: bool, smoke: bool) -> (SimDuration, SimDuration) {
    if smoke {
        (SimDuration::from_secs(10), SimDuration::from_secs(80))
    } else if quick {
        (SimDuration::from_secs(90), SimDuration::from_secs(300))
    } else {
        (SimDuration::from_secs(120), SimDuration::from_secs(600))
    }
}

/// The two controller arms every episode runs under.
pub fn suite_arms() -> [(&'static str, AdaptiveSettings); 2] {
    [
        ("on", AdaptiveSettings::every(suite_cadence())),
        ("off", AdaptiveSettings::off()),
    ]
}

/// One adaptation-suite cell: an episode run under one controller arm.
pub struct AdaptiveCell {
    /// The scripted episode.
    pub episode: AdaptiveEpisode,
    /// Controller-arm name (`"on"` or `"off"`).
    pub arm: &'static str,
    /// Measured window (the goodput denominator).
    pub window: SimDuration,
    /// The finished run.
    pub report: ExperimentReport,
    /// The run graded against the default SLO spec.
    pub slo: SloReport,
}

impl AdaptiveCell {
    /// The stressed group's mean Browser session time, if it completed any.
    pub fn stressed_session_ms(&self) -> Option<f64> {
        self.report
            .stats
            .session_mean_over_groups(&[STRESSED_GROUP], "Browser")
    }

    /// The stressed group's availability (1 when nothing was measured).
    pub fn stressed_availability(&self) -> f64 {
        self.report
            .stats
            .outcome(STRESSED_GROUP)
            .map_or(1.0, mutsvc_workload::GroupOutcome::availability)
    }

    /// Migrations the controller committed (0 for the frozen arm).
    pub fn migration_count(&self) -> usize {
        self.report
            .adaptive
            .as_ref()
            .map_or(0, |d| d.migrations.len())
    }
}

/// Runs the full adaptation suite for one application — every episode ×
/// controller arm on the paper topology — in parallel. Cells are ordered
/// episode-major, then arm (`on` before `off`), the order
/// [`render_adaptive_json`] emits.
pub fn run_adaptive_suite(app: AppKind, quick: bool, smoke: bool, seed: u64) -> Vec<AdaptiveCell> {
    let (warmup, duration) = suite_windows(quick, smoke);
    let slo_spec = default_slo(app);
    let mut meta = Vec::new();
    let mut inputs = Vec::new();
    for episode in AdaptiveEpisode::all() {
        for (arm, controller) in suite_arms() {
            meta.push((episode, arm));
            inputs.push(adaptive_episode_input(
                app, episode, None, controller, warmup, duration, seed,
            ));
        }
    }
    let reports: Vec<ExperimentReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .zip(&meta)
            .map(|(input, &(episode, arm))| {
                let name = format!("adaptive-{}-{arm}", episode.name());
                let handle = std::thread::Builder::new()
                    .name(name.clone())
                    .spawn_scoped(scope, move || run_experiment(input))
                    .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
                (name, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(name, handle)| {
                handle
                    .join()
                    .unwrap_or_else(|_| panic!("adaptive cell {name} panicked"))
            })
            .collect()
    });
    meta.into_iter()
        .zip(reports)
        .map(|((episode, arm), report)| {
            let recorder = &report
                .metrics
                .as_ref()
                .expect("the adaptation suite arms the windowed recorder")
                .recorder;
            let slo = evaluate(&slo_spec, recorder);
            AdaptiveCell {
                episode,
                arm,
                window: duration,
                report,
                slo,
            }
        })
        .collect()
}

fn move_kind_name(kind: MoveKind) -> &'static str {
    match kind {
        MoveKind::Primary => "primary",
        MoveKind::Replica => "replica",
    }
}

/// Renders one arm cell of `BENCH_adaptive.json` — the migration schedule,
/// cost trajectory, per-group outcomes and SLO verdicts of a single run.
/// Public so the thread-invariance suite can pin the rendered bytes.
pub fn adaptive_cell_json(cell: &AdaptiveCell) -> String {
    // `"arm":"..","migration_count":N` stays adjacent: the validator keys
    // its physics checks (quiescent-zero, degradation-nonzero) on the pair.
    let mut out = format!(
        "{{\"arm\":\"{}\",\"migration_count\":{},\"completed\":{},\"stressed\":{{\
         \"group\":\"{STRESSED_GROUP}\",\"session_mean_ms\":{},\"availability\":{}}}",
        cell.arm,
        cell.migration_count(),
        cell.report.completed,
        fmt2(cell.stressed_session_ms().unwrap_or(f64::NAN)),
        fmt4(cell.stressed_availability()),
    );
    out.push_str(",\"migrations\":[");
    if let Some(data) = &cell.report.adaptive {
        for (i, m) in data.migrations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ms\":{},\"component\":\"{}\",\"kind\":\"{}\",\"from\":\"{}\",\
                 \"to\":\"{}\",\"modeled_gain_ms_per_s\":{}}}",
                fmt2(m.decided_at.as_millis_f64()),
                m.component,
                move_kind_name(m.kind),
                m.from,
                m.to,
                fmt2(m.modeled_gain),
            ));
        }
    }
    out.push_str("],\"rounds\":[");
    if let Some(data) = &cell.report.adaptive {
        for (i, r) in data.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ms\":{},\"windows\":{},\"cost_before\":{},\"cost_after\":{},\
                 \"observed_p50_ms\":{},\"moves\":{}}}",
                fmt2(r.at.as_millis_f64()),
                r.windows,
                fmt2(r.cost_before),
                fmt2(r.cost_after),
                fmt2(r.observed_p50_ms),
                r.moves,
            ));
        }
    }
    out.push_str("],\"groups\":[");
    for (i, (group, outcome)) in cell.report.stats.outcomes().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"group\":\"{group}\",\"outcome\":{}}}",
            outcome_json(outcome, cell.window)
        ));
    }
    out.push_str(&format!(
        "],\"slo\":{{\"all_met\":{},\"verdicts\":[",
        cell.slo.all_met()
    ));
    for (i, v) in cell.slo.verdicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"objective\":\"{}\",\"target\":{},\"attained\":{},\"met\":{}}}",
            v.objective,
            fmt4(v.target),
            fmt4(v.attained),
            v.met,
        ));
    }
    out.push_str("]}}");
    out
}

/// Renders `BENCH_adaptive.json`: per app × episode, both controller arms
/// (migration schedule, cost trajectory, per-group outcomes, SLO verdicts)
/// plus the stressed group's on-minus-off delta.
pub fn render_adaptive_json(
    sweeps: &[(AppKind, Vec<AdaptiveCell>)],
    seed: u64,
    mode: &str,
) -> String {
    let mut out = format!(
        "{{\"suite\":\"adaptive\",\"mode\":\"{mode}\",\"seed\":{seed},\"cadence_s\":{},\
         \"stressed_group\":\"{STRESSED_GROUP}\",\"apps\":[",
        suite_cadence().as_secs_f64() as u64,
    );
    for (ai, (app, cells)) in sweeps.iter().enumerate() {
        if ai > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n{{\"app\":\"{}\",\"episodes\":[", app.name()));
        for (ei, episode) in AdaptiveEpisode::all().into_iter().enumerate() {
            if ei > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"episode\":\"{}\",\"arms\":[",
                episode.name()
            ));
            let arm = |name| {
                cells
                    .iter()
                    .find(|c| c.episode == episode && c.arm == name)
                    .expect("suite covers every episode x arm")
            };
            let (on, off) = (arm("on"), arm("off"));
            out.push_str(&format!(
                "\n{},\n{}",
                adaptive_cell_json(on),
                adaptive_cell_json(off)
            ));
            let rt_delta = match (on.stressed_session_ms(), off.stressed_session_ms()) {
                (Some(a), Some(b)) => a - b,
                _ => f64::NAN,
            };
            out.push_str(&format!(
                "],\"delta\":{{\"stressed_session_mean_ms\":{},\"stressed_availability\":{}}}}}",
                fmt2(rt_delta),
                fmt4(on.stressed_availability() - off.stressed_availability()),
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders the controller on/off table for one application: the stressed
/// group's mean session time and availability under each arm, the number
/// of committed migrations, and the on-arm SLO verdict, per episode.
pub fn render_adaptive_table(app: AppKind, cells: &[AdaptiveCell]) -> String {
    let mut out = format!(
        "{} adaptation suite — controller on vs frozen ({STRESSED_GROUP} group):\n  \
         {:<18} {:>10} {:>10}   {:>8} {:>8}   {:>10}  {:>8}\n",
        app.name(),
        "episode",
        "on ms",
        "off ms",
        "on avail",
        "off av",
        "migrations",
        "SLO(on)",
    );
    for episode in AdaptiveEpisode::all() {
        let arm = |name| {
            cells
                .iter()
                .find(|c| c.episode == episode && c.arm == name)
                .expect("suite covers every episode x arm")
        };
        let (on, off) = (arm("on"), arm("off"));
        let ms = |c: &AdaptiveCell| {
            c.stressed_session_ms()
                .map_or("-".to_string(), |v| format!("{v:.0}"))
        };
        out.push_str(&format!(
            "  {:<18} {:>10} {:>10}   {:>8.4} {:>8.4}   {:>10}  {:>8}\n",
            episode.name(),
            ms(on),
            ms(off),
            on.stressed_availability(),
            off.stressed_availability(),
            on.migration_count(),
            if on.slo.all_met() { "met" } else { "MISSED" },
        ));
    }
    out
}

fn leading_number(rest: &str) -> Result<f64, String> {
    let num = rest.split([',', '}', ']']).next().unwrap_or_default();
    num.parse()
        .map_err(|_| format!("bad number {num:?} in adaptive document"))
}

/// Structurally validates a `BENCH_adaptive.json` document: balanced
/// braces/brackets, the required header and section keys, known episode
/// and arm names, every `availability` in `[0, 1]` — and the suite's
/// physics: the quiescent on-arm committed **zero** migrations while the
/// link-degradation on-arm committed at least one. Returns the number of
/// arm cells found.
///
/// This is a purpose-built scanner for our own renderer's output, not a
/// general JSON parser (the vendored `serde` is a stub).
pub fn validate_adaptive_json(json: &str) -> Result<usize, String> {
    let (mut braces, mut brackets) = (0i64, 0i64);
    for ch in json.chars() {
        match ch {
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            return Err("closing brace before its opener".to_string());
        }
    }
    if braces != 0 || brackets != 0 {
        return Err(format!(
            "unbalanced document ({braces} braces, {brackets} brackets open)"
        ));
    }
    if !json.starts_with("{\"suite\":\"adaptive\"") {
        return Err("missing {\"suite\":\"adaptive\"} header".to_string());
    }
    for key in [
        "\"mode\":",
        "\"seed\":",
        "\"apps\":",
        "\"episodes\":",
        "\"migrations\":",
        "\"rounds\":",
        "\"slo\":",
        "\"delta\":",
    ] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    for rest in after_each(json, "\"episode\":\"") {
        let name = rest.split('"').next().unwrap_or_default();
        if !AdaptiveEpisode::all().iter().any(|e| e.name() == name) {
            return Err(format!("unknown episode {name:?}"));
        }
    }
    for rest in after_each(json, "\"arm\":\"") {
        let name = rest.split('"').next().unwrap_or_default();
        if name != "on" && name != "off" {
            return Err(format!("unknown controller arm {name:?}"));
        }
    }
    for rest in after_each(json, "\"availability\":") {
        let v = leading_number(rest)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("availability {v} out of [0,1]"));
        }
    }
    // Physics: the on-arm migration count per episode. Episode chunks run
    // to the next episode header, so the adjacent arm/count pairs below
    // belong to the episode that opened the chunk.
    for rest in after_each(json, "\"episode\":\"") {
        let episode = rest.split('"').next().unwrap_or_default();
        let chunk = rest.split("\"episode\":\"").next().unwrap_or(rest);
        let counts = after_each(chunk, "\"arm\":\"on\",\"migration_count\":");
        if counts.len() != 1 {
            return Err(format!(
                "episode {episode:?} has {} on-arms, wanted exactly one",
                counts.len()
            ));
        }
        let count = leading_number(counts[0])? as i64;
        match episode {
            "quiescent" if count != 0 => {
                return Err(format!(
                    "the quiescent control committed {count} migrations; the drift floor must \
                     hold at zero"
                ));
            }
            "link-degradation" if count == 0 => {
                return Err(
                    "the link-degradation on-arm committed no migrations; the controller \
                     must react to the slowed corridor"
                        .to_string(),
                );
            }
            _ => {}
        }
        if after_each(chunk, "\"arm\":\"off\",\"migration_count\":")
            .first()
            .map(|r| leading_number(r))
            .transpose()?
            != Some(0.0)
        {
            return Err(format!(
                "episode {episode:?} frozen arm reports migrations (or none at all)"
            ));
        }
    }
    let cells = after_each(json, "\"arm\":\"").len();
    if cells == 0 {
        return Err("no arm cells".to_string());
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_renders_validates_and_pins_the_physics() {
        let cells = run_adaptive_suite(AppKind::PetStore, true, true, 42);
        assert_eq!(cells.len(), AdaptiveEpisode::all().len() * 2);
        let degraded_on = cells
            .iter()
            .find(|c| c.episode == AdaptiveEpisode::LinkDegradation && c.arm == "on")
            .unwrap();
        assert!(
            degraded_on.migration_count() > 0,
            "smoke windows must leave the controller room to react"
        );
        let quiescent_on = cells
            .iter()
            .find(|c| c.episode == AdaptiveEpisode::Quiescent && c.arm == "on")
            .unwrap();
        assert_eq!(quiescent_on.migration_count(), 0);
        for cell in cells.iter().filter(|c| c.arm == "off") {
            assert!(cell.report.adaptive.is_none());
        }
        let sweeps = [(AppKind::PetStore, cells)];
        let json = render_adaptive_json(&sweeps, 42, "smoke");
        assert_eq!(validate_adaptive_json(&json), Ok(8));
        let table = render_adaptive_table(AppKind::PetStore, &sweeps[0].1);
        for episode in AdaptiveEpisode::all() {
            assert!(table.contains(episode.name()));
        }
    }

    #[test]
    fn same_seed_suites_render_byte_identically() {
        let render = || {
            let cells = run_adaptive_suite(AppKind::PetStore, true, true, 9);
            render_adaptive_json(&[(AppKind::PetStore, cells)], 9, "smoke")
        };
        assert_eq!(render(), render());
    }

    /// A minimal well-formed document the rejection tests tamper with.
    fn minimal_doc(quiescent_on: usize, degradation_on: usize) -> String {
        let episode = |name: &str, on: usize| {
            format!(
                "{{\"episode\":\"{name}\",\"arms\":[\
                 {{\"arm\":\"on\",\"migration_count\":{on},\"availability\":1.0000,\
                 \"migrations\":[],\"rounds\":[],\"slo\":{{}}}},\
                 {{\"arm\":\"off\",\"migration_count\":0,\"availability\":1.0000}}],\
                 \"delta\":{{}}}}"
            )
        };
        format!(
            "{{\"suite\":\"adaptive\",\"mode\":\"smoke\",\"seed\":1,\"apps\":[\
             {{\"app\":\"petstore\",\"episodes\":[{},{},{},{}]}}]}}",
            episode("quiescent", quiescent_on),
            episode("flash-crowd", 1),
            episode("link-degradation", degradation_on),
            episode("diurnal-shift", 0),
        )
    }

    #[test]
    fn validator_rejects_tampering() {
        let json = minimal_doc(0, 2);
        assert_eq!(validate_adaptive_json(&json), Ok(8));
        // A thrashing quiescent control.
        assert!(validate_adaptive_json(&minimal_doc(3, 2)).is_err());
        // A controller asleep through the degradation.
        assert!(validate_adaptive_json(&minimal_doc(0, 0)).is_err());
        // A wrong suite header.
        let bad = json.replacen("\"suite\":\"adaptive\"", "\"suite\":\"faults\"", 1);
        assert!(validate_adaptive_json(&bad).is_err());
        // A truncated document.
        assert!(validate_adaptive_json(&json[..json.len() - 3]).is_err());
        // An unknown episode name.
        let bad = json.replace("diurnal-shift", "earthquake");
        assert!(validate_adaptive_json(&bad).is_err());
        // An out-of-range availability.
        let bad = json.replacen("\"availability\":1.0000", "\"availability\":9", 1);
        assert!(validate_adaptive_json(&bad).is_err());
        // A migrating frozen arm.
        let bad = json.replacen(
            "\"arm\":\"off\",\"migration_count\":0",
            "\"arm\":\"off\",\"migration_count\":1",
            1,
        );
        assert!(validate_adaptive_json(&bad).is_err());
    }
}
