//! `repro-report` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro-report [--app petstore|rubis|all] [--paper|--quick] [--seed N]
//!              [--tables] [--figures] [--compare] [--validate]
//!              [--sessions] [--topology] [--wiring] [--placement [--smoke]]
//!              [--simperf [--smoke] [--parallel N]] [--trace [config] [--smoke]]
//!              [--faults [--smoke]] [--metrics [config] [--smoke]]
//!              [--adaptive [--smoke]]
//! ```
//!
//! `--placement` measures placement move-evaluation throughput (full
//! recompute vs the incremental evaluator) on the paper-derived graphs and
//! on the multi-tier scale ladder (4/16/64/256 hosts), and writes
//! `BENCH_placement.json` to the current directory; `--smoke` stops the
//! ladder at the 64-host rung for CI's wall-clock-bounded gate.
//!
//! `--simperf` measures simulator request throughput at 1×/10×/100× the
//! paper's arrival rate, with the bound-program cache off (the full-binder
//! baseline) and on, and writes `BENCH_simperf.json`; `--smoke` shortens the
//! windows and stops at 10× for CI's wall-clock-bounded regression gate.
//! `--parallel N` caps the conservative-parallel engine's thread ladder
//! (1/2/4/8) measured on the eight-region fan-out topology; every thread
//! count is asserted in-process to produce an identical report digest.
//! `--parallel 0` skips the parallel rows.
//!
//! `--trace [config]` re-runs the sweep (or one named configuration) with
//! per-request tracing and the telemetry registry on, writes a compact span
//! log (`TRACE_<app>_<config>.spans.jsonl`), a Chrome `trace_event` document
//! loadable in Perfetto (`TRACE_<app>_<config>.chrome.json`) and
//! `BENCH_trace.json`, prints the per-page WAN critical-path decomposition,
//! and cross-checks the traced wide-area round trips against
//! `mutsvc-analyze`'s static walk (`W108`). `--smoke` shortens the windows
//! and traces every request.
//!
//! `--faults` runs the standard WAN fault suite (main-link partition, edge
//! crash, lossy link) across the five configurations with the recovery
//! policy on and off, prints the edge-1 availability table, checks the
//! graceful-degradation ordering (centralized < remote-facade < caching
//! configurations under the partition) and writes `BENCH_faults.json`.
//! `--smoke` shortens the windows for CI's schema-validation gate.
//!
//! `--metrics [config]` re-runs the sweep (or one named configuration) on
//! the conservative-parallel engine with the windowed metrics recorder
//! armed, grades each cell against a default SLO spec with the burn-rate
//! engine, statically cross-checks every objective against the analyzer's
//! WAN round-trip floor (`W113`, a hard failure), writes one byte-stable
//! window log per cell (`METRICS_<app>_<config>.jsonl`) and
//! `BENCH_metrics.json` (SLO verdicts, burn timeline, engine self-profile,
//! metrics-on/off wall-clock A/B). `--smoke` shortens the windows for CI.
//!
//! `--adaptive` runs the adaptation suite (quiescent, flash-crowd,
//! link-degradation, diurnal-shift) with the closed-loop live-migration
//! controller on and off, prints the per-episode on/off table and writes
//! `BENCH_adaptive.json` (migration schedules, cost trajectories, SLO
//! verdicts, stressed-group deltas). The written document must pass the
//! structural validator — the quiescent control commits zero migrations,
//! the link-degradation episode at least one. `--smoke` shortens the
//! windows for CI's schema-validation gate.
//!
//! With no selection flags, everything is printed. `--quick` (default) uses
//! a 90 s warm-up + 300 s measured window; `--paper` runs the full
//! one-hour windows of §3.3.

use mutsvc_apps::petstore::{BROWSER_MIX as PS_MIX, BUYER_SEQUENCE};
use mutsvc_apps::rubis::{BIDDER_SEQUENCE, BROWSER_MIX as RUBIS_MIX};
use mutsvc_bench::adaptive_artifacts::{
    render_adaptive_json, render_adaptive_table, run_adaptive_suite, validate_adaptive_json,
    AdaptiveCell,
};
use mutsvc_bench::fault_artifacts::{
    partition_ordering_violations, render_availability_table, render_faults_json, run_fault_suite,
    validate_faults_json, FaultCell,
};
use mutsvc_bench::metrics_artifacts::{
    metrics_jsonl, render_metrics_json, render_slo_table, run_metrics_sweep, validate_metrics_json,
    MetricsCell, OverheadSample,
};
use mutsvc_bench::placement_report::{
    measure_placement_ladder, measure_placement_throughput, render_placement_json,
};
use mutsvc_bench::run_sweep_parallel;
use mutsvc_bench::simperf_report::{
    measure_simperf, parallel_scaling_at, render_simperf_json, speedup_at, thread_counts,
};
use mutsvc_bench::trace_artifacts::{
    config_by_name, render_trace_json, render_wan_rt_table, run_traced_sweep,
    validate_chrome_trace, TraceCell,
};
use mutsvc_core::{
    paper_topology, render_comparison, render_figure, render_percentiles, render_table,
    validate_shapes, AppKind, Config,
};

struct Options {
    apps: Vec<AppKind>,
    quick: bool,
    seed: u64,
    tables: bool,
    figures: bool,
    compare: bool,
    validate: bool,
    sessions: bool,
    topology: bool,
    wiring: bool,
    percentiles: bool,
    placement: bool,
    simperf: bool,
    parallel: usize,
    smoke: bool,
    trace: bool,
    trace_config: Option<Config>,
    faults: bool,
    metrics: bool,
    metrics_config: Option<Config>,
    adaptive: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        apps: vec![AppKind::PetStore, AppKind::Rubis],
        quick: true,
        seed: 42,
        tables: false,
        figures: false,
        compare: false,
        validate: false,
        sessions: false,
        topology: false,
        wiring: false,
        percentiles: false,
        placement: false,
        simperf: false,
        parallel: 8,
        smoke: false,
        trace: false,
        trace_config: None,
        faults: false,
        metrics: false,
        metrics_config: None,
        adaptive: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--app" => match args.next().as_deref() {
                Some("petstore") => opts.apps = vec![AppKind::PetStore],
                Some("rubis") => opts.apps = vec![AppKind::Rubis],
                Some("all") => {}
                other => {
                    eprintln!("unknown --app {other:?}");
                    std::process::exit(2);
                }
            },
            "--paper" => opts.quick = false,
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--tables" => opts.tables = true,
            "--figures" => opts.figures = true,
            "--compare" => opts.compare = true,
            "--validate" => opts.validate = true,
            "--sessions" => opts.sessions = true,
            "--topology" => opts.topology = true,
            "--wiring" => opts.wiring = true,
            "--percentiles" => opts.percentiles = true,
            "--placement" => opts.placement = true,
            "--simperf" => opts.simperf = true,
            "--parallel" => {
                opts.parallel = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--parallel needs a thread count (0 skips the parallel rows)");
                    std::process::exit(2);
                });
            }
            "--smoke" => opts.smoke = true,
            "--faults" => opts.faults = true,
            "--adaptive" => opts.adaptive = true,
            "--trace" => {
                opts.trace = true;
                // Optional configuration name ("remote-facade", ...).
                if let Some(next) = args.peek() {
                    if !next.starts_with("--") {
                        let name = args.next().unwrap();
                        opts.trace_config = Some(config_by_name(&name).unwrap_or_else(|| {
                            eprintln!("unknown --trace configuration {name:?}");
                            std::process::exit(2);
                        }));
                    }
                }
            }
            "--metrics" => {
                opts.metrics = true;
                // Optional configuration name ("remote-facade", ...).
                if let Some(next) = args.peek() {
                    if !next.starts_with("--") {
                        let name = args.next().unwrap();
                        opts.metrics_config = Some(config_by_name(&name).unwrap_or_else(|| {
                            eprintln!("unknown --metrics configuration {name:?}");
                            std::process::exit(2);
                        }));
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "repro-report [--app petstore|rubis|all] [--paper|--quick] [--seed N]\n             [--tables] [--figures] [--compare] [--validate] [--percentiles]\n             [--sessions] [--topology] [--wiring] [--placement [--smoke]]\n             [--simperf [--smoke] [--parallel N]] [--trace [config] [--smoke]]\n             [--faults [--smoke]] [--metrics [config] [--smoke]]\n             [--adaptive [--smoke]]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if !(opts.tables
        || opts.figures
        || opts.compare
        || opts.validate
        || opts.percentiles
        || opts.sessions
        || opts.topology
        || opts.wiring
        || opts.placement
        || opts.simperf
        || opts.trace
        || opts.faults
        || opts.metrics
        || opts.adaptive)
    {
        opts.tables = true;
        opts.figures = true;
        opts.compare = true;
        opts.validate = true;
    }
    opts
}

fn print_sessions() {
    println!("Table 2: Java Pet Store Browser session mix (20 requests)");
    for (page, pct) in PS_MIX {
        println!("  {:<10} {pct:>5.1}%", page.name());
    }
    println!("Table 3: Java Pet Store Buyer session sequence");
    for page in BUYER_SEQUENCE {
        println!("  {}", page.name());
    }
    println!("Table 4: RUBiS Browser session mix (40 requests)");
    for (page, pct) in RUBIS_MIX {
        println!("  {:<16} {pct:>5.1}%", page.name());
    }
    println!("Table 5: RUBiS Bidder session sequence");
    for page in BIDDER_SEQUENCE {
        println!("  {}", page.name());
    }
}

fn print_topology() {
    for (label, db_on_main) in [
        ("Pet Store (Oracle on a LAN host)", false),
        ("RUBiS (MySQL on main)", true),
    ] {
        let (topology, nodes) = paper_topology(db_on_main);
        println!("Figure 2 topology — {label}");
        for id in topology.node_ids() {
            let spec = topology.node(id);
            println!("  node {:<14} cpus={}", spec.name, spec.cpus);
        }
        println!(
            "  WAN one-way main<->edge1: {:.1} ms; edge1<->edge2: {:.1} ms",
            topology
                .path_latency(nodes.main, nodes.edge1)
                .as_millis_f64(),
            topology
                .path_latency(nodes.edge1, nodes.edge2)
                .as_millis_f64(),
        );
    }
}

fn print_wiring(app: AppKind) {
    println!("Figures 3-6 wiring — {} deployment descriptors", app.name());
    for config in Config::all() {
        let scenario = mutsvc_core::Scenario::quick(app, config);
        let (input, nodes) = scenario.build();
        println!("-- {} (§{})", config.name(), config.section());
        println!(
            "   entity propagation: {:?}; query cache tags: {}; stub caching: {}",
            input.descriptor.entity_propagation,
            input.descriptor.query_cache.cacheable_tags.len(),
            input.descriptor.stub_caching,
        );
        let mut edge_hosted = Vec::new();
        for (&component, placement) in &input.descriptor.placements {
            if placement.hosts(nodes.edge1) {
                edge_hosted.push(input.registry.spec(component).name.clone());
            }
        }
        edge_hosted.sort();
        println!(
            "   on edges: {}",
            if edge_hosted.is_empty() {
                "(nothing)".to_string()
            } else {
                edge_hosted.join(", ")
            }
        );
    }
}

fn print_placement_throughput(smoke: bool) {
    // The smoke gate (CI) stops the scale ladder at the 64-host rung; the
    // full report climbs to 256 hosts.
    let max_hosts = if smoke { 64 } else { 256 };
    eprintln!(
        "measuring placement move throughput (1000-move sequences, ladder to {max_hosts} hosts)..."
    );
    let mut cells = measure_placement_throughput(1_000, 42);
    cells.extend(measure_placement_ladder(1_000, 42, max_hosts));
    println!("placement move throughput (moves/sec):");
    for cell in &cells {
        println!(
            "  {:<12} {:<16} {:>4} hosts {:>12.0} moves/s  build {:>8.3} ms  table {:>12} B  final cost {:>10.1} ms/s",
            cell.graph,
            cell.algorithm,
            cell.hosts,
            cell.moves_per_sec,
            cell.build_ms,
            cell.table_bytes,
            cell.final_cost
        );
    }
    let json = render_placement_json(&cells);
    let path = "BENCH_placement.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn print_simperf(smoke: bool, seed: u64, parallel: usize) {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "measuring simulator hot-path throughput ({} mode, seed {seed}, \
         {cores} core(s), parallel cap {parallel})...",
        if smoke { "smoke" } else { "full" }
    );
    let cells = measure_simperf(smoke, seed, parallel);
    println!("simulator request throughput (requests/sec wall-clock):");
    for cell in &cells {
        let engine = if cell.threads == 0 {
            "seq   ".to_string()
        } else {
            format!(
                "par/{}t{}",
                cell.threads,
                if cell.threads < 10 { " " } else { "" }
            )
        };
        println!(
            "  {:<9} {:>4}x load  {engine}  cache {:<3}  {:>9.0} req/s  \
             {:>11.0} events/s  hit rate {:>5.1}%  boxed {}",
            cell.app,
            cell.load_factor,
            if cell.bind_cache { "on" } else { "off" },
            cell.requests_per_sec,
            cell.events_per_sec,
            cell.hit_rate * 100.0,
            cell.boxed_events
        );
    }
    let top = if smoke { 10 } else { 100 };
    for app in ["petstore", "rubis"] {
        println!(
            "  {app}: {:.1}x requests/s with the bound-program cache at {top}x load",
            speedup_at(&cells, app, top)
        );
        for t in thread_counts(parallel) {
            if t > 1 {
                println!(
                    "  {app}: {:.2}x requests/s at {t} threads vs 1 \
                     (8-region fan-out, {cores} core(s) available)",
                    parallel_scaling_at(&cells, app, t)
                );
            }
        }
    }
    let json = render_simperf_json(&cells, cores);
    let path = "BENCH_simperf.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// How many traces the Chrome export keeps per configuration — enough to
/// inspect one of each page in Perfetto without a multi-megabyte document.
const CHROME_TRACE_CAP: usize = 25;

fn print_trace(opts: &Options) {
    let configs: Vec<Config> = match opts.trace_config {
        Some(config) => vec![config],
        None => Config::all().to_vec(),
    };
    let mut sweeps: Vec<(AppKind, Vec<TraceCell>)> = Vec::new();
    for &app in &opts.apps {
        eprintln!(
            "running traced {} sweep ({} mode, seed {})...",
            app.name(),
            if opts.smoke {
                "smoke"
            } else if opts.quick {
                "quick"
            } else {
                "paper"
            },
            opts.seed
        );
        let cells = run_traced_sweep(app, &configs, opts.quick, opts.smoke, opts.seed);
        for cell in &cells {
            let data = cell.report.trace.as_ref().unwrap();
            let spans_path = format!("TRACE_{}_{}.spans.jsonl", app.name(), cell.config.name());
            match std::fs::write(&spans_path, mutsvc_workload::jsonl(data)) {
                Ok(()) => println!("wrote {spans_path} ({} traces)", data.traces.len()),
                Err(e) => eprintln!("failed to write {spans_path}: {e}"),
            }
            let chrome = mutsvc_workload::chrome_trace_json(data, CHROME_TRACE_CAP);
            match validate_chrome_trace(&chrome) {
                Ok(pairs) => {
                    let chrome_path =
                        format!("TRACE_{}_{}.chrome.json", app.name(), cell.config.name());
                    match std::fs::write(&chrome_path, &chrome) {
                        Ok(()) => println!("wrote {chrome_path} ({pairs} span pairs)"),
                        Err(e) => eprintln!("failed to write {chrome_path}: {e}"),
                    }
                }
                Err(e) => {
                    eprintln!("invalid Chrome trace for {}: {e}", cell.config.name());
                    std::process::exit(1);
                }
            }
            for diag in cell
                .static_report
                .diagnostics
                .iter()
                .filter(|d| d.code == "W108")
            {
                println!("  W108: {}", diag.message);
            }
        }
        println!("{}", render_wan_rt_table(app, &cells));
        sweeps.push((app, cells));
    }
    let json = render_trace_json(&sweeps);
    let path = "BENCH_trace.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    let w108: usize = sweeps
        .iter()
        .flat_map(|(_, cells)| cells.iter().map(|c| c.w108))
        .sum();
    if w108 > 0 {
        println!("traced/static WAN cross-check: {w108} W108 warning(s)");
    } else {
        println!("traced/static WAN cross-check: all pages agree");
    }
}

fn print_faults(opts: &Options) {
    let mode = if opts.smoke {
        "smoke"
    } else if opts.quick {
        "quick"
    } else {
        "paper"
    };
    let mut sweeps: Vec<(AppKind, Vec<FaultCell>)> = Vec::new();
    let mut violations = Vec::new();
    for &app in &opts.apps {
        eprintln!(
            "running {} fault suite ({mode} mode, seed {}; 5 configs x 3 episodes x 2 policies)...",
            app.name(),
            opts.seed
        );
        let cells = run_fault_suite(app, opts.quick, opts.smoke, opts.seed);
        println!("{}", render_availability_table(app, &cells));
        for v in partition_ordering_violations(&cells) {
            violations.push(format!("{}: {v}", app.name()));
        }
        sweeps.push((app, cells));
    }
    let json = render_faults_json(&sweeps, opts.seed, mode);
    match validate_faults_json(&json) {
        Ok(cells) => {
            let path = "BENCH_faults.json";
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote {path} ({cells} cells)"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
        Err(e) => {
            eprintln!("invalid BENCH_faults.json: {e}");
            std::process::exit(1);
        }
    }
    if violations.is_empty() {
        println!(
            "graceful degradation: centralized < remote-facade < caching \
             configurations under the main-link partition"
        );
    } else {
        println!("graceful-degradation ordering violations:");
        for v in &violations {
            println!("  - {v}");
        }
        // Smoke windows are too short for stable availability ordering;
        // the full windows must reproduce the paper's claim.
        if !opts.smoke {
            std::process::exit(1);
        }
    }
}

fn print_metrics(opts: &Options) {
    let mode = if opts.smoke {
        "smoke"
    } else if opts.quick {
        "quick"
    } else {
        "paper"
    };
    let configs: Vec<Config> = match opts.metrics_config {
        Some(config) => vec![config],
        None => Config::all().to_vec(),
    };
    let mut sweeps: Vec<(AppKind, Vec<MetricsCell>, OverheadSample)> = Vec::new();
    let mut unreachable = 0usize;
    for &app in &opts.apps {
        eprintln!(
            "running {} metrics sweep ({mode} mode, seed {}; recorder on + off A/B)...",
            app.name(),
            opts.seed
        );
        let (cells, overhead) = run_metrics_sweep(app, &configs, opts.quick, opts.smoke, opts.seed);
        for cell in &cells {
            let data = cell.report.metrics.as_ref().unwrap();
            let path = format!("METRICS_{}_{}.jsonl", app.name(), cell.config.name());
            match std::fs::write(&path, metrics_jsonl(data)) {
                Ok(()) => println!("wrote {path} ({} windows)", data.recorder.rows().len()),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
            for diag in cell
                .static_report
                .diagnostics
                .iter()
                .filter(|d| d.code == "W113")
            {
                println!("  W113: {}", diag.message);
            }
            unreachable += cell.w113;
        }
        println!("{}", render_slo_table(app, &cells));
        println!(
            "  recording overhead: on {:.0} ms vs off {:.0} ms ({:+.2}%)",
            overhead.on_ms,
            overhead.off_ms,
            overhead.pct()
        );
        sweeps.push((app, cells, overhead));
    }
    let json = render_metrics_json(&sweeps, opts.seed, mode);
    match validate_metrics_json(&json) {
        Ok(cells) => {
            let path = "BENCH_metrics.json";
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote {path} ({cells} cells)"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
        Err(e) => {
            eprintln!("invalid BENCH_metrics.json: {e}");
            std::process::exit(1);
        }
    }
    if unreachable > 0 {
        eprintln!(
            "SLO reachability: {unreachable} W113 warning(s) — an objective sits below \
             the static WAN round-trip floor"
        );
        std::process::exit(1);
    }
    println!("SLO reachability: every objective clears the static WAN floor");
}

fn print_adaptive(opts: &Options) {
    let mode = if opts.smoke {
        "smoke"
    } else if opts.quick {
        "quick"
    } else {
        "paper"
    };
    let mut sweeps: Vec<(AppKind, Vec<AdaptiveCell>)> = Vec::new();
    for &app in &opts.apps {
        eprintln!(
            "running {} adaptation suite ({mode} mode, seed {}; 4 episodes x controller on/off)...",
            app.name(),
            opts.seed
        );
        let cells = run_adaptive_suite(app, opts.quick, opts.smoke, opts.seed);
        println!("{}", render_adaptive_table(app, &cells));
        for cell in cells.iter().filter(|c| c.arm == "on") {
            if let Some(data) = &cell.report.adaptive {
                for m in &data.migrations {
                    println!(
                        "  {} @{:.0}s: {} {} {} -> {} (modeled gain {:.0} ms/s)",
                        cell.episode.name(),
                        m.decided_at.as_secs_f64(),
                        match m.kind {
                            mutsvc_workload::MoveKind::Primary => "re-home",
                            mutsvc_workload::MoveKind::Replica => "replicate",
                        },
                        m.component,
                        m.from,
                        m.to,
                        m.modeled_gain,
                    );
                }
            }
        }
        sweeps.push((app, cells));
    }
    let json = render_adaptive_json(&sweeps, opts.seed, mode);
    match validate_adaptive_json(&json) {
        Ok(cells) => {
            let path = "BENCH_adaptive.json";
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote {path} ({cells} arm cells)"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
        Err(e) => {
            eprintln!("invalid BENCH_adaptive.json: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let opts = parse_args();
    if opts.placement {
        print_placement_throughput(opts.smoke);
    }
    if opts.simperf {
        print_simperf(opts.smoke, opts.seed, opts.parallel);
    }
    if opts.trace {
        print_trace(&opts);
    }
    if opts.faults {
        print_faults(&opts);
    }
    if opts.metrics {
        print_metrics(&opts);
    }
    if opts.adaptive {
        print_adaptive(&opts);
    }
    if opts.sessions {
        print_sessions();
    }
    if opts.topology {
        print_topology();
    }
    if opts.wiring {
        for &app in &opts.apps {
            print_wiring(app);
        }
    }
    if !(opts.tables || opts.figures || opts.compare || opts.validate || opts.percentiles) {
        return;
    }
    for &app in &opts.apps {
        eprintln!(
            "running {} sweep ({} mode, seed {})...",
            app.name(),
            if opts.quick { "quick" } else { "paper" },
            opts.seed
        );
        let reports = run_sweep_parallel(app, opts.quick, opts.seed);
        if opts.tables {
            println!("{}", render_table(app, &reports));
        }
        if opts.percentiles {
            println!("{}", render_percentiles(app, &reports));
        }
        if opts.compare {
            println!("{}", render_comparison(app, &reports));
        }
        if opts.figures {
            println!("{}", render_figure(app, &reports));
        }
        if opts.validate {
            let violations = validate_shapes(app, &reports);
            if violations.is_empty() {
                println!("shape validation ({}): all criteria hold\n", app.name());
            } else {
                println!(
                    "shape validation ({}): {} violations",
                    app.name(),
                    violations.len()
                );
                for v in &violations {
                    println!("  - {v}");
                }
                println!();
            }
        }
        for report in &reports {
            let util: Vec<String> = report
                .cpu_utilization
                .iter()
                .filter(|(n, _)| !n.starts_with("client") && n != "router")
                .map(|(n, u)| format!("{n}={:.0}%", u * 100.0))
                .collect();
            eprintln!(
                "  {}: {} requests, cpu {}",
                report.config,
                report.completed,
                util.join(" ")
            );
        }
    }
}
