//! # mutsvc-bench — benchmark harness support
//!
//! Shared helpers for the report binary and the Criterion benches: parallel
//! sweep execution across scenario cells, the placement move-throughput
//! measurement behind `BENCH_placement.json`, and the simulator hot-path
//! throughput measurement behind `BENCH_simperf.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive_artifacts;
pub mod fault_artifacts;
pub mod metrics_artifacts;
pub mod placement_report;
pub mod simperf_report;
pub mod trace_artifacts;

use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_workload::ExperimentReport;

/// Runs a batch of scenarios in parallel (one thread per scenario — each is
/// internally single-threaded and deterministic, so the reports are
/// identical to running them sequentially).
///
/// Scoped threads are named after their configuration, so a panicking
/// scenario reports *which* cell died (both in the thread's own panic
/// message and in the join error here) instead of an anonymous
/// "scenario thread panicked".
pub fn run_scenarios_parallel(scenarios: Vec<Scenario>) -> Vec<ExperimentReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = scenarios
            .into_iter()
            .map(|scenario| {
                let name = scenario.config.name();
                let handle = std::thread::Builder::new()
                    .name(format!("sweep-{name}"))
                    .spawn_scoped(scope, move || scenario.run())
                    .unwrap_or_else(|e| panic!("failed to spawn sweep-{name}: {e}"));
                (name, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(name, handle)| {
                handle
                    .join()
                    .unwrap_or_else(|_| panic!("scenario {name} panicked"))
            })
            .collect()
    })
}

/// Runs the five configurations of `app` in parallel.
pub fn run_sweep_parallel(app: AppKind, quick: bool, seed: u64) -> Vec<ExperimentReport> {
    let scenarios = Config::all()
        .into_iter()
        .map(|config| {
            let scenario = if quick {
                Scenario::quick(app, config)
            } else {
                Scenario::paper(app, config)
            };
            scenario.with_seed(seed)
        })
        .collect();
    run_scenarios_parallel(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_matches_sequential_order() {
        // Tiny scenarios: just verify ordering and determinism of assembly.
        let reports = run_sweep_parallel(AppKind::Rubis, true, 1);
        let names: Vec<_> = reports.iter().map(|r| r.config.clone()).collect();
        let expected: Vec<_> = Config::all().iter().map(|c| c.name().to_string()).collect();
        assert_eq!(names, expected);
    }
}
