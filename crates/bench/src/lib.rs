//! # mutsvc-bench — benchmark harness support
//!
//! Shared helpers for the report binary and the Criterion benches: parallel
//! sweep execution across scenario cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_workload::ExperimentReport;

/// Runs the five configurations of `app` in parallel (one thread per
/// configuration — each scenario is internally single-threaded and
/// deterministic).
pub fn run_sweep_parallel(app: AppKind, quick: bool, seed: u64) -> Vec<ExperimentReport> {
    let mut handles = Vec::new();
    for config in Config::all() {
        handles.push(std::thread::spawn(move || {
            let scenario = if quick {
                Scenario::quick(app, config)
            } else {
                Scenario::paper(app, config)
            };
            scenario.with_seed(seed).run()
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("scenario thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_matches_sequential_order() {
        // Tiny scenarios: just verify ordering and determinism of assembly.
        let reports = run_sweep_parallel(AppKind::Rubis, true, 1);
        let names: Vec<_> = reports.iter().map(|r| r.config.clone()).collect();
        let expected: Vec<_> = Config::all().iter().map(|c| c.name().to_string()).collect();
        assert_eq!(names, expected);
    }
}
