//! Simulator hot-path throughput measurement behind `repro-report --simperf`
//! (`BENCH_simperf.json`).
//!
//! Runs the paper topology at 1×/10×/100× the §3.3 arrival rate (30 req/s),
//! for both applications under the full §4.5 configuration, twice per load
//! point **in the same process**: once as the faithful pre-overhaul
//! baseline (`WorkloadSpec::legacy_baseline` — full `Binder` walk per
//! request, per-request `String` clones, one `Box<dyn FnOnce>` per event)
//! and once with the overhauled hot path (typed events + bound-program
//! cache). Both runs complete the identical open workload — the driver-level
//! equivalence suite pins bit-identical simulated results — so requests/s is
//! a pure wall-clock ratio and the reported speedup is apples-to-apples.
//!
//! The modelled hardware is provisioned with the load
//! ([`mutsvc_netsim::Topology::scale_capacity`]): at 100× the paper's
//! arrival rate the nodes and links are 100× faster, so completions track
//! the offered load and the simulator — not the modelled system — stays the
//! thing being measured.
//!
//! The cells double as the hot path's allocation audit: `boxed_events` must
//! stay at the handful of control events a run schedules (one stats reset
//! plus one per perturbation) no matter how many requests fly, or the
//! measurement itself panics.
//!
//! A second family of rows measures the conservative-parallel engine
//! (DESIGN.md §6.5) on a widened eight-region fan-out topology at thread
//! counts 1/2/4/8 (capped by `--parallel N`). Because the parallel merge is
//! deterministic by construction, the bench asserts in-process that every
//! thread count produces an identical report digest before it reports any
//! wall-clock number — a scaling figure that changed the answer would panic
//! instead of printing.

use std::time::Instant;

use mutsvc_core::{fanout_input, AppKind, Config, Scenario};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::{run_experiment, run_experiment_parallel, ExperimentReport};

/// One measured cell: an application at a load factor, cache on or off.
#[derive(Debug, Clone)]
pub struct SimperfCell {
    /// Application name: `"petstore"` or `"rubis"`.
    pub app: &'static str,
    /// Configuration under test (the full §4.5 deployment).
    pub config: &'static str,
    /// Multiplier on the paper's 30 req/s arrival rate.
    pub load_factor: u32,
    /// Whether the bound-program cache was enabled.
    pub bind_cache: bool,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Requests completed within the measured window.
    pub completed: u64,
    /// Completed requests per wall-clock second — the headline metric.
    pub requests_per_sec: f64,
    /// Simulator events fired over the run.
    pub events_fired: u64,
    /// Events fired per wall-clock second.
    pub events_per_sec: f64,
    /// Boxed-closure events scheduled (the allocation counter; bounded by
    /// the run's control events, independent of load).
    pub boxed_events: u64,
    /// Bound-program cache hit rate over all issued requests (0 when off).
    pub hit_rate: f64,
    /// OS threads of the conservative-parallel engine; 0 for rows measured
    /// on the classic sequential engine.
    pub threads: usize,
    /// Events fired per shard, in shard order (empty for sequential rows).
    pub shard_events: Vec<u64>,
}

/// Load factors measured: `--smoke` stops at 10× so CI stays inside its
/// wall-clock ceiling; the full report sweeps to the 100× target.
pub fn load_factors(smoke: bool) -> &'static [u32] {
    if smoke {
        &[1, 10]
    } else {
        &[1, 10, 100]
    }
}

fn run_cell(app: AppKind, factor: u32, bind_cache: bool, smoke: bool, seed: u64) -> SimperfCell {
    let config = Config::AsyncUpdates;
    let (mut input, _) = Scenario::quick(app, config).build();
    let (warmup, duration) = if smoke {
        (SimDuration::from_secs(10), SimDuration::from_secs(30))
    } else {
        (SimDuration::from_secs(20), SimDuration::from_secs(100))
    };
    // Provision the modelled hardware with the load: the bench measures the
    // simulator's throughput, not the paper topology's saturation point.
    input.topology.scale_capacity(factor as f64);
    input.spec = input
        .spec
        .scale_rates(factor as f64)
        .with_duration(warmup, duration)
        .with_seed(seed);
    input.spec = if bind_cache {
        input.spec.with_bind_cache(true)
    } else {
        input.spec.as_legacy_baseline()
    };

    let started = Instant::now();
    let report = run_experiment(input);
    let wall = started.elapsed().as_secs_f64().max(1e-9);

    // The allocation audit: the overhauled hot path schedules typed events
    // only, so the boxed count is the run's control events (the stats
    // reset), not a function of the request count; the legacy baseline
    // boxes every event by design.
    if bind_cache {
        assert!(
            report.boxed_events <= 4,
            "{}/{factor}x: hot path regressed to boxed events ({} scheduled)",
            app.name(),
            report.boxed_events
        );
    } else {
        assert!(
            report.boxed_events >= report.events_fired,
            "{}/{factor}x: legacy baseline did not box its events",
            app.name()
        );
    }

    let issued = report.bind_cache.hits + report.bind_cache.misses;
    SimperfCell {
        app: app.name(),
        config: config.name(),
        load_factor: factor,
        bind_cache,
        wall_secs: wall,
        completed: report.completed,
        requests_per_sec: report.completed as f64 / wall,
        events_fired: report.events_fired,
        events_per_sec: report.events_fired as f64 / wall,
        boxed_events: report.boxed_events,
        hit_rate: if issued == 0 {
            0.0
        } else {
            report.bind_cache.hits as f64 / issued as f64
        },
        threads: 0,
        shard_events: Vec::new(),
    }
}

/// How many WAN edge regions the parallel rows fan out to. With the local
/// cluster that makes eight client regions, so eight shards — one per thread
/// at the widest measured thread count.
pub const PARALLEL_EDGES: usize = 7;

/// Thread counts measured for the parallel rows: the 1/2/4/8 ladder clipped
/// to `--parallel N` (1 is always kept as the scaling baseline).
pub fn thread_counts(cap: usize) -> Vec<usize> {
    [1, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= cap)
        .collect()
}

/// A deterministic fingerprint of everything a parallel run computed:
/// the merged statistics (every Welford accumulator and P² marker), the
/// per-shard event counts and the cache counters. Wall-clock is excluded;
/// two runs that simulated the same history digest identically.
fn report_digest(report: &ExperimentReport) -> String {
    format!(
        "{} {} {:?} {:?} {:?} {:?}",
        report.completed,
        report.events_fired,
        report.shard_events,
        report.bind_cache,
        report.stats,
        report.staleness_ms,
    )
}

fn run_parallel_cell(
    app: AppKind,
    factor: u32,
    threads: usize,
    smoke: bool,
    seed: u64,
) -> (SimperfCell, String) {
    let config = Config::AsyncUpdates;
    let mut input = fanout_input(app, config, PARALLEL_EDGES, seed);
    let (warmup, duration) = if smoke {
        (SimDuration::from_secs(10), SimDuration::from_secs(30))
    } else {
        (SimDuration::from_secs(20), SimDuration::from_secs(100))
    };
    input.topology.scale_capacity(factor as f64);
    input.spec = input
        .spec
        .scale_rates(factor as f64)
        .with_duration(warmup, duration)
        .with_bind_cache(true);

    let started = Instant::now();
    let report = run_experiment_parallel(input, threads);
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let digest = report_digest(&report);

    let issued = report.bind_cache.hits + report.bind_cache.misses;
    let cell = SimperfCell {
        app: app.name(),
        config: config.name(),
        load_factor: factor,
        bind_cache: true,
        wall_secs: wall,
        completed: report.completed,
        requests_per_sec: report.completed as f64 / wall,
        events_fired: report.events_fired,
        events_per_sec: report.events_fired as f64 / wall,
        boxed_events: report.boxed_events,
        hit_rate: if issued == 0 {
            0.0
        } else {
            report.bind_cache.hits as f64 / issued as f64
        },
        threads,
        shard_events: report.shard_events,
    };
    (cell, digest)
}

/// Measures both applications across the load factors, cache off then on at
/// each point. Cells come back grouped `(app, factor, [off, on])`. When
/// `parallel_cap > 0`, appends the conservative-parallel rows: each
/// application at the top load factor on the eight-region fan-out, at every
/// [`thread_counts`] point, asserting that all thread counts digest
/// identically before any number is reported.
pub fn measure_simperf(smoke: bool, seed: u64, parallel_cap: usize) -> Vec<SimperfCell> {
    let mut cells = Vec::new();
    for app in AppKind::all() {
        for &factor in load_factors(smoke) {
            for bind_cache in [false, true] {
                let cell = run_cell(app, factor, bind_cache, smoke, seed);
                if bind_cache {
                    // Write pages and pages crossing nodes are never
                    // memoizable, so 100% is unreachable by design; well
                    // under half means the fast path has stopped engaging.
                    assert!(
                        cell.hit_rate > 0.25,
                        "{}/{factor}x: bind cache barely hitting ({:.0}%)",
                        cell.app,
                        cell.hit_rate * 100.0
                    );
                }
                cells.push(cell);
            }
        }
    }
    if parallel_cap > 0 {
        let top = *load_factors(smoke).last().unwrap();
        for app in AppKind::all() {
            let mut baseline_digest: Option<String> = None;
            for threads in thread_counts(parallel_cap) {
                let (cell, digest) = run_parallel_cell(app, top, threads, smoke, seed);
                match &baseline_digest {
                    None => baseline_digest = Some(digest),
                    Some(expected) => assert_eq!(
                        expected,
                        &digest,
                        "{}/{top}x: {threads}-thread run diverged from the \
                         1-thread digest — the merge is no longer deterministic",
                        app.name()
                    ),
                }
                cells.push(cell);
            }
        }
    }
    cells
}

/// Cache-on over cache-off requests/s for one `(app, factor)` pair, over
/// the classic sequential rows.
pub fn speedup_at(cells: &[SimperfCell], app: &str, factor: u32) -> f64 {
    let rate = |cache: bool| {
        cells
            .iter()
            .find(|c| {
                c.app == app && c.load_factor == factor && c.bind_cache == cache && c.threads == 0
            })
            .map_or(f64::NAN, |c| c.requests_per_sec)
    };
    rate(true) / rate(false)
}

/// Requests/s of an application's `threads`-thread parallel row over its
/// 1-thread row — the conservative engine's scaling ratio.
pub fn parallel_scaling_at(cells: &[SimperfCell], app: &str, threads: usize) -> f64 {
    let rate = |t: usize| {
        cells
            .iter()
            .find(|c| c.app == app && c.threads == t)
            .map_or(f64::NAN, |c| c.requests_per_sec)
    };
    rate(threads) / rate(1)
}

/// Renders the cells as the `BENCH_simperf.json` document. Hand-formatted
/// (the vendored serde is a no-op stand-in); schema per entry:
/// `{"app", "config", "load_factor", "bind_cache", "threads", "wall_secs",
/// "completed", "requests_per_sec", "events_per_sec", "boxed_events",
/// "hit_rate", "shard_events"}` (`threads` 0 = classic sequential engine),
/// plus a top-level `"cores"` (the machine's available parallelism — the
/// honest context for any scaling ratio), a `"speedup"` map of
/// `app_factor` → cached/uncached requests/s over the sequential rows, and
/// a `"parallel_scaling"` map of `app_Nt` → N-thread over 1-thread
/// requests/s on the fan-out topology.
pub fn render_simperf_json(cells: &[SimperfCell], cores: usize) -> String {
    let mut out = format!("{{\n  \"cores\": {cores},\n  \"entries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let shards: Vec<String> = c.shard_events.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"config\": \"{}\", \"load_factor\": {}, \
             \"bind_cache\": {}, \"threads\": {}, \"wall_secs\": {:.3}, \
             \"completed\": {}, \"requests_per_sec\": {:.1}, \
             \"events_per_sec\": {:.1}, \"boxed_events\": {}, \
             \"hit_rate\": {:.4}, \"shard_events\": [{}]}}{comma}\n",
            c.app,
            c.config,
            c.load_factor,
            c.bind_cache,
            c.threads,
            c.wall_secs,
            c.completed,
            c.requests_per_sec,
            c.events_per_sec,
            c.boxed_events,
            c.hit_rate,
            shards.join(", ")
        ));
    }
    out.push_str("  ],\n  \"speedup\": {");
    let mut pairs = Vec::new();
    for c in cells.iter().filter(|c| c.threads == 0) {
        if !pairs.contains(&(c.app, c.load_factor)) {
            pairs.push((c.app, c.load_factor));
        }
    }
    for (i, (app, factor)) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        out.push_str(&format!(
            "\"{app}_{factor}x\": {:.2}{comma}",
            speedup_at(cells, app, *factor)
        ));
    }
    out.push_str("},\n  \"parallel_scaling\": {");
    let mut pairs = Vec::new();
    for c in cells.iter().filter(|c| c.threads > 1) {
        if !pairs.contains(&(c.app, c.threads)) {
            pairs.push((c.app, c.threads));
        }
    }
    for (i, (app, threads)) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        out.push_str(&format!(
            "\"{app}_{threads}t\": {:.2}{comma}",
            parallel_scaling_at(cells, app, *threads)
        ));
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(bind_cache: bool, threads: usize, rps: f64, shard_events: Vec<u64>) -> SimperfCell {
        SimperfCell {
            app: "rubis",
            config: "async-updates",
            load_factor: 10,
            bind_cache,
            wall_secs: 2.0,
            completed: 3000,
            requests_per_sec: rps,
            events_fired: 90_000,
            events_per_sec: 45_000.0,
            boxed_events: 1,
            hit_rate: if bind_cache { 0.93 } else { 0.0 },
            threads,
            shard_events,
        }
    }

    #[test]
    fn json_is_well_formed_and_speedup_indexed() {
        let cells = vec![
            cell(false, 0, 1500.0, Vec::new()),
            cell(true, 0, 12_000.0, Vec::new()),
        ];
        assert!((speedup_at(&cells, "rubis", 10) - 8.0).abs() < 1e-9);
        let json = render_simperf_json(&cells, 8);
        assert!(json.contains("\"cores\": 8"));
        assert!(json.contains("\"rubis_10x\": 8.00"));
        assert!(json.contains("\"threads\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn parallel_rows_index_their_scaling_and_shards() {
        let cells = vec![
            cell(true, 0, 12_000.0, Vec::new()),
            cell(true, 1, 2_000.0, vec![100, 200, 300]),
            cell(true, 4, 7_000.0, vec![100, 200, 300]),
        ];
        assert!((parallel_scaling_at(&cells, "rubis", 4) - 3.5).abs() < 1e-9);
        // Sequential-row speedup never reads the parallel rows.
        assert!(speedup_at(&cells, "rubis", 10).is_nan());
        let json = render_simperf_json(&cells, 1);
        assert!(json.contains("\"rubis_4t\": 3.50"));
        assert!(json.contains("\"shard_events\": [100, 200, 300]"));
        assert!(
            !json.contains("\"rubis_1t\""),
            "1t is the baseline, not a ratio"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn smoke_factors_stop_at_ten() {
        assert_eq!(load_factors(true), &[1, 10]);
        assert_eq!(load_factors(false), &[1, 10, 100]);
    }

    #[test]
    fn thread_ladder_is_clipped_by_the_cap() {
        assert_eq!(thread_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_counts(4), vec![1, 2, 4]);
        assert_eq!(thread_counts(3), vec![1, 2]);
        assert_eq!(thread_counts(1), vec![1]);
    }
}
