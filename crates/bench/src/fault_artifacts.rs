//! Fault-suite artifacts: `BENCH_faults.json` and the availability tables.
//!
//! `repro-report --faults` runs the five configurations under the standard
//! fault suite ([`FaultCase`]: main-link partition, edge crash, lossy link),
//! each with the recovery policy on (`resilient`) and off, and reports
//! availability, goodput, error rate, retries/failovers and staleness per
//! cell. The headline result is the paper's graceful-degradation claim:
//! under the main-link partition, edge-1 client availability orders
//! centralized < remote-facade < the caching configurations — the
//! centralized baseline goes dark behind the cut while edge caches keep
//! answering reads (with recorded staleness). Schedules are scripted, so a
//! same-seed suite run renders `BENCH_faults.json` byte-identically — the
//! determinism tests diff sequential vs parallel execution.

use mutsvc_core::{AppKind, Config, FaultCase, Scenario};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::{ExperimentReport, FaultPolicy, GroupOutcome};

/// The two recovery-policy arms every episode runs under.
pub fn suite_policies() -> [(&'static str, FaultPolicy); 2] {
    [
        ("resilient", FaultPolicy::resilient()),
        ("off", FaultPolicy::none()),
    ]
}

/// Builds the scenario one fault cell executes. Smoke mode shortens the
/// windows to 10 s warm-up + 40 s measured (CI wall-clock); the episode
/// then covers the middle half of the measured window either way.
pub fn fault_scenario(
    app: AppKind,
    config: Config,
    case: FaultCase,
    policy: FaultPolicy,
    quick: bool,
    smoke: bool,
    seed: u64,
) -> Scenario {
    let mut scenario = if quick || smoke {
        Scenario::quick(app, config)
    } else {
        Scenario::paper(app, config)
    };
    if smoke {
        scenario.warmup = SimDuration::from_secs(10);
        scenario.duration = SimDuration::from_secs(40);
    }
    scenario.with_seed(seed).with_fault_case(case, policy)
}

/// One fault-suite cell: a configuration run under one episode and policy.
pub struct FaultCell {
    /// The configuration.
    pub config: Config,
    /// The injected episode.
    pub case: FaultCase,
    /// Policy-arm name (`"resilient"` or `"off"`).
    pub policy: &'static str,
    /// Measured window (the goodput denominator).
    pub window: SimDuration,
    /// The finished run.
    pub report: ExperimentReport,
}

/// Runs the full suite for one application — every episode × policy arm ×
/// configuration — in parallel. Cells are ordered case-major, then policy,
/// then configuration (the order [`render_faults_json`] emits).
pub fn run_fault_suite(app: AppKind, quick: bool, smoke: bool, seed: u64) -> Vec<FaultCell> {
    let mut plan = Vec::new();
    for case in FaultCase::all() {
        for (name, policy) in suite_policies() {
            for config in Config::all() {
                let scenario = fault_scenario(app, config, case, policy, quick, smoke, seed);
                plan.push((config, case, name, scenario));
            }
        }
    }
    let scenarios: Vec<Scenario> = plan.iter().map(|(_, _, _, s)| s.clone()).collect();
    let reports = crate::run_scenarios_parallel(scenarios);
    plan.into_iter()
        .zip(reports)
        .map(|((config, case, policy, scenario), report)| FaultCell {
            config,
            case,
            policy,
            window: scenario.duration,
            report,
        })
        .collect()
}

pub(crate) fn fmt2(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn fmt4(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn outcome_json(outcome: &GroupOutcome, window: SimDuration) -> String {
    format!(
        "{{\"ok\":{},\"failed\":{},\"retries\":{},\"failovers\":{},\"stale_served\":{},\
         \"availability\":{},\"error_rate\":{},\"goodput_rps\":{}}}",
        outcome.ok,
        outcome.failed,
        outcome.retries,
        outcome.failovers,
        outcome.stale_served,
        fmt4(outcome.availability()),
        fmt4(outcome.error_rate()),
        fmt2(outcome.goodput(window)),
    )
}

/// Renders `BENCH_faults.json`: per app × episode × policy arm, each
/// configuration's request outcomes (total and per client group) and the
/// staleness distribution of partition-served reads.
pub fn render_faults_json(sweeps: &[(AppKind, Vec<FaultCell>)], seed: u64, mode: &str) -> String {
    let mut out = format!("{{\"suite\":\"faults\",\"mode\":\"{mode}\",\"seed\":{seed},\"apps\":[");
    for (ai, (app, cells)) in sweeps.iter().enumerate() {
        if ai > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n{{\"app\":\"{}\",\"cases\":[", app.name()));
        for (ci, case) in FaultCase::all().into_iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n{{\"case\":\"{}\",\"policies\":[", case.name()));
            for (pi, (policy, _)) in suite_policies().into_iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n{{\"policy\":\"{policy}\",\"configs\":["));
                let mut first = true;
                for cell in cells
                    .iter()
                    .filter(|c| c.case == case && c.policy == policy)
                {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let stats = &cell.report.stats;
                    let hist = stats.staleness_histogram();
                    out.push_str(&format!(
                        "\n{{\"config\":\"{}\",\"completed\":{},\"total\":{},\
                         \"staleness_ms\":{{\"count\":{},\"p50\":{},\"p95\":{}}},\"groups\":[",
                        cell.config.name(),
                        cell.report.completed,
                        outcome_json(&stats.total_outcome(), cell.window),
                        hist.total(),
                        fmt2(hist.quantile(0.5)),
                        fmt2(hist.quantile(0.95)),
                    ));
                    for (gi, (group, outcome)) in stats.outcomes().enumerate() {
                        if gi > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"group\":\"{group}\",\"outcome\":{}}}",
                            outcome_json(outcome, cell.window)
                        ));
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders the edge-1 client availability table of one suite run (rows:
/// episodes; columns: configurations; cells: `resilient policy / policy
/// off`). This is the README's five-configuration availability table.
pub fn render_availability_table(app: AppKind, cells: &[FaultCell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "edge-1 client availability under faults ({}; resilient policy / policy off):",
        app.name()
    );
    let _ = write!(out, "  {:<22}", "episode");
    for config in Config::all() {
        let _ = write!(out, " {:>17}", config.name());
    }
    out.push('\n');
    for case in FaultCase::all() {
        let _ = write!(out, "  {:<22}", case.name());
        for config in Config::all() {
            let avail = |policy: &str| {
                cells
                    .iter()
                    .find(|c| c.case == case && c.policy == policy && c.config == config)
                    .and_then(|c| c.report.stats.outcome("remote1"))
                    .map_or("-".to_string(), |o| format!("{:.2}", o.availability()))
            };
            let entry = format!("{}/{}", avail("resilient"), avail("off"));
            let _ = write!(out, " {entry:>17}");
        }
        out.push('\n');
    }
    out
}

/// Checks the §4 graceful-degradation claim on a finished suite: under the
/// main-link partition with the resilient policy, edge-1 client
/// availability must order centralized < remote-facade < every caching
/// configuration. Returns the violations (empty = the ordering holds).
pub fn partition_ordering_violations(cells: &[FaultCell]) -> Vec<String> {
    let avail = |config: Config| -> Option<f64> {
        cells
            .iter()
            .find(|c| {
                c.case == FaultCase::MainLinkPartition
                    && c.policy == "resilient"
                    && c.config == config
            })
            .and_then(|c| c.report.stats.outcome("remote1"))
            .map(mutsvc_workload::GroupOutcome::availability)
    };
    let (Some(central), Some(facade)) = (avail(Config::Centralized), avail(Config::RemoteFacade))
    else {
        return vec!["suite lacks the resilient main-link-partition cells".to_string()];
    };
    let mut violations = Vec::new();
    if facade <= central {
        violations.push(format!(
            "remote-facade availability {facade:.3} should exceed centralized {central:.3}"
        ));
    }
    for config in [
        Config::StatefulCaching,
        Config::QueryCaching,
        Config::AsyncUpdates,
    ] {
        match avail(config) {
            Some(v) if v > facade => {}
            Some(v) => violations.push(format!(
                "{} availability {v:.3} should exceed remote-facade {facade:.3}",
                config.name()
            )),
            None => violations.push(format!("no {} partition cell", config.name())),
        }
    }
    violations
}

pub(crate) fn after_each<'a>(json: &'a str, key: &str) -> Vec<&'a str> {
    json.match_indices(key)
        .map(|(i, m)| &json[i + m.len()..])
        .collect()
}

/// Structurally validates a `BENCH_faults.json` document: balanced
/// braces/brackets, the required header and section keys, known episode
/// names, and every `availability`/`error_rate` a number in `[0, 1]`.
/// Returns the number of configuration cells found.
///
/// This is a purpose-built scanner for our own renderer's output, not a
/// general JSON parser (the vendored `serde` is a stub).
pub fn validate_faults_json(json: &str) -> Result<usize, String> {
    let (mut braces, mut brackets) = (0i64, 0i64);
    for ch in json.chars() {
        match ch {
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            return Err("closing brace before its opener".to_string());
        }
    }
    if braces != 0 || brackets != 0 {
        return Err(format!(
            "unbalanced document ({braces} braces, {brackets} brackets open)"
        ));
    }
    if !json.starts_with("{\"suite\":\"faults\"") {
        return Err("missing {\"suite\":\"faults\"} header".to_string());
    }
    for key in [
        "\"mode\":",
        "\"seed\":",
        "\"apps\":",
        "\"policies\":",
        "\"groups\":",
        "\"staleness_ms\":",
    ] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    for rest in after_each(json, "\"case\":\"") {
        let name = rest.split('"').next().unwrap_or_default();
        if !FaultCase::all().iter().any(|c| c.name() == name) {
            return Err(format!("unknown episode {name:?}"));
        }
    }
    for key in ["\"availability\":", "\"error_rate\":"] {
        for rest in after_each(json, key) {
            let num = rest.split([',', '}']).next().unwrap_or_default();
            let v: f64 = num
                .parse()
                .map_err(|_| format!("bad number {num:?} after {key}"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{key}{v} out of [0,1]"));
            }
        }
    }
    let cells = after_each(json, "\"config\":\"").len();
    if cells == 0 {
        return Err("no configuration cells".to_string());
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cell(config: Config, policy_name: &'static str, seed: u64) -> FaultCell {
        let (_, policy) = suite_policies()
            .into_iter()
            .find(|(n, _)| *n == policy_name)
            .unwrap();
        let scenario = fault_scenario(
            AppKind::PetStore,
            config,
            FaultCase::MainLinkPartition,
            policy,
            true,
            true,
            seed,
        );
        FaultCell {
            config,
            case: FaultCase::MainLinkPartition,
            policy: policy_name,
            window: scenario.duration,
            report: scenario.run(),
        }
    }

    #[test]
    fn validator_accepts_the_rendered_suite_and_rejects_tampering() {
        let cells = vec![smoke_cell(Config::Centralized, "resilient", 7)];
        let json = render_faults_json(&[(AppKind::PetStore, cells)], 7, "smoke");
        assert_eq!(validate_faults_json(&json), Ok(1));
        // An out-of-range rate.
        let bad = json.replacen("\"availability\":", "\"availability\":9", 1);
        assert!(validate_faults_json(&bad).is_err());
        // A truncated document.
        assert!(validate_faults_json(&json[..json.len() - 3]).is_err());
        // An unknown episode name.
        let bad = json.replace("main-link-partition", "earthquake");
        assert!(validate_faults_json(&bad).is_err());
    }

    #[test]
    fn rendered_artifact_is_byte_identical_per_seed() {
        let run = || {
            let cells = vec![smoke_cell(Config::QueryCaching, "off", 7)];
            render_faults_json(&[(AppKind::PetStore, cells)], 7, "smoke")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_sweeps_are_identical_sequential_and_parallel() {
        let scenarios: Vec<Scenario> = [Config::Centralized, Config::StatefulCaching]
            .into_iter()
            .map(|config| {
                fault_scenario(
                    AppKind::Rubis,
                    config,
                    FaultCase::EdgeCrash,
                    FaultPolicy::resilient(),
                    true,
                    true,
                    11,
                )
            })
            .collect();
        let sequential: Vec<ExperimentReport> = scenarios.iter().map(|s| s.run()).collect();
        let parallel = crate::run_scenarios_parallel(scenarios);
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.events_fired, b.events_fired);
        }
    }
}
