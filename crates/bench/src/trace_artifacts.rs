//! Traced-sweep artifacts: `BENCH_trace.json`, span logs, Chrome traces.
//!
//! `repro-report --trace` runs the five configurations with per-request
//! tracing on, decomposes each page's mean response time along the critical
//! path (WAN propagation vs serialization vs queueing vs server vs DB), and
//! cross-checks the traced wide-area accounting against the static
//! analyzer's walk (`W108`). The per-config span logs are byte-stable for a
//! given seed — the determinism tests diff them across runs and across
//! sequential/parallel execution.

use mutsvc_analyze::{analyze_target, cross_check_traced_wan, Report};
use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::{page_breakdown, ExperimentReport, PageTraceRow, TraceSettings};

/// Looks a configuration up by its report name ("remote-facade", …).
pub fn config_by_name(name: &str) -> Option<Config> {
    Config::all().into_iter().find(|c| c.name() == name)
}

/// The tracing policy of a `--trace` run: smoke runs are short enough to
/// trace every request; quick/paper windows head-sample 1-in-8 (plus the
/// slowest-so-far outliers) to bound the span-log size.
pub fn trace_settings(smoke: bool) -> TraceSettings {
    if smoke {
        TraceSettings::full()
    } else {
        TraceSettings::sampled(8)
    }
}

/// Builds the scenario a `--trace` run executes for one cell. Smoke mode
/// shortens the windows to 10 s warm-up + 30 s measured (CI wall-clock).
pub fn traced_scenario(
    app: AppKind,
    config: Config,
    quick: bool,
    smoke: bool,
    seed: u64,
) -> Scenario {
    let mut scenario = if quick || smoke {
        Scenario::quick(app, config)
    } else {
        Scenario::paper(app, config)
    };
    if smoke {
        scenario.warmup = SimDuration::from_secs(10);
        scenario.duration = SimDuration::from_secs(30);
    }
    scenario.with_seed(seed).with_trace(trace_settings(smoke))
}

/// One traced configuration cell: the run, its per-page critical-path rows,
/// and the static analyzer's report after the `W108` cross-check.
pub struct TraceCell {
    /// The configuration.
    pub config: Config,
    /// The traced run (`report.trace` is always `Some`).
    pub report: ExperimentReport,
    /// Per-(group, page) critical-path decomposition.
    pub rows: Vec<PageTraceRow>,
    /// Static analysis with any `W108` disagreement warnings appended.
    pub static_report: Report,
    /// Number of `W108` warnings the cross-check added.
    pub w108: usize,
}

/// Runs the requested configurations of `app` traced (in parallel), then
/// cross-checks each against the static analyzer.
///
/// The cross-check compares, per page, the traced run's mean *logical* WAN
/// round trips for the `remote1` client group — the group the static walker
/// analyzes — against the walk's count.
pub fn run_traced_sweep(
    app: AppKind,
    configs: &[Config],
    quick: bool,
    smoke: bool,
    seed: u64,
) -> Vec<TraceCell> {
    let scenarios = configs
        .iter()
        .map(|&config| traced_scenario(app, config, quick, smoke, seed))
        .collect();
    let reports = crate::run_scenarios_parallel(scenarios);
    configs
        .iter()
        .zip(reports)
        .map(|(&config, report)| {
            let data = report
                .trace
                .as_ref()
                .expect("traced scenario must produce trace data");
            let rows = page_breakdown(data);
            let mut static_report = analyze_target(app, config);
            let traced: Vec<(String, f64)> = rows
                .iter()
                .filter(|r| r.group == "remote1")
                .map(|r| (r.page.to_string(), r.wan_rts_logical))
                .collect();
            let w108 = cross_check_traced_wan(&mut static_report, &traced);
            TraceCell {
                config,
                report,
                rows,
                static_report,
                w108,
            }
        })
        .collect()
}

fn fmt2(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".to_string()
    }
}

/// Renders `BENCH_trace.json`: per app × configuration, the per-page
/// critical-path decomposition (with the static walker's WAN count where
/// one exists), trace accounting, `W108` results and the telemetry series.
pub fn render_trace_json(sweeps: &[(AppKind, Vec<TraceCell>)]) -> String {
    let mut out = String::from("{\"apps\":[");
    for (ai, (app, cells)) in sweeps.iter().enumerate() {
        if ai > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"app\":\"{}\",\"configs\":[", app.name()));
        for (ci, cell) in cells.iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            let data = cell.report.trace.as_ref().unwrap();
            out.push_str(&format!(
                "{{\"config\":\"{}\",\"completed\":{},\"traces\":{},\"w108_warnings\":{},\"pages\":[",
                cell.config.name(),
                cell.report.completed,
                data.traces.len(),
                cell.w108,
            ));
            for (ri, row) in cell.rows.iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                let static_rts = cell
                    .static_report
                    .pages
                    .iter()
                    .find(|p| p.page == row.page)
                    .map_or("null".to_string(), |p| p.wan_round_trips.to_string());
                out.push_str(&format!(
                    "{{\"group\":\"{}\",\"page\":\"{}\",\"count\":{},\"mean_ms\":{},\
                     \"wan_rts_logical\":{},\"wan_rts_critical\":{},\"static_wan_rts\":{static_rts},\
                     \"wan_propagation_ms\":{},\"serialization_ms\":{},\"queueing_ms\":{},\
                     \"service_ms\":{},\"db_ms\":{},\"delay_ms\":{}}}",
                    row.group,
                    row.page,
                    row.count,
                    fmt2(row.mean_ms),
                    fmt2(row.wan_rts_logical),
                    fmt2(row.wan_rts_critical),
                    fmt2(row.wan_propagation_ms),
                    fmt2(row.serialization_ms),
                    fmt2(row.queueing_ms),
                    fmt2(row.service_ms),
                    fmt2(row.db_ms),
                    fmt2(row.delay_ms),
                ));
            }
            out.push_str("],\"telemetry\":{\"names\":[");
            for (ni, name) in data.telemetry_names.iter().enumerate() {
                if ni > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\""));
            }
            out.push_str("],\"snapshots\":[");
            for (si, snap) in data.telemetry.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"at_s\":{:.1},\"values\":[",
                    snap.at.as_secs_f64()
                ));
                for (vi, v) in snap.values.iter().enumerate() {
                    if vi > 0 {
                        out.push(',');
                    }
                    out.push_str(&fmt2(*v));
                }
                out.push_str("]}");
            }
            out.push_str("]}}");
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders the per-page wide-area round-trip table of one traced sweep
/// (rows: the remote client group's pages; columns: configurations),
/// showing `logical traced / critical-path measured / static` per cell.
pub fn render_wan_rt_table(app: AppKind, cells: &[TraceCell]) -> String {
    use std::fmt::Write as _;
    let mut pages: Vec<&'static str> = Vec::new();
    for cell in cells {
        for row in cell.rows.iter().filter(|r| r.group == "remote1") {
            if !pages.contains(&row.page) {
                pages.push(row.page);
            }
        }
    }
    pages.sort_unstable();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-page WAN round trips ({}, remote1 group; logical/critical-path/static):",
        app.name()
    );
    let _ = write!(out, "  {:<16}", "page");
    for cell in cells {
        let _ = write!(out, " {:>18}", cell.config.name());
    }
    out.push('\n');
    for page in pages {
        let _ = write!(out, "  {page:<16}");
        for cell in cells {
            let entry = match cell
                .rows
                .iter()
                .find(|r| r.group == "remote1" && r.page == page)
            {
                Some(row) => {
                    let stat = cell
                        .static_report
                        .pages
                        .iter()
                        .find(|p| p.page == page)
                        .map_or("-".to_string(), |p| p.wan_round_trips.to_string());
                    format!(
                        "{:.1}/{:.1}/{stat}",
                        row.wan_rts_logical, row.wan_rts_critical
                    )
                }
                None => "-".to_string(),
            };
            let _ = write!(out, " {entry:>18}");
        }
        out.push('\n');
    }
    out
}

/// Structurally validates a Chrome `trace_event` JSON document produced by
/// [`mutsvc_workload::chrome_trace_json`]: every duration event carries
/// `ts`, and each lane's `B`/`E` events are balanced and properly nested
/// (matched by name, LIFO). Returns the number of `B`/`E` pairs checked.
///
/// This is a purpose-built scanner for our own single-event-per-line
/// output, not a general JSON parser (the vendored `serde` is a stub).
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    use std::collections::HashMap;
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).ok_or(()).ok()?;
        Some(rest[..end].trim_matches('"'))
    }
    if !json.trim_end().ends_with("]}") {
        return Err("document does not close the traceEvents array".into());
    }
    let mut stacks: HashMap<String, Vec<String>> = HashMap::new();
    let mut pairs = 0usize;
    for line in json.lines() {
        let line = line.trim_start_matches(',');
        let Some(ph) = field(line, "ph") else {
            continue;
        };
        match ph {
            "M" => {}
            "i" | "B" | "E" => {
                if field(line, "ts").is_none() {
                    return Err(format!("event without ts: {line}"));
                }
                if ph == "i" {
                    continue;
                }
                let tid = field(line, "tid").ok_or_else(|| format!("no tid: {line}"))?;
                let name = field(line, "name").unwrap_or_default().to_string();
                let stack = stacks.entry(tid.to_string()).or_default();
                if ph == "B" {
                    stack.push(name);
                } else {
                    match stack.pop() {
                        Some(open) if open == name => pairs += 1,
                        Some(open) => {
                            return Err(format!("E \"{name}\" closes B \"{open}\" on tid {tid}"))
                        }
                        None => return Err(format!("E \"{name}\" with empty stack on tid {tid}")),
                    }
                }
            }
            other => return Err(format!("unknown ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid} left {} span(s) open", stack.len()));
        }
    }
    if pairs == 0 {
        return Err("no B/E pairs found".into());
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_lookup_roundtrips() {
        for config in Config::all() {
            assert_eq!(config_by_name(config.name()), Some(config));
        }
        assert_eq!(config_by_name("nope"), None);
    }

    #[test]
    fn chrome_validator_rejects_malformed_documents() {
        let ok = "{\"traceEvents\":[\n\
                  {\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"a\"},\n\
                  {\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":1,\"name\":\"n\"},\n\
                  {\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2,\"name\":\"a\"}\n]}";
        assert_eq!(validate_chrome_trace(ok), Ok(1));
        let unbalanced = ok.replace(
            ",\n{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2,\"name\":\"a\"}",
            "",
        );
        assert!(validate_chrome_trace(&unbalanced).is_err());
        let crossed = ok.replace("\"name\":\"a\"},\n]", "\"name\":\"b\"},\n]");
        let crossed = crossed.replace(
            "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2,\"name\":\"a\"}",
            "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2,\"name\":\"b\"}",
        );
        assert!(validate_chrome_trace(&crossed).is_err());
    }
}
