//! Metrics-sweep artifacts: `BENCH_metrics.json` and per-config window logs.
//!
//! `repro-report --metrics` re-runs the sweep with the windowed metrics
//! recorder armed, grades every configuration against a default (and
//! deliberately attainable) SLO spec with the burn-rate engine, statically
//! cross-checks each objective against the analyzer's WAN round-trip floor
//! (`W113`), and exports one byte-stable window log per configuration
//! (`METRICS_<app>_<config>.jsonl`) plus a summary document carrying the
//! SLO verdicts, the engine self-profile and a metrics-on/off wall-clock
//! A/B. The window logs are deterministic for a given seed — the
//! invariance tests diff them across thread counts.

use std::fmt::Write as _;
use std::time::Instant;

use mutsvc_analyze::{analyze_target, check_slo_reachability, Report};
use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_desim::time::SimDuration;
use mutsvc_workload::{
    evaluate, ExperimentReport, MetricsData, MetricsSettings, SloReport, SloSpec,
};

/// Windowing policy of a `--metrics` run: 10 s windows on quick/paper
/// runs, 5 s on the shortened smoke windows so CI still sees several rows.
pub fn metrics_settings(smoke: bool) -> MetricsSettings {
    MetricsSettings::windowed(SimDuration::from_secs(if smoke { 5 } else { 10 }))
}

/// The default objectives a `--metrics` sweep grades every configuration
/// against: each of the application's pages at 90 % under 5 s plus a 99 %
/// availability floor. The thresholds sit far above any committed cell's
/// static WAN floor on purpose — the sweep runs the `W113` reachability
/// lint over every cell and treats a warning as a hard failure, so a
/// verdict miss always means the deployment underperformed, never that the
/// ask was physically impossible.
pub fn default_slo(app: AppKind) -> SloSpec {
    let (input, _) = Scenario::quick(app, Config::Centralized).build();
    let mut spec = SloSpec::new();
    let mut seen: Vec<String> = Vec::new();
    for page in input.app.all_pages() {
        if !seen.contains(&page.page) {
            spec = spec.page(&page.page, 5_000.0, 0.90);
            seen.push(page.page);
        }
    }
    spec.with_availability(0.99)
}

/// Builds the scenario a `--metrics` run executes for one cell. Smoke mode
/// shortens the windows to 10 s warm-up + 30 s measured (CI wall-clock).
/// Cells run on the conservative-parallel engine (two shards) so the
/// artifact carries real per-shard self-profiles; the engine is
/// byte-identical to sequential execution at any thread count.
pub fn metrics_scenario(
    app: AppKind,
    config: Config,
    quick: bool,
    smoke: bool,
    seed: u64,
) -> Scenario {
    let mut scenario = if quick || smoke {
        Scenario::quick(app, config)
    } else {
        Scenario::paper(app, config)
    };
    if smoke {
        scenario.warmup = SimDuration::from_secs(10);
        scenario.duration = SimDuration::from_secs(30);
    }
    scenario
        .with_seed(seed)
        .with_metrics(metrics_settings(smoke))
        .with_slo(default_slo(app))
        .with_parallel(2)
}

/// One metrics configuration cell: the run (metrics armed), its SLO grade,
/// and the static analyzer's report after the `W113` reachability check.
pub struct MetricsCell {
    /// The configuration.
    pub config: Config,
    /// The run (`report.metrics` is always `Some`).
    pub report: ExperimentReport,
    /// Burn-rate engine output for [`default_slo`].
    pub slo: SloReport,
    /// Static analysis with any `W113` reachability warnings appended.
    pub static_report: Report,
    /// Number of `W113` warnings the reachability check added.
    pub w113: usize,
}

/// Wall-clock A/B of one sweep: the same seeds and windows with the
/// recorder armed vs off. The simulation itself is byte-identical either
/// way (pinned by the workload parity test); this measures what the
/// recording costs.
#[derive(Debug, Clone, Copy)]
pub struct OverheadSample {
    /// Wall-clock of the metrics-on sweep, milliseconds.
    pub on_ms: f64,
    /// Wall-clock of the metrics-off sweep, milliseconds.
    pub off_ms: f64,
}

impl OverheadSample {
    /// Relative overhead of recording, in percent (0 when the off run
    /// measured as zero).
    pub fn pct(&self) -> f64 {
        if self.off_ms > 0.0 {
            (self.on_ms - self.off_ms) / self.off_ms * 100.0
        } else {
            0.0
        }
    }
}

/// Runs the requested configurations of `app` with metrics armed (in
/// parallel), grades each against [`default_slo`], runs the `W113`
/// reachability check, and A/Bs the whole sweep against a metrics-off
/// re-run for the recording-overhead figure.
pub fn run_metrics_sweep(
    app: AppKind,
    configs: &[Config],
    quick: bool,
    smoke: bool,
    seed: u64,
) -> (Vec<MetricsCell>, OverheadSample) {
    let slo = default_slo(app);
    let scenarios: Vec<Scenario> = configs
        .iter()
        .map(|&config| metrics_scenario(app, config, quick, smoke, seed))
        .collect();
    let off: Vec<Scenario> = scenarios
        .iter()
        .map(|s| s.clone().with_metrics(MetricsSettings::off()))
        .collect();
    // Short (quick/smoke) sweeps finish in well under a second, where
    // scheduler jitter on a shared host swamps the recording cost. Run the
    // two arms interleaved (so load drift hits both alike) and keep each
    // arm's minimum — the runs are deterministic, so every repeat computes
    // identical reports and the minimum is the least-perturbed sample.
    // Paper windows run each arm once.
    let iters = if quick || smoke { 7 } else { 1 };
    let mut on_ms = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    let mut reports = None;
    let mut off_reports = None;
    for _ in 0..iters {
        let started = Instant::now();
        let r = crate::run_scenarios_parallel(scenarios.clone());
        on_ms = on_ms.min(started.elapsed().as_secs_f64() * 1e3);
        reports.get_or_insert(r);
        let started = Instant::now();
        let r = crate::run_scenarios_parallel(off.clone());
        off_ms = off_ms.min(started.elapsed().as_secs_f64() * 1e3);
        off_reports.get_or_insert(r);
    }
    let reports = reports.expect("at least one timing iteration");
    let off_reports = off_reports.expect("at least one timing iteration");
    // Full stats/span-log parity is pinned by the workload parity test;
    // here a cheap completion check guards the A/B's like-for-like claim.
    for (on, off) in reports.iter().zip(&off_reports) {
        assert_eq!(
            on.completed, off.completed,
            "{}: metrics-on and metrics-off runs diverged",
            on.config
        );
    }
    let cells = configs
        .iter()
        .zip(reports)
        .map(|(&config, report)| {
            let metrics = report
                .metrics
                .as_ref()
                .expect("metrics scenario must produce recorder data");
            let graded = evaluate(&slo, &metrics.recorder);
            let mut static_report = analyze_target(app, config);
            let scenario = metrics_scenario(app, config, quick, smoke, seed);
            let (input, _) = scenario.build();
            let w113 = check_slo_reachability(&mut static_report, &slo, &input.topology);
            MetricsCell {
                config,
                report,
                slo: graded,
                static_report,
                w113,
            }
        })
        .collect();
    (cells, OverheadSample { on_ms, off_ms })
}

fn fmt2(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".to_string()
    }
}

/// Renders one run's window series as JSON lines — one object per window
/// with the counter deltas, gauge samples, and per-histogram count/p50/p95
/// summaries. Byte-stable for a given seed and thread count (and, by the
/// invariance tests, across thread counts).
pub fn metrics_jsonl(data: &MetricsData) -> String {
    let rec = &data.recorder;
    let window_s = rec.window().as_secs_f64();
    let mut out = String::new();
    for row in rec.rows() {
        let _ = write!(
            out,
            "{{\"window\":{},\"end_s\":{:.1},\"counters\":{{",
            row.index,
            (row.index + 1) as f64 * window_s
        );
        for (i, name) in rec.counter_names().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", row.counters[i]);
        }
        out.push_str("},\"gauges\":{");
        for (i, name) in rec.gauge_names().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", fmt2(row.gauges[i]));
        }
        out.push_str("},\"hists\":{");
        for (i, name) in rec.hist_names().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = &row.hists[i];
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"p50_ms\":{},\"p95_ms\":{}}}",
                h.total(),
                fmt2(h.quantile(0.5)),
                fmt2(h.quantile(0.95)),
            );
        }
        out.push_str("}}\n");
    }
    out
}

fn render_slo_report(out: &mut String, slo: &SloReport) {
    let _ = write!(
        out,
        "\"slo\":{{\"all_met\":{},\"burn_threshold\":{},\"verdicts\":[",
        slo.all_met(),
        fmt2(slo.burn_threshold)
    );
    for (i, v) in slo.verdicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let threshold = v
            .threshold_ms
            .map_or("null".to_string(), |t| format!("{t:.0}"));
        let _ = write!(
            out,
            "{{\"objective\":\"{}\",\"threshold_ms\":{threshold},\"target\":{},\
             \"attained\":{},\"met\":{},\"max_burn\":{},\"breached_windows\":{},\
             \"samples\":{}}}",
            v.objective,
            fmt2(v.target),
            fmt2(v.attained),
            v.met,
            fmt2(v.max_burn),
            v.breached_windows,
            v.samples,
        );
    }
    out.push_str("],\"events\":[");
    for (i, e) in slo.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match e.kind {
            mutsvc_workload::SloEventKind::Breach => "breach",
            mutsvc_workload::SloEventKind::Recovery => "recovery",
        };
        let _ = write!(
            out,
            "{{\"window\":{},\"objective\":\"{}\",\"kind\":\"{kind}\",\"burn\":{}}}",
            e.window,
            e.objective,
            fmt2(e.burn),
        );
    }
    out.push_str("]}");
}

/// Renders `BENCH_metrics.json`: per app, the sweep's recording-overhead
/// A/B, and per configuration the SLO verdict table, the breach/recovery
/// timeline, the `W113` reachability result, and the engine self-profile
/// (per-event-kind totals plus per-shard window stall/utilization).
pub fn render_metrics_json(
    sweeps: &[(AppKind, Vec<MetricsCell>, OverheadSample)],
    seed: u64,
    mode: &str,
) -> String {
    let mut out = format!("{{\"seed\":{seed},\"mode\":\"{mode}\",\"apps\":[");
    for (ai, (app, cells, overhead)) in sweeps.iter().enumerate() {
        if ai > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"app\":\"{}\",\"overhead\":{{\"on_ms\":{},\"off_ms\":{},\"pct\":{}}},\"configs\":[",
            app.name(),
            fmt2(overhead.on_ms),
            fmt2(overhead.off_ms),
            fmt2(overhead.pct()),
        );
        for (ci, cell) in cells.iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            let data = cell.report.metrics.as_ref().unwrap();
            let rec = &data.recorder;
            let _ = write!(
                out,
                "{{\"config\":\"{}\",\"completed\":{},\"windows\":{},\"w113_warnings\":{},",
                cell.config.name(),
                cell.report.completed,
                rec.rows().len(),
                cell.w113,
            );
            render_slo_report(&mut out, &cell.slo);
            out.push_str(",\"ev_totals\":{");
            for (i, name) in rec.counter_names().iter().enumerate() {
                if !name.starts_with("engine.ev.") {
                    continue;
                }
                let total: u64 = rec.rows().iter().map(|r| r.counters[i]).sum();
                if !out.ends_with('{') {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{total}");
            }
            out.push_str("},\"shards\":[");
            for (si, p) in data.shard_profiles.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"shard\":{},\"windows\":{},\"stalled\":{},\"events\":{},\
                     \"utilization\":{}}}",
                    p.shard,
                    p.windows,
                    p.stalled,
                    p.events,
                    fmt2(p.utilization()),
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Structurally validates a `BENCH_metrics.json` document: the overhead
/// A/B, per-config SLO verdicts, the `W113` field and at least one shard
/// self-profile must all be present. Returns the number of configuration
/// cells found.
///
/// Like the Chrome-trace validator this is a purpose-built scanner for our
/// own renderer's output, not a general JSON parser (the vendored `serde`
/// is a stub).
pub fn validate_metrics_json(json: &str) -> Result<usize, String> {
    if !json.trim_end().ends_with("]}") {
        return Err("document does not close the apps array".into());
    }
    for key in ["\"overhead\":", "\"on_ms\":", "\"off_ms\":", "\"pct\":"] {
        if !json.contains(key) {
            return Err(format!("missing overhead field {key}"));
        }
    }
    let cells = json.matches("\"config\":").count();
    if cells == 0 {
        return Err("no configuration cells".into());
    }
    for key in [
        "\"slo\":",
        "\"verdicts\":",
        "\"all_met\":",
        "\"w113_warnings\":",
        "\"ev_totals\":",
        "\"shards\":",
    ] {
        if json.matches(key).count() != cells {
            return Err(format!(
                "expected {cells} {key} fields, found {}",
                json.matches(key).count()
            ));
        }
    }
    if !json.contains("\"shard\":") {
        return Err("no shard self-profiles recorded".into());
    }
    Ok(cells)
}

/// Renders the SLO verdict table of one metrics sweep (rows:
/// configurations; verdict summary, worst burn, breached windows, `W113`).
pub fn render_slo_table(app: AppKind, cells: &[MetricsCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SLO verdicts ({}, {} objectives per cell):",
        app.name(),
        cells.first().map_or(0, |c| c.slo.verdicts.len())
    );
    for cell in cells {
        let worst = cell
            .slo
            .verdicts
            .iter()
            .map(|v| v.max_burn)
            .fold(0.0, f64::max);
        let breached: u64 = cell.slo.verdicts.iter().map(|v| v.breached_windows).sum();
        let missed: Vec<&str> = cell
            .slo
            .verdicts
            .iter()
            .filter(|v| !v.met)
            .map(|v| v.objective.as_str())
            .collect();
        let _ = writeln!(
            out,
            "  {:<18} {}  max burn {:>6.2}  breached windows {:>3}  W113 {}{}",
            cell.config.name(),
            if cell.slo.all_met() {
                "met   "
            } else {
                "MISSED"
            },
            worst,
            breached,
            cell.w113,
            if missed.is_empty() {
                String::new()
            } else {
                format!("  ({})", missed.join(", "))
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_slos_are_reachable_on_every_committed_cell() {
        // The sweep treats a W113 warning as a hard failure, so the default
        // spec must clear the static WAN floor on every golden cell.
        for app in AppKind::all() {
            let slo = default_slo(app);
            assert!(!slo.objectives.is_empty());
            for config in Config::all() {
                let mut report = analyze_target(app, config);
                let (input, _) = Scenario::quick(app, config).build();
                assert_eq!(
                    check_slo_reachability(&mut report, &slo, &input.topology),
                    0,
                    "{} {} default SLO is statically unreachable",
                    app.name(),
                    config.name()
                );
            }
        }
    }

    #[test]
    fn metrics_json_validator_rejects_malformed_documents() {
        let ok = "{\"seed\":1,\"mode\":\"smoke\",\"apps\":[{\"app\":\"petstore\",\
                  \"overhead\":{\"on_ms\":10.00,\"off_ms\":9.00,\"pct\":11.11},\"configs\":[\
                  {\"config\":\"centralized\",\"completed\":5,\"windows\":3,\"w113_warnings\":0,\
                  \"slo\":{\"all_met\":true,\"burn_threshold\":1.00,\"verdicts\":[],\"events\":[]},\
                  \"ev_totals\":{\"engine.ev.net\":12},\
                  \"shards\":[{\"shard\":0,\"windows\":3,\"stalled\":0,\"events\":12,\
                  \"utilization\":1.00}]}]}]}";
        assert_eq!(validate_metrics_json(ok), Ok(1));
        assert!(validate_metrics_json(&ok.replace("\"overhead\"", "\"xx\"")).is_err());
        assert!(validate_metrics_json(&ok.replace("\"shards\":", "\"s\":")).is_err());
        assert!(validate_metrics_json(&ok.replace("\"shard\":0,", "")).is_err());
        assert!(validate_metrics_json(ok.trim_end_matches("]}")).is_err());
    }

    #[test]
    fn smoke_sweep_produces_stable_artifacts_and_clean_slos() {
        // One smoke cell end to end: recorder armed, SLO graded, W113
        // clean, window log byte-stable across a re-run.
        let (cells, overhead) =
            run_metrics_sweep(AppKind::PetStore, &[Config::RemoteFacade], true, true, 7);
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.w113, 0, "{}", cell.static_report.render_text());
        assert!(cell.slo.all_met(), "{:?}", cell.slo.verdicts);
        let data = cell.report.metrics.as_ref().unwrap();
        assert!(
            !data.shard_profiles.is_empty(),
            "parallel run self-profiles"
        );
        let jsonl = metrics_jsonl(data);
        assert!(jsonl.lines().count() >= 4, "several smoke windows");
        assert!(overhead.on_ms > 0.0 && overhead.off_ms > 0.0);

        let (again, _) =
            run_metrics_sweep(AppKind::PetStore, &[Config::RemoteFacade], true, true, 7);
        assert_eq!(
            jsonl,
            metrics_jsonl(again[0].report.metrics.as_ref().unwrap()),
            "window log must be byte-stable across runs"
        );
        assert_eq!(cell.slo, again[0].slo);

        let json = render_metrics_json(&[(AppKind::PetStore, cells, overhead)], 7, "smoke");
        assert_eq!(validate_metrics_json(&json), Ok(1), "{json}");
    }
}
