//! Placement move-throughput measurement shared by the Criterion bench and
//! the `repro-report --placement` report (`BENCH_placement.json`).
//!
//! Both entry points replay the *same* deterministic move sequence against
//! the paper-derived graphs two ways — re-sweeping the whole graph with
//! [`cost`] after every move (the pre-evaluator baseline) versus applying
//! deltas through the incremental [`CostEvaluator`] — so the reported
//! speedup is an apples-to-apples moves/sec ratio.

use std::time::Instant;

use mutsvc_desim::rng::SimRng;
use mutsvc_placement::derive::{petstore_problem, rubis_problem};
use mutsvc_placement::graph::{HostId, Placement, PlacementProblem};
use mutsvc_placement::{cost, CostEvaluator, Move};
use petgraph::graph::NodeIndex;

/// One measured cell of the throughput comparison.
#[derive(Debug, Clone)]
pub struct PlacementThroughput {
    /// Evaluation strategy: `"full_recompute"` or `"incremental"`.
    pub algorithm: &'static str,
    /// Graph name: `"petstore"` or `"rubis"`.
    pub graph: &'static str,
    /// Moves evaluated per wall-clock second.
    pub moves_per_sec: f64,
    /// Total cost (ms/s) after the final move — both strategies replay the
    /// same sequence, so the final costs must agree to ~1e-9.
    pub final_cost: f64,
}

/// Generates a deterministic sequence of `count` valid moves for `problem`,
/// starting from the all-on-host-0 placement. Validity (no duplicate
/// replicas, no replica at the primary) is tracked through an evaluator so
/// the same sequence replays cleanly under either strategy.
pub fn move_sequence(problem: &PlacementProblem, count: usize, seed: u64) -> Vec<Move> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut eval = CostEvaluator::new(problem, Placement::all_on(problem, HostId(0)));
    let components = problem.graph.len();
    let hosts = problem.hosts.len();
    let mut moves = Vec::with_capacity(count);
    while moves.len() < count {
        let node = NodeIndex::new(rng.index(components));
        let host = HostId(rng.index(hosts));
        let mv = match rng.index(3) {
            0 => Move::MovePrimary { node, to: host },
            1 if eval.primary_of(node) != host && !eval.has_replica(node, host) => {
                Move::AddReplica { node, host }
            }
            2 if eval.has_replica(node, host) => Move::DropReplica { node, host },
            _ => continue,
        };
        eval.apply(mv);
        eval.commit();
        moves.push(mv);
    }
    moves
}

/// Replays `moves` mutating a [`Placement`] directly and re-sweeping the
/// whole graph with [`cost`] after every move — what every search algorithm
/// did before the incremental evaluator. Returns the final cost.
pub fn replay_full_recompute(problem: &PlacementProblem, moves: &[Move]) -> f64 {
    let mut placement = Placement::all_on(problem, HostId(0));
    let mut last = cost(problem, &placement);
    for &mv in moves {
        match mv {
            Move::MovePrimary { node, to } => {
                placement.primary[node.index()] = to;
                placement.replicas[node.index()].remove(&to);
            }
            Move::AddReplica { node, host } => {
                placement.replicas[node.index()].insert(host);
            }
            Move::DropReplica { node, host } => {
                placement.replicas[node.index()].remove(&host);
            }
        }
        last = cost(problem, &placement);
    }
    last
}

/// Replays `moves` through the incremental evaluator. Returns the final
/// cost read back from the evaluator's running breakdown.
pub fn replay_incremental(problem: &PlacementProblem, moves: &[Move]) -> f64 {
    let mut eval = CostEvaluator::new(problem, Placement::all_on(problem, HostId(0)));
    for &mv in moves {
        eval.apply(mv);
        eval.commit();
    }
    eval.total()
}

fn time_replay(replay: impl Fn() -> f64, moves: usize) -> (f64, f64) {
    // One warm-up pass, then repeat passes for ~80 ms and keep the fastest
    // (minimum-of-passes is the low-noise estimator: scheduler and cache
    // interference only ever slow a pass down).
    let mut final_cost = replay();
    let mut best = f64::INFINITY;
    let started = Instant::now();
    while started.elapsed().as_secs_f64() < 0.08 {
        let pass = Instant::now();
        final_cost = replay();
        best = best.min(pass.elapsed().as_secs_f64());
    }
    (moves as f64 / best, final_cost)
}

/// Measures full-recompute vs incremental throughput on both paper-derived
/// graphs. `moves` is the sequence length per graph (1,000 is plenty).
pub fn measure_placement_throughput(moves: usize, seed: u64) -> Vec<PlacementThroughput> {
    let mut cells = Vec::new();
    let (petstore, _) = petstore_problem();
    let (rubis, _) = rubis_problem();
    for (graph, problem) in [("petstore", &petstore), ("rubis", &rubis)] {
        let sequence = move_sequence(problem, moves, seed);
        let (full_rate, full_cost) =
            time_replay(|| replay_full_recompute(problem, &sequence), moves);
        let (inc_rate, inc_cost) = time_replay(|| replay_incremental(problem, &sequence), moves);
        assert!(
            (full_cost - inc_cost).abs() <= 1e-9 * full_cost.abs().max(1.0),
            "{graph}: strategies disagree on the final cost: {full_cost} vs {inc_cost}"
        );
        cells.push(PlacementThroughput {
            algorithm: "full_recompute",
            graph,
            moves_per_sec: full_rate,
            final_cost: full_cost,
        });
        cells.push(PlacementThroughput {
            algorithm: "incremental",
            graph,
            moves_per_sec: inc_rate,
            final_cost: inc_cost,
        });
    }
    cells
}

/// Renders the cells as the `BENCH_placement.json` document. Hand-formatted
/// (the vendored serde is a no-op stand-in); schema per entry:
/// `{"algorithm", "graph", "moves_per_sec", "final_cost"}` plus a
/// per-graph `"speedup"` summary map.
pub fn render_placement_json(cells: &[PlacementThroughput]) -> String {
    let mut out = String::from("{\n  \"entries\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"graph\": \"{}\", \"moves_per_sec\": {:.1}, \"final_cost\": {:.6}}}{comma}\n",
            cell.algorithm, cell.graph, cell.moves_per_sec, cell.final_cost
        ));
    }
    out.push_str("  ],\n  \"speedup\": {");
    let graphs: Vec<&str> = {
        let mut seen = Vec::new();
        for cell in cells {
            if !seen.contains(&cell.graph) {
                seen.push(cell.graph);
            }
        }
        seen
    };
    for (i, graph) in graphs.iter().enumerate() {
        let rate = |algorithm: &str| {
            cells
                .iter()
                .find(|c| c.graph == *graph && c.algorithm == algorithm)
                .map_or(f64::NAN, |c| c.moves_per_sec)
        };
        let comma = if i + 1 < graphs.len() { "," } else { "" };
        out.push_str(&format!(
            "\"{graph}\": {:.1}{comma}",
            rate("incremental") / rate("full_recompute")
        ));
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_and_json_is_well_formed() {
        let (problem, _) = rubis_problem();
        let sequence = move_sequence(&problem, 200, 7);
        let full = replay_full_recompute(&problem, &sequence);
        let incremental = replay_incremental(&problem, &sequence);
        assert!((full - incremental).abs() <= 1e-9 * full.abs().max(1.0));

        let cells = vec![
            PlacementThroughput {
                algorithm: "full_recompute",
                graph: "rubis",
                moves_per_sec: 1000.0,
                final_cost: full,
            },
            PlacementThroughput {
                algorithm: "incremental",
                graph: "rubis",
                moves_per_sec: 25_000.0,
                final_cost: incremental,
            },
        ];
        let json = render_placement_json(&cells);
        assert!(json.contains("\"speedup\": {\"rubis\": 25.0}"));
        assert_eq!(json.matches("\"algorithm\"").count(), 2);
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the workspace.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn move_sequences_are_deterministic() {
        let (problem, _) = petstore_problem();
        assert_eq!(
            move_sequence(&problem, 64, 3),
            move_sequence(&problem, 64, 3)
        );
    }
}
