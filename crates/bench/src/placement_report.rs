//! Placement move-throughput measurement shared by the Criterion bench and
//! the `repro-report --placement` report (`BENCH_placement.json`).
//!
//! Two measurement families feed the report:
//!
//! * the *paper graphs* — Pet Store and RUBiS on the 3-host star, replayed
//!   two ways (re-sweeping the whole graph with [`cost`] after every move
//!   versus applying deltas through the incremental [`CostEvaluator`]), so
//!   the reported speedup is an apples-to-apples moves/sec ratio;
//! * the *scale ladder* — the RUBiS graph re-targeted onto generated
//!   multi-tier topologies ([`MultiTierSpec::ladder_rung`]: 4, 16, 64 and
//!   256 application-server hosts), recording evaluator build time and the
//!   cost-table footprint alongside move throughput. The baseline rows
//!   carry [`CostEvaluator::dense_table_bytes`] — what the per-edge
//!   host×host tables the APSP pricing replaced would have cost.

use std::time::Instant;

use mutsvc_core::{multi_tier_topology, paper_topology, MultiTierSpec};
use mutsvc_desim::rng::SimRng;
use mutsvc_placement::derive::{petstore_problem, rubis_problem};
use mutsvc_placement::graph::{HostId, Placement, PlacementProblem};
use mutsvc_placement::wan::{hosts_from_topology, rehost, ServerSpec};
use mutsvc_placement::{cost, CostEvaluator, Move};
use petgraph::graph::NodeIndex;

/// One measured cell of the throughput comparison.
#[derive(Debug, Clone)]
pub struct PlacementThroughput {
    /// Evaluation strategy: `"full_recompute"` or `"incremental"`.
    pub algorithm: &'static str,
    /// Graph name: `"petstore"`, `"rubis"`, or a ladder rung such as
    /// `"rubis-mt64"`.
    pub graph: String,
    /// Candidate placement hosts.
    pub hosts: usize,
    /// Directed links in the topology behind the host matrix.
    pub links: usize,
    /// Components in the application graph.
    pub components: usize,
    /// Moves evaluated per wall-clock second.
    pub moves_per_sec: f64,
    /// Total cost (ms/s) after the final move — both strategies replay the
    /// same sequence, so the final costs must agree to ~1e-9.
    pub final_cost: f64,
    /// Evaluator construction time in milliseconds (APSP matrix share +
    /// flattened index build); zero for the table-free baseline.
    pub build_ms: f64,
    /// Cost-table footprint in bytes: the shared distance matrix plus
    /// per-edge scalar weights for the incremental strategy, or the dense
    /// per-edge host×host tables it replaced for the baseline.
    pub table_bytes: usize,
}

/// Generates a deterministic sequence of `count` valid moves for `problem`,
/// starting from the all-on-host-0 placement. Validity (no duplicate
/// replicas, no replica at the primary) is tracked through an evaluator so
/// the same sequence replays cleanly under either strategy.
pub fn move_sequence(problem: &PlacementProblem, count: usize, seed: u64) -> Vec<Move> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut eval = CostEvaluator::new(problem, Placement::all_on(problem, HostId(0)));
    let components = problem.graph.len();
    let hosts = problem.hosts.len();
    let mut moves = Vec::with_capacity(count);
    while moves.len() < count {
        let node = NodeIndex::new(rng.index(components));
        let host = HostId(rng.index(hosts));
        let mv = match rng.index(3) {
            0 => Move::MovePrimary { node, to: host },
            1 if eval.primary_of(node) != host && !eval.has_replica(node, host) => {
                Move::AddReplica { node, host }
            }
            2 if eval.has_replica(node, host) => Move::DropReplica { node, host },
            _ => continue,
        };
        eval.apply(mv);
        eval.commit();
        moves.push(mv);
    }
    moves
}

/// Replays `moves` mutating a [`Placement`] directly and re-sweeping the
/// whole graph with [`cost`] after every move — what every search algorithm
/// did before the incremental evaluator. Returns the final cost.
pub fn replay_full_recompute(problem: &PlacementProblem, moves: &[Move]) -> f64 {
    let mut placement = Placement::all_on(problem, HostId(0));
    let mut last = cost(problem, &placement);
    for &mv in moves {
        match mv {
            Move::MovePrimary { node, to } => {
                placement.primary[node.index()] = to;
                placement.replicas[node.index()].remove(&to);
            }
            Move::AddReplica { node, host } => {
                placement.replicas[node.index()].insert(host);
            }
            Move::DropReplica { node, host } => {
                placement.replicas[node.index()].remove(&host);
            }
        }
        last = cost(problem, &placement);
    }
    last
}

/// Replays `moves` through the incremental evaluator. Returns the final
/// cost read back from the evaluator's running breakdown.
pub fn replay_incremental(problem: &PlacementProblem, moves: &[Move]) -> f64 {
    let mut eval = CostEvaluator::new(problem, Placement::all_on(problem, HostId(0)));
    for &mv in moves {
        eval.apply(mv);
        eval.commit();
    }
    eval.total()
}

fn time_replay(replay: impl Fn() -> f64, moves: usize) -> (f64, f64) {
    // One warm-up pass, then repeat passes for ~80 ms and keep the fastest
    // (minimum-of-passes is the low-noise estimator: scheduler and cache
    // interference only ever slow a pass down).
    let mut final_cost = replay();
    let mut best = f64::INFINITY;
    let started = Instant::now();
    while started.elapsed().as_secs_f64() < 0.08 {
        let pass = Instant::now();
        final_cost = replay();
        best = best.min(pass.elapsed().as_secs_f64());
    }
    (moves as f64 / best, final_cost)
}

/// Fastest-of-passes evaluator construction time in milliseconds
/// (`CostEvaluator::new` builds the shared distance matrix, the flattened
/// node/edge arrays and the seed totals).
fn time_build(problem: &PlacementProblem) -> f64 {
    let build = || CostEvaluator::new(problem, Placement::all_on(problem, HostId(0)));
    drop(build());
    let mut best = f64::INFINITY;
    let started = Instant::now();
    loop {
        let pass = Instant::now();
        drop(build());
        best = best.min(pass.elapsed().as_secs_f64());
        // Keep one slow construction honest without stretching the report:
        // at least 3 passes, at most ~80 ms of sampling.
        if started.elapsed().as_secs_f64() > 0.08 && best.is_finite() {
            break;
        }
    }
    best * 1e3
}

/// Measures both strategies on one problem and pushes the two cells.
fn measure_problem(
    cells: &mut Vec<PlacementThroughput>,
    graph: &str,
    problem: &PlacementProblem,
    links: usize,
    moves: usize,
    seed: u64,
) {
    let sequence = move_sequence(problem, moves, seed);
    let (full_rate, full_cost) = time_replay(|| replay_full_recompute(problem, &sequence), moves);
    let (inc_rate, inc_cost) = time_replay(|| replay_incremental(problem, &sequence), moves);
    assert!(
        (full_cost - inc_cost).abs() <= 1e-9 * full_cost.abs().max(1.0),
        "{graph}: strategies disagree on the final cost: {full_cost} vs {inc_cost}"
    );
    let build_ms = time_build(problem);
    let eval = CostEvaluator::new(problem, Placement::all_on(problem, HostId(0)));
    let hosts = problem.hosts.len();
    let components = problem.graph.len();
    cells.push(PlacementThroughput {
        algorithm: "full_recompute",
        graph: graph.to_string(),
        hosts,
        links,
        components,
        moves_per_sec: full_rate,
        final_cost: full_cost,
        build_ms: 0.0,
        table_bytes: eval.dense_table_bytes(),
    });
    cells.push(PlacementThroughput {
        algorithm: "incremental",
        graph: graph.to_string(),
        hosts,
        links,
        components,
        moves_per_sec: inc_rate,
        final_cost: inc_cost,
        build_ms,
        table_bytes: eval.table_bytes(),
    });
}

/// Measures full-recompute vs incremental throughput on both paper-derived
/// graphs. `moves` is the sequence length per graph (1,000 is plenty).
pub fn measure_placement_throughput(moves: usize, seed: u64) -> Vec<PlacementThroughput> {
    let mut cells = Vec::new();
    let (petstore, _) = petstore_problem();
    let (rubis, _) = rubis_problem();
    for (graph, problem, db_on_main) in [("petstore", &petstore, true), ("rubis", &rubis, false)] {
        let links = paper_topology(db_on_main).0.link_count();
        measure_problem(&mut cells, graph, problem, links, moves, seed);
    }
    cells
}

/// The RUBiS graph re-targeted onto the multi-tier rung with `hosts`
/// application servers: client traffic splits evenly over the main site and
/// every edge PoP, regional hubs are pure compute (zero entry share), and
/// every host pair is priced along the topology's latency-shortest route.
pub fn ladder_problem(hosts: usize) -> PlacementProblem {
    let spec = MultiTierSpec::ladder_rung(hosts);
    let (topology, nodes) = multi_tier_topology(&spec);
    let server_nodes = nodes.servers();
    let share = 1.0 / (nodes.edges.len() as f64 + 1.0);
    let servers: Vec<ServerSpec> = server_nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| ServerSpec {
            node,
            // servers() orders main, hubs, edge PoPs; main and the PoPs
            // originate client traffic, hubs do not.
            entry_share: if i == 0 || i > nodes.hubs.len() {
                share
            } else {
                0.0
            },
            cpu_capacity: f64::INFINITY,
        })
        .collect();
    let (host_list, rtt) = hosts_from_topology(&topology, &servers);
    let (rubis, _) = rubis_problem();
    rehost(&rubis, host_list, rtt)
}

/// Measures the scale ladder up to `max_hosts` (64 for the CI smoke rung,
/// 256 for the full report).
pub fn measure_placement_ladder(
    moves: usize,
    seed: u64,
    max_hosts: usize,
) -> Vec<PlacementThroughput> {
    let mut cells = Vec::new();
    for hosts in [4, 16, 64, 256] {
        if hosts > max_hosts {
            continue;
        }
        let spec = MultiTierSpec::ladder_rung(hosts);
        let (topology, _) = multi_tier_topology(&spec);
        let problem = ladder_problem(hosts);
        let graph = format!("rubis-mt{hosts}");
        measure_problem(
            &mut cells,
            &graph,
            &problem,
            topology.link_count(),
            moves,
            seed,
        );
    }
    cells
}

/// Renders the cells as the `BENCH_placement.json` document. Hand-formatted
/// (the vendored serde is a no-op stand-in); schema per entry:
/// `{"algorithm", "graph", "hosts", "links", "components", "moves_per_sec",
/// "final_cost", "build_ms", "table_bytes"}` plus a per-graph `"speedup"`
/// summary map.
pub fn render_placement_json(cells: &[PlacementThroughput]) -> String {
    let mut out = String::from("{\n  \"entries\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"graph\": \"{}\", \"hosts\": {}, \"links\": {}, \"components\": {}, \"moves_per_sec\": {:.1}, \"final_cost\": {:.6}, \"build_ms\": {:.3}, \"table_bytes\": {}}}{comma}\n",
            cell.algorithm,
            cell.graph,
            cell.hosts,
            cell.links,
            cell.components,
            cell.moves_per_sec,
            cell.final_cost,
            cell.build_ms,
            cell.table_bytes
        ));
    }
    out.push_str("  ],\n  \"speedup\": {");
    let graphs: Vec<&str> = {
        let mut seen = Vec::new();
        for cell in cells {
            if !seen.contains(&cell.graph.as_str()) {
                seen.push(cell.graph.as_str());
            }
        }
        seen
    };
    for (i, graph) in graphs.iter().enumerate() {
        let rate = |algorithm: &str| {
            cells
                .iter()
                .find(|c| c.graph == *graph && c.algorithm == algorithm)
                .map_or(f64::NAN, |c| c.moves_per_sec)
        };
        let comma = if i + 1 < graphs.len() { "," } else { "" };
        out.push_str(&format!(
            "\"{graph}\": {:.1}{comma}",
            rate("incremental") / rate("full_recompute")
        ));
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_and_json_is_well_formed() {
        let (problem, _) = rubis_problem();
        let sequence = move_sequence(&problem, 200, 7);
        let full = replay_full_recompute(&problem, &sequence);
        let incremental = replay_incremental(&problem, &sequence);
        assert!((full - incremental).abs() <= 1e-9 * full.abs().max(1.0));

        let cell =
            |algorithm: &'static str, moves_per_sec: f64, final_cost: f64| PlacementThroughput {
                algorithm,
                graph: "rubis".to_string(),
                hosts: 3,
                links: 10,
                components: problem.graph.len(),
                moves_per_sec,
                final_cost,
                build_ms: 0.01,
                table_bytes: 512,
            };
        let cells = vec![
            cell("full_recompute", 1000.0, full),
            cell("incremental", 25_000.0, incremental),
        ];
        let json = render_placement_json(&cells);
        assert!(json.contains("\"speedup\": {\"rubis\": 25.0}"));
        assert!(json.contains("\"hosts\": 3"));
        assert!(json.contains("\"links\": 10"));
        assert!(json.contains("\"table_bytes\": 512"));
        assert_eq!(json.matches("\"algorithm\"").count(), 2);
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the workspace.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn move_sequences_are_deterministic() {
        let (problem, _) = petstore_problem();
        assert_eq!(
            move_sequence(&problem, 64, 3),
            move_sequence(&problem, 64, 3)
        );
    }

    /// The 16-host rung: strategies agree move-for-move on a multi-hop
    /// WAN-priced host matrix, and the shared-matrix footprint undercuts
    /// the dense per-edge tables it replaced.
    #[test]
    fn ladder_strategies_agree_on_multi_tier_rungs() {
        let problem = ladder_problem(16);
        assert_eq!(problem.hosts.len(), 16);
        let sequence = move_sequence(&problem, 200, 11);
        let full = replay_full_recompute(&problem, &sequence);
        let incremental = replay_incremental(&problem, &sequence);
        assert!(
            (full - incremental).abs() <= 1e-9 * full.abs().max(1.0),
            "{full} vs {incremental}"
        );
        let eval = CostEvaluator::new(&problem, Placement::all_on(&problem, HostId(0)));
        assert!(eval.table_bytes() < eval.dense_table_bytes());
    }
}
