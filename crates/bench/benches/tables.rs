//! Table 6 / Table 7 / Figures 7–8 regeneration benches.
//!
//! Each bench iteration runs one full configuration sweep (quick windows)
//! and, once per process, prints the regenerated table and figure so that
//! `cargo bench` output doubles as the reproduction artifact. Absolute
//! Criterion timings measure the simulator itself.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mutsvc_core::{render_figure, render_table, run_sweep, validate_shapes, AppKind};

static PRINT_PETSTORE: Once = Once::new();
static PRINT_RUBIS: Once = Once::new();

fn table6_and_figure7(c: &mut Criterion) {
    PRINT_PETSTORE.call_once(|| {
        let reports = run_sweep(AppKind::PetStore, true, 42);
        println!("\n{}", render_table(AppKind::PetStore, &reports));
        println!("{}", render_figure(AppKind::PetStore, &reports));
        let violations = validate_shapes(AppKind::PetStore, &reports);
        println!(
            "shape criteria (quick windows): {} violations\n",
            violations.len()
        );
    });
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    group.bench_function("petstore_five_config_sweep", |b| {
        b.iter(|| run_sweep(AppKind::PetStore, true, 42));
    });
    group.finish();
}

fn table7_and_figure8(c: &mut Criterion) {
    PRINT_RUBIS.call_once(|| {
        let reports = run_sweep(AppKind::Rubis, true, 42);
        println!("\n{}", render_table(AppKind::Rubis, &reports));
        println!("{}", render_figure(AppKind::Rubis, &reports));
        let violations = validate_shapes(AppKind::Rubis, &reports);
        println!(
            "shape criteria (quick windows): {} violations\n",
            violations.len()
        );
    });
    let mut group = c.benchmark_group("table7");
    group.sample_size(10);
    group.bench_function("rubis_five_config_sweep", |b| {
        b.iter(|| run_sweep(AppKind::Rubis, true, 42));
    });
    group.finish();
}

criterion_group!(benches, table6_and_figure7, table7_and_figure8);
criterion_main!(benches);
