//! Placement-algorithm benchmarks: the derived application problems and a
//! synthetic scaling series, with a printed quality comparison.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mutsvc_bench::placement_report::{
    measure_placement_throughput, move_sequence, replay_full_recompute, replay_incremental,
};
use mutsvc_placement::algorithms::greedy::{solve as greedy, GreedyOptions};
use mutsvc_placement::algorithms::multilevel::{solve as multilevel, MultilevelOptions};
use mutsvc_placement::derive::{petstore_problem, rubis_problem};
use mutsvc_placement::{
    cost, Component, ComponentGraph, CostParams, Host, HostId, Placement, PlacementProblem, Role,
};

static PRINT: Once = Once::new();

fn print_quality() {
    println!("\n== placement quality: cost (ms/s) per algorithm ==");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "problem", "centralized", "multilevel", "greedy", "greedy+repl"
    );
    for (name, problem) in [
        ("petstore", petstore_problem().0),
        ("rubis", rubis_problem().0),
    ] {
        let central = cost(&problem, &Placement::all_on(&problem, HostId(0)));
        let ml = cost(
            &problem,
            &multilevel(&problem, &MultilevelOptions::default()),
        );
        let (_, g) = greedy(
            &problem,
            &GreedyOptions {
                with_replication: false,
                ..Default::default()
            },
        );
        let (_, gr) = greedy(&problem, &GreedyOptions::default());
        println!("{name:<12} {central:>12.0} {ml:>12.0} {g:>14.0} {gr:>14.0}");
    }
    println!();

    println!("== placement move throughput: full recompute vs incremental ==");
    println!(
        "{:<12} {:>18} {:>14} {:>14}",
        "problem", "algorithm", "moves/sec", "final cost"
    );
    let cells = measure_placement_throughput(1_000, 42);
    for cell in &cells {
        println!(
            "{:<12} {:>18} {:>14.0} {:>14.1}",
            cell.graph, cell.algorithm, cell.moves_per_sec, cell.final_cost
        );
    }
    println!();
}

/// A synthetic k-cluster problem of `n` components.
fn synthetic(n: usize, k: usize) -> PlacementProblem {
    let mut g = ComponentGraph::new();
    let mut nodes = Vec::new();
    for i in 0..n {
        let pinned = if i % (n / k).max(1) == 0 {
            Some(HostId((i / (n / k).max(1)) % k))
        } else {
            None
        };
        nodes.push(g.add(Component {
            name: format!("c{i}"),
            role: if pinned.is_some() {
                Role::Database
            } else {
                Role::Stateless
            },
            pinned,
            cpu_ms_per_call: 1.0,
            write_rate: 0.0,
        }));
    }
    for i in 1..n {
        g.interact(
            nodes[i - 1],
            nodes[i],
            if i % (n / k).max(1) == 0 { 0.5 } else { 20.0 },
            200.0,
        );
    }
    let hosts = (0..k)
        .map(|i| Host {
            name: format!("h{i}"),
            entry_share: 1.0 / k as f64,
            cpu_capacity: f64::INFINITY,
        })
        .collect();
    let rtt = (0..k)
        .map(|i| (0..k).map(|j| if i == j { 0.0 } else { 200.0 }).collect())
        .collect();
    PlacementProblem {
        hosts,
        rtt_ms: rtt,
        graph: g,
        params: CostParams::default(),
    }
}

fn placement_benches(c: &mut Criterion) {
    PRINT.call_once(print_quality);

    c.bench_function("placement/greedy_petstore", |b| {
        let (problem, _) = petstore_problem();
        b.iter(|| greedy(&problem, &GreedyOptions::default()));
    });
    c.bench_function("placement/greedy_rubis", |b| {
        let (problem, _) = rubis_problem();
        b.iter(|| greedy(&problem, &GreedyOptions::default()));
    });
    for n in [30usize, 90] {
        let problem = synthetic(n, 3);
        c.bench_function(&format!("placement/multilevel_synthetic_{n}"), |b| {
            b.iter(|| multilevel(&problem, &MultilevelOptions::default()));
        });
    }

    // Move-evaluation throughput: the same 1,000-move sequence replayed
    // with a whole-graph cost sweep per move (the pre-evaluator baseline)
    // versus incremental apply/commit deltas.
    for (name, problem) in [
        ("petstore", petstore_problem().0),
        ("rubis", rubis_problem().0),
    ] {
        let sequence = move_sequence(&problem, 1_000, 42);
        c.bench_function(&format!("placement/moves_full_recompute_{name}"), |b| {
            b.iter(|| replay_full_recompute(&problem, &sequence));
        });
        c.bench_function(&format!("placement/moves_incremental_{name}"), |b| {
            b.iter(|| replay_incremental(&problem, &sequence));
        });
    }
}

criterion_group!(benches, placement_benches);
criterion_main!(benches);
