//! Simulation-engine microbenchmarks: event scheduling throughput, queueing
//! resource admission, network transfers and a single end-to-end scenario.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_desim::{FifoResource, SimDuration, SimTime, Simulation};
use mutsvc_netsim::{Network, TopologyBuilder};

fn event_scheduling(c: &mut Criterion) {
    c.bench_function("engine/schedule_and_fire_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            for i in 0..100_000u64 {
                sim.schedule_at(SimTime::from_micros(i % 977), |w: &mut u64, _| *w += 1);
            }
            sim.run();
            assert_eq!(*sim.world(), 100_000);
        });
    });
}

fn resource_admission(c: &mut Criterion) {
    c.bench_function("engine/fifo_admit_100k", |b| {
        b.iter_batched(
            || FifoResource::new("cpu", 2),
            |mut r| {
                for i in 0..100_000u64 {
                    let t = SimTime::from_micros(i * 3);
                    let _ = r.admit(t, SimDuration::from_micros(5));
                }
                r
            },
            BatchSize::SmallInput,
        );
    });
}

fn network_transfers(c: &mut Criterion) {
    let mut tb = TopologyBuilder::new();
    let a = tb.node("a", 2);
    let r = tb.node("r", 8);
    let z = tb.node("z", 2);
    tb.duplex_link(a, r, SimDuration::from_millis(10), 100e6);
    tb.duplex_link(r, z, SimDuration::from_millis(90), 100e6);
    let topology = tb.finalize();
    c.bench_function("engine/transfer_10k_messages", |b| {
        b.iter_batched(
            || Network::new(topology.clone()),
            |mut net| {
                for i in 0..10_000u64 {
                    let _ = net.transfer(SimTime::from_micros(i * 50), a, z, 1_500);
                }
                net
            },
            BatchSize::SmallInput,
        );
    });
}

fn full_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/scenario");
    group.sample_size(10);
    group.bench_function("petstore_query_caching_quick", |b| {
        b.iter(|| Scenario::quick(AppKind::PetStore, Config::QueryCaching).run());
    });
    group.finish();
}

criterion_group!(
    benches,
    event_scheduling,
    resource_admission,
    network_transfers,
    full_scenario
);
criterion_main!(benches);
