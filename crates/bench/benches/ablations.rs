//! Ablation sweeps over the design space the paper holds fixed.
//!
//! * **WAN latency** — how each configuration's remote-browser experience
//!   scales as the one-way latency grows (the design rules matter *more*
//!   the farther the edge);
//! * **RMI chattiness** — the §4.2 observation that DGC/ping round trips
//!   dilute the façade pattern's benefit;
//! * **Write blocking** — the sync-push vs async crossover on the writer
//!   path (Pet Store Commit, §4.3 vs §4.5).
//!
//! Series are printed once; Criterion times a representative cell.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mutsvc_core::{AppKind, Config, Scenario};
use mutsvc_desim::SimDuration;

const REMOTE: [&str; 2] = ["remote1", "remote2"];

static PRINT: Once = Once::new();

fn print_series() {
    println!("\n== ablation: WAN one-way latency vs remote browser session (Pet Store) ==");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "latency(ms)", "centralized", "remote-facade", "async-updates"
    );
    for ms in [25, 50, 100, 200] {
        let mut row = format!("{ms:<12}");
        for config in [
            Config::Centralized,
            Config::RemoteFacade,
            Config::AsyncUpdates,
        ] {
            let report = Scenario::quick(AppKind::PetStore, config)
                .with_wan_latency(SimDuration::from_millis(ms))
                .run();
            let v = report
                .stats
                .session_mean_over_groups(&REMOTE, "Browser")
                .unwrap();
            row.push_str(&format!(" {v:>12.0}ms"));
        }
        println!("{row}");
    }

    println!("\n== ablation: RMI extra-round-trip probability vs remote Category page ==");
    println!("{:<12} {:>14}", "probability", "remote-facade");
    for prob in [0.0, 0.35, 0.65, 1.0] {
        let report = Scenario::quick(AppKind::PetStore, Config::RemoteFacade)
            .with_rmi_chattiness(prob)
            .run();
        let v = report
            .stats
            .mean_ms_over_groups(&REMOTE, "Browser", "Category")
            .unwrap();
        println!("{prob:<12} {v:>12.0}ms");
    }

    println!("\n== ablation: writer path — blocking push vs async (Pet Store Commit) ==");
    println!("{:<18} {:>10} {:>10}", "configuration", "local", "remote");
    for config in [
        Config::RemoteFacade,
        Config::StatefulCaching,
        Config::AsyncUpdates,
    ] {
        let report = Scenario::quick(AppKind::PetStore, config).run();
        let local = report.stats.mean_ms("local", "Buyer", "Commit").unwrap();
        let remote = report
            .stats
            .mean_ms_over_groups(&REMOTE, "Buyer", "Commit")
            .unwrap();
        println!("{:<18} {local:>8.0}ms {remote:>8.0}ms", config.name());
    }
    println!();
}

fn ablations(c: &mut Criterion) {
    PRINT.call_once(print_series);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("wan_sweep_cell", |b| {
        b.iter(|| {
            Scenario::quick(AppKind::PetStore, Config::AsyncUpdates)
                .with_wan_latency(SimDuration::from_millis(200))
                .run()
        });
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
