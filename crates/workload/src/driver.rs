//! The end-to-end experiment driver.
//!
//! Owns the simulation world — network, database, container state, client
//! sessions — and reproduces the paper's measurement procedure (§3.3): a
//! warm-up period, then a measured window during which each client session
//! issues requests with *soft delays* (a fixed interval between request
//! sends, independent of response times, giving a steady open-loop load).

use std::collections::HashMap;

use mutsvc_apps::{App, SessionKind, SessionState};
use mutsvc_desim::metrics::Summary;
use mutsvc_desim::rng::SimRng;
use mutsvc_desim::sim::{Context, Simulation};
use mutsvc_desim::time::SimTime;
use mutsvc_middleware::{
    BindStats, Binder, ComponentRegistry, ContainerCosts, ContainerState, DeferredApply,
    DeploymentDescriptor,
};
use mutsvc_netsim::{spawn_job, JobWorld, Network, ProtocolParams, Topology};
use mutsvc_relstore::Database;

use crate::spec::WorkloadSpec;
use crate::stats::WorkloadStats;

/// Everything needed to run one experiment.
#[derive(Debug)]
pub struct ExperimentInput {
    /// The application model.
    pub app: App,
    /// Its component registry.
    pub registry: ComponentRegistry,
    /// Its populated database.
    pub db: Database,
    /// The configuration under test.
    pub descriptor: DeploymentDescriptor,
    /// The network topology.
    pub topology: Topology,
    /// Wire protocol cost model.
    pub protocols: ProtocolParams,
    /// Container runtime cost model.
    pub container_costs: ContainerCosts,
    /// Load specification.
    pub spec: WorkloadSpec,
}

/// The measured outcome of one experiment.
#[derive(Debug)]
pub struct ExperimentReport {
    /// Configuration name (from the descriptor).
    pub config: String,
    /// Per-page and per-session response-time statistics.
    pub stats: WorkloadStats,
    /// Aggregated binder counters (RMI calls, cache hits, pushes…).
    pub bind_totals: BindStats,
    /// Asynchronous propagation delay (write commit → all replicas fresh),
    /// in milliseconds.
    pub staleness_ms: Summary,
    /// CPU utilization per node over the measured window.
    pub cpu_utilization: Vec<(String, f64)>,
    /// Requests completed within the measured window.
    pub completed: u64,
}

struct SessionSlot {
    group: usize,
    kind: SessionKind,
    pattern: &'static str,
    state: SessionState,
}

/// The simulation world.
struct World {
    net: Network,
    db: Database,
    state: ContainerState,
    registry: ComponentRegistry,
    descriptor: DeploymentDescriptor,
    protocols: ProtocolParams,
    container_costs: ContainerCosts,
    app: App,
    rng: SimRng,
    next_tag: u64,
    deferred: HashMap<u64, (SimTime, DeferredApply)>,
    stats: WorkloadStats,
    staleness_ms: Summary,
    bind_totals: BindStats,
    sessions: Vec<SessionSlot>,
    spec: WorkloadSpec,
    measuring_from: SimTime,
    completed: u64,
}

impl JobWorld for World {
    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn fork_completed(&mut self, tag: u64, at: SimTime) {
        if let Some((issued, apply)) = self.deferred.remove(&tag) {
            apply.apply(&mut self.state);
            if issued >= self.measuring_from {
                self.staleness_ms.record((at - issued).as_millis_f64());
            }
        }
    }
}

/// Issues the next request of session `slot_idx`, then re-schedules itself
/// after the soft delay.
fn issue(world: &mut World, ctx: &mut Context<'_, World>, slot_idx: usize) {
    let now = ctx.now();
    if now >= world.spec.horizon() {
        return;
    }

    // Draw the next page, recycling the session when it finishes.
    let drawn = {
        let slot = &mut world.sessions[slot_idx];
        match world.app.next_page(&mut slot.state, &mut world.rng) {
            Some(x) => Some(x),
            None => {
                slot.state = world.app.new_session(slot.kind, &mut world.rng);
                world.app.next_page(&mut slot.state, &mut world.rng)
            }
        }
    };
    let Some((label, page)) = drawn else {
        return;
    };

    let (client_node, entry_node, group_name) = {
        let g = &world.spec.groups[world.sessions[slot_idx].group];
        (g.client_node, g.entry_node, g.name.clone())
    };
    let pattern = world.sessions[slot_idx].pattern;

    let bound = Binder::new(
        &world.registry,
        &world.descriptor,
        &world.protocols,
        &world.container_costs,
        &mut world.db,
        &mut world.state,
        &mut world.rng,
        &mut world.next_tag,
    )
    .bind_page(client_node, entry_node, &page);

    if now >= world.measuring_from {
        world.bind_totals.merge(&bound.stats);
    }
    for (tag, apply) in bound.deferred {
        world.deferred.insert(tag, (now, apply));
    }

    let measured = now >= world.measuring_from;
    spawn_job(
        world,
        ctx,
        bound.steps,
        Box::new(move |w: &mut World, c| {
            if measured {
                let response = c.now() - now;
                w.stats.record(&group_name, pattern, label, response);
                w.completed += 1;
            }
        }),
    );

    let delay = world.spec.soft_delay;
    ctx.schedule_in(delay, move |w, c| issue(w, c, slot_idx));
}

/// Runs one experiment to completion and reports its measurements.
pub fn run_experiment(input: ExperimentInput) -> ExperimentReport {
    let ExperimentInput {
        app,
        registry,
        db,
        descriptor,
        topology,
        protocols,
        container_costs,
        spec,
    } = input;

    let rng = SimRng::seed_from_u64(spec.seed);
    let mut session_rng = rng.derive(1);
    let world_rng = rng.derive(2);
    let measuring_from = SimTime::ZERO + spec.warmup;

    // Create the session slots: one per concurrent client session.
    let mut sessions = Vec::new();
    for (gi, group) in spec.groups.iter().enumerate() {
        for (kind, rate) in [
            (SessionKind::Browser, group.browser_rate),
            (SessionKind::Transactional, group.transactional_rate),
        ] {
            for _ in 0..spec.sessions_for_rate(rate) {
                let pattern = match kind {
                    SessionKind::Browser => "Browser",
                    SessionKind::Transactional => app.transactional_label(),
                };
                sessions.push(SessionSlot {
                    group: gi,
                    kind,
                    pattern,
                    state: app.new_session(kind, &mut session_rng),
                });
            }
        }
    }

    let config = descriptor.name.clone();
    let horizon = spec.horizon();
    let n_sessions = sessions.len();
    let soft_delay = spec.soft_delay;

    let mut state = ContainerState::new();
    if descriptor.eager_cache_warmup {
        // Push-based caches are loaded at deployment and kept fresh by
        // pushes: populate every cacheable query instance at its cache nodes
        // and every replicated entity row at its replica nodes.
        for (tag, query) in app.cacheable_query_instances() {
            for &node in &descriptor.query_cache.nodes {
                if descriptor.query_cache.covers(node, &tag) {
                    state.cache_query(node, query.clone());
                }
            }
        }
        for component in registry.ids() {
            let spec_c = registry.spec(component);
            if let Some(table) = spec_c.table {
                let replicas: Vec<_> = descriptor.replica_nodes(component).collect();
                if replicas.is_empty() {
                    continue;
                }
                for row in db.table(table).all_ids() {
                    for &node in &replicas {
                        state.load_entity_row(component, node, row);
                    }
                }
            }
        }
    }

    let world = World {
        net: Network::new(topology),
        db,
        state,
        registry,
        descriptor,
        protocols,
        container_costs,
        app,
        rng: world_rng,
        next_tag: 0,
        deferred: HashMap::new(),
        stats: WorkloadStats::new(),
        staleness_ms: Summary::new(),
        bind_totals: BindStats::default(),
        sessions,
        spec,
        measuring_from,
        completed: 0,
    };

    let mut sim = Simulation::new(world);
    // Stagger session starts uniformly across one soft-delay interval.
    for i in 0..n_sessions {
        let offset = soft_delay.mul_f64(i as f64 / n_sessions.max(1) as f64);
        sim.schedule_at(SimTime::ZERO + offset, move |w, c| issue(w, c, i));
    }
    // Reset resource statistics when the measured window opens.
    sim.schedule_at(measuring_from, |w: &mut World, _| w.net.reset_stats());
    // Failure injection.
    for p in sim.world().spec.perturbations.clone() {
        let action = p.action.clone();
        sim.schedule_at(
            SimTime::ZERO + p.at,
            move |w: &mut World, _| match &action {
                crate::spec::NetAction::ScaleWanLatency { threshold, factor } => {
                    w.net.scale_latencies_above(*threshold, *factor);
                }
                crate::spec::NetAction::Restore => w.net.clear_latency_overrides(),
            },
        );
    }

    sim.run_until(horizon);

    let world = sim.into_world();
    let cpu_utilization = world
        .net
        .topology()
        .node_ids()
        .map(|n| {
            (
                world.net.topology().node(n).name.clone(),
                world.net.cpu_utilization(n, horizon),
            )
        })
        .collect();

    ExperimentReport {
        config,
        stats: world.stats,
        bind_totals: world.bind_totals,
        staleness_ms: world.staleness_ms,
        cpu_utilization,
        completed: world.completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{paper_groups, WorkloadSpec};
    use mutsvc_desim::time::SimDuration;
    use mutsvc_middleware::DescriptorBuilder;
    use mutsvc_netsim::TopologyBuilder;

    /// A small Pet Store experiment on a two-server topology.
    fn small_input(seed: u64) -> ExperimentInput {
        let (app, registry, db) = App::petstore(false);
        let mut tb = TopologyBuilder::new();
        let main = tb.node("main", 2);
        let dbn = tb.node("db", 2);
        let router = tb.node("router", 8);
        let edge = tb.node("edge1", 2);
        let lc = tb.node("client-local", 4);
        let rc = tb.node("client-remote", 4);
        let lan = SimDuration::from_micros(200);
        let wan = SimDuration::from_millis(100);
        tb.duplex_link(main, router, lan, 100e6);
        tb.duplex_link(dbn, router, lan, 100e6);
        tb.duplex_link(lc, router, lan, 100e6);
        tb.duplex_link(edge, router, wan, 100e6);
        tb.duplex_link(rc, edge, lan, 100e6);
        let topology = tb.finalize();

        let components = match &app {
            App::PetStore(ps) => ps.components,
            App::Rubis(_) => unreachable!(),
        };
        let mut b = DescriptorBuilder::new(&registry, "centralized", dbn);
        b.central_node(main);
        for c in components.all() {
            b.place(c, main);
        }
        let descriptor = b.build().unwrap();

        let mut groups = paper_groups((lc, main), (rc, main), (rc, main));
        groups.truncate(2); // local + one remote group keeps the test fast
        let spec = WorkloadSpec::paper_load(groups)
            .with_duration(SimDuration::from_secs(30), SimDuration::from_secs(120))
            .with_seed(seed);

        ExperimentInput {
            app,
            registry,
            db,
            descriptor,
            topology,
            protocols: ProtocolParams::petstore_stack(),
            container_costs: ContainerCosts::default(),
            spec,
        }
    }

    #[test]
    fn centralized_experiment_measures_the_wan_gap() {
        let report = run_experiment(small_input(7));
        assert!(report.completed > 1_000, "completed {}", report.completed);

        let local = report.stats.mean_ms("local", "Browser", "Item").unwrap();
        let remote = report.stats.mean_ms("remote1", "Browser", "Item").unwrap();
        assert!(
            remote - local > 350.0 && remote - local < 500.0,
            "local {local:.0}ms remote {remote:.0}ms"
        );

        // Offered load: 20 req/s over 120 s measured ≈ 2400 requests.
        let expected = 20.0 * 120.0;
        let ratio = report.completed as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn soft_delay_keeps_load_steady_despite_slow_responses() {
        // Even with every remote page costing ~500ms, the send rate stays
        // fixed because delays are soft (measured request count unchanged).
        let report = run_experiment(small_input(8));
        let sessions_expected = 56 + 14; // per group
        assert!(
            report.completed as f64 > 0.9 * 20.0 * 120.0,
            "{}",
            report.completed
        );
        let _ = sessions_expected;
    }

    #[test]
    fn experiments_are_deterministic_per_seed() {
        let a = run_experiment(small_input(9));
        let b = run_experiment(small_input(9));
        assert_eq!(a.completed, b.completed);
        assert_eq!(
            a.stats.mean_ms("local", "Browser", "Item"),
            b.stats.mean_ms("local", "Browser", "Item")
        );
        assert_eq!(a.bind_totals, b.bind_totals);
        let c = run_experiment(small_input(10));
        assert_ne!(
            a.stats.mean_ms("local", "Browser", "Item"),
            c.stats.mean_ms("local", "Browser", "Item")
        );
    }

    #[test]
    fn cpu_stays_in_the_papers_envelope() {
        let report = run_experiment(small_input(11));
        for (node, util) in &report.cpu_utilization {
            assert!(*util < 0.75, "{node} at {util:.2}");
        }
        // The main server does carry load.
        let main = report
            .cpu_utilization
            .iter()
            .find(|(n, _)| n == "main")
            .map(|(_, u)| *u)
            .unwrap();
        assert!(main > 0.05, "main util {main}");
    }

    #[test]
    fn wan_degradation_perturbation_slows_remote_clients() {
        let baseline = run_experiment(small_input(21));
        let mut degraded_input = small_input(21);
        // Double the WAN legs for the whole measured window.
        degraded_input.spec = degraded_input.spec.with_perturbation(
            SimDuration::from_secs(1),
            crate::spec::NetAction::ScaleWanLatency {
                threshold: SimDuration::from_millis(50),
                factor: 2.0,
            },
        );
        let degraded = run_experiment(degraded_input);
        let base = baseline
            .stats
            .mean_ms("remote1", "Browser", "Item")
            .unwrap();
        let slow = degraded
            .stats
            .mean_ms("remote1", "Browser", "Item")
            .unwrap();
        assert!(
            slow > base + 300.0,
            "degraded {slow:.0} vs baseline {base:.0}"
        );
        // Local clients are unaffected.
        let base_local = baseline.stats.mean_ms("local", "Browser", "Item").unwrap();
        let slow_local = degraded.stats.mean_ms("local", "Browser", "Item").unwrap();
        assert!((slow_local - base_local).abs() < 10.0);
    }

    #[test]
    fn restore_perturbation_heals_mid_run() {
        let mut input = small_input(22);
        let horizon = input.spec.horizon();
        input.spec = input
            .spec
            .with_perturbation(
                SimDuration::from_secs(1),
                crate::spec::NetAction::ScaleWanLatency {
                    threshold: SimDuration::from_millis(50),
                    factor: 3.0,
                },
            )
            .with_perturbation(
                (horizon - SimTime::ZERO) / 2,
                crate::spec::NetAction::Restore,
            );
        let healed = run_experiment(input);
        let baseline = run_experiment(small_input(22));
        let healed_mean = healed.stats.mean_ms("remote1", "Browser", "Item").unwrap();
        let base_mean = baseline
            .stats
            .mean_ms("remote1", "Browser", "Item")
            .unwrap();
        // Roughly half the window is degraded (+400ms): the mean sits
        // strictly between the healthy and fully-degraded levels.
        assert!(
            healed_mean > base_mean + 100.0,
            "{healed_mean:.0} vs {base_mean:.0}"
        );
        assert!(
            healed_mean < base_mean + 700.0,
            "{healed_mean:.0} vs {base_mean:.0}"
        );
    }

    #[test]
    fn buyer_pattern_is_measured_separately() {
        let report = run_experiment(small_input(12));
        assert!(report.stats.mean_ms("local", "Buyer", "Commit").is_some());
        assert!(report.stats.mean_ms("local", "Browser", "Commit").is_none());
        assert!(report.stats.session_summary("remote1", "Buyer").is_some());
    }
}
