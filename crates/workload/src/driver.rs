//! The end-to-end experiment driver.
//!
//! Owns the simulation world — network, database, container state, client
//! sessions — and reproduces the paper's measurement procedure (§3.3): a
//! warm-up period, then a measured window during which each client session
//! issues requests with *soft delays* (a fixed interval between request
//! sends, independent of response times, giving a steady open-loop load).
//!
//! # Request hot path (DESIGN.md §6.2)
//!
//! Steady-state requests avoid per-request allocation three ways:
//!
//! * **Typed events.** Every recurring event — job advancement, request
//!   issue, request completion — is a [`Ev`] enum value scheduled without
//!   boxing; only the handful of control events a run sets up (stats reset,
//!   perturbations) are boxed closures.
//! * **Bound-program memoization.** Binds the binder certifies replayable
//!   (read-only, no cache-state transitions, no RNG draws) are split into a
//!   reusable *plan* (`Arc<[Step]>` program + [`BindStats`]) and cached by
//!   (page shape, client node, entry node). A hit skips page construction
//!   and binding entirely and replays the shared program through a cursor.
//!   Writes and asynchronous propagation invalidate by table generation;
//!   network perturbations clear the cache wholesale.
//! * **Interned stats.** Series are resolved to dense ids once per
//!   (group, pattern, page) and recorded through
//!   [`WorkloadStats::record_ids`].

use std::collections::HashMap;
use std::sync::Arc;

use mutsvc_apps::{App, PageKey, SessionKind, SessionState};
use mutsvc_desim::fault::FaultKind;
use mutsvc_desim::metrics::Summary;
use mutsvc_desim::recorder::{CounterId, GaugeId, HistId, LogHistogram, Recorder};
use mutsvc_desim::rng::{stream, SimRng};
use mutsvc_desim::sim::{Context, Fire, Simulation};
use mutsvc_desim::telemetry::{MetricId, TelemetryRegistry};
use mutsvc_desim::time::{SimDuration, SimTime};
use mutsvc_desim::trace::{SpanCtx, SpanKind, TraceMeta, Tracer};
use mutsvc_middleware::{
    BindStats, Binder, ComponentId, ComponentRegistry, ContainerCosts, ContainerState, Crossing,
    DeferredApply, DeploymentDescriptor,
};
use mutsvc_netsim::{
    advance_job, spawn_program_traced, JobWorld, Jobs, LinkId, NetEvent, Network, NodeId, Program,
    ProtocolParams, Step, Topology,
};
use mutsvc_relstore::{Database, TableId};

use crate::adaptive::{AdaptiveData, AdaptiveObs, Controller, MigrationOrder, MoveKind};
use crate::spec::WorkloadSpec;
use crate::stats::WorkloadStats;
use crate::trace_report::TraceData;

/// Everything needed to run one experiment.
///
/// `Clone` exists for the conservative-parallel driver
/// ([`crate::parallel::run_experiment_parallel`]), which gives every shard
/// its own full replica of the world's inputs.
#[derive(Debug, Clone)]
pub struct ExperimentInput {
    /// The application model.
    pub app: App,
    /// Its component registry.
    pub registry: ComponentRegistry,
    /// Its populated database.
    pub db: Database,
    /// The configuration under test.
    pub descriptor: DeploymentDescriptor,
    /// The network topology.
    pub topology: Topology,
    /// Wire protocol cost model.
    pub protocols: ProtocolParams,
    /// Container runtime cost model.
    pub container_costs: ContainerCosts,
    /// Load specification.
    pub spec: WorkloadSpec,
}

/// Bound-program cache counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BindCacheStats {
    /// Whether the cache was enabled.
    pub enabled: bool,
    /// Requests served from a memoized plan.
    pub hits: u64,
    /// Requests that went through the full binder.
    pub misses: u64,
    /// Cached plans dropped because a read table changed or the network
    /// was perturbed.
    pub invalidations: u64,
}

/// The measured outcome of one experiment.
#[derive(Debug)]
pub struct ExperimentReport {
    /// Configuration name (from the descriptor).
    pub config: String,
    /// Per-page and per-session response-time statistics.
    pub stats: WorkloadStats,
    /// Aggregated binder counters (RMI calls, cache hits, pushes…).
    pub bind_totals: BindStats,
    /// Asynchronous propagation delay (write commit → all replicas fresh),
    /// in milliseconds.
    pub staleness_ms: Summary,
    /// CPU utilization per node over the measured window.
    pub cpu_utilization: Vec<(String, f64)>,
    /// Requests completed within the measured window.
    pub completed: u64,
    /// Total simulator events fired over the run.
    pub events_fired: u64,
    /// Boxed-closure events scheduled over the run. The request hot path
    /// schedules typed events only, so this stays at the handful of control
    /// events (stats reset, perturbations) regardless of load.
    pub boxed_events: u64,
    /// Bound-program cache counters.
    pub bind_cache: BindCacheStats,
    /// Events fired per shard of a conservative-parallel run, in shard
    /// order. Empty for classic sequential runs.
    pub shard_events: Vec<u64>,
    /// Committed request traces and telemetry snapshots (present iff the
    /// spec's [`crate::spec::TraceSettings`] enabled tracing).
    pub trace: Option<TraceData>,
    /// Windowed metric series and engine self-profile (present iff the
    /// spec's [`crate::spec::MetricsSettings`] armed the recorder).
    pub metrics: Option<MetricsData>,
    /// The adaptive controller's decision log (present iff the spec's
    /// [`crate::spec::AdaptiveSettings`] armed the closed-loop controller).
    pub adaptive: Option<AdaptiveData>,
}

/// Windowed metric series of one run: the rolled [`Recorder`] plus the
/// conservative-parallel engine's per-shard self-profile.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsData {
    /// The rolled counter/gauge/histogram series.
    pub recorder: Recorder,
    /// Engine self-profile, one entry per shard in ascending shard order.
    /// Empty for classic sequential runs.
    pub shard_profiles: Vec<ShardProfile>,
}

/// Lookahead-window profile of one conservative-parallel shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardProfile {
    /// Shard index (ascending region order).
    pub shard: u32,
    /// Lookahead windows the shard advanced through.
    pub windows: u64,
    /// Windows in which the shard fired no events: it was idle but still
    /// paid the synchronization barrier.
    pub stalled: u64,
    /// Events the shard fired over the run.
    pub events: u64,
}

impl ShardProfile {
    /// Fraction of the shard's lookahead windows that did useful work.
    pub fn utilization(&self) -> f64 {
        if self.windows == 0 {
            return 1.0;
        }
        1.0 - self.stalled as f64 / self.windows as f64
    }
}

struct SessionSlot {
    group: usize,
    kind: SessionKind,
    pattern: &'static str,
    state: SessionState,
    /// The slot stops issuing at this time: the horizon for steady-state
    /// sessions, the surge's end for surge sessions.
    ends: SimTime,
}

/// One request in flight, tracked in a slab and resolved on completion.
struct Inflight {
    start: SimTime,
    measured: bool,
    /// Pre-interned stats ids (valid only when `measured`).
    series: u32,
    session: u32,
    /// The request's root span, when this request was sampled for tracing.
    trace: Option<SpanCtx>,
    /// Client group index (also the interned outcome id).
    group: u16,
    /// Entry node index (for partition-staleness accounting).
    entry: u16,
    /// Failed attempts so far (fault runs only).
    attempt: u32,
    /// Whether the bind was a read-only replay (stale-serve eligible).
    replayable: bool,
    /// The request's program, retained for retries. `None` when faults are
    /// off — the fault-free hot path never pays the extra `Arc`.
    program: Option<Arc<[Step]>>,
    /// The page's response-time histogram (set only when `measured` and the
    /// metrics recorder is armed).
    hist: Option<HistId>,
}

/// Identity of a memoized plan: what the request looks like and where it
/// enters the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    page: PageKey,
    client: NodeId,
    entry: NodeId,
}

/// A memoized bound-page program: the reusable output of a replayable bind.
struct CachedPlan {
    steps: Arc<[Step]>,
    stats: BindStats,
    /// Logical WAN round trips of the bind's crossing list (computed only
    /// when tracing is on; see [`logical_wan_rts`]).
    wan_rts: f64,
    /// Tables the bind read, with the generation each had at capture time.
    reads: Vec<(TableId, u64)>,
    epoch: u64,
}

/// The bound-program cache. Validity of an entry requires its capture epoch
/// to be current (epoch advances on network perturbation and descriptor
/// change) and every read table's generation to be unchanged (generations
/// advance on writes and on deferred propagation applies).
struct PlanCache {
    enabled: bool,
    map: HashMap<PlanKey, CachedPlan>,
    table_gen: Vec<u64>,
    epoch: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl PlanCache {
    fn new(enabled: bool) -> Self {
        PlanCache {
            enabled,
            map: HashMap::new(),
            table_gen: Vec::new(),
            epoch: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    fn generation(&self, table: TableId) -> u64 {
        self.table_gen.get(table.index()).copied().unwrap_or(0)
    }

    /// Advances a table's generation, invalidating every plan that read it.
    fn bump(&mut self, table: TableId) {
        if !self.enabled {
            return;
        }
        if self.table_gen.len() <= table.index() {
            self.table_gen.resize(table.index() + 1, 0);
        }
        self.table_gen[table.index()] += 1;
    }

    /// Drops every cached plan (perturbations, descriptor changes).
    fn invalidate_all(&mut self) {
        self.epoch += 1;
        self.invalidations += self.map.len() as u64;
        self.map.clear();
    }

    fn lookup(&mut self, key: &PlanKey) -> Option<(Arc<[Step]>, BindStats, f64)> {
        if !self.enabled {
            return None;
        }
        match self.map.get(key) {
            Some(plan)
                if plan.epoch == self.epoch
                    && plan.reads.iter().all(|&(t, g)| self.generation(t) == g) =>
            {
                self.hits += 1;
                Some((Arc::clone(&plan.steps), plan.stats, plan.wan_rts))
            }
            Some(_) => {
                self.map.remove(key);
                self.invalidations += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(
        &mut self,
        key: PlanKey,
        steps: Arc<[Step]>,
        stats: BindStats,
        wan_rts: f64,
        reads: &[TableId],
    ) {
        if !self.enabled {
            return;
        }
        let reads = reads.iter().map(|&t| (t, self.generation(t))).collect();
        self.map.insert(
            key,
            CachedPlan {
                steps,
                stats,
                wan_rts,
                reads,
                epoch: self.epoch,
            },
        );
    }
}

/// Fault-injection runtime state. Inert (one predicate branch per site)
/// when the schedule is empty.
struct FaultRuntime {
    /// Whether any fault episode is scheduled this run.
    active: bool,
    /// Dense id → handle maps for fault-event targets (built only when
    /// active; [`FaultKind`] carries raw indices, the network wants ids).
    links: Vec<LinkId>,
    nodes: Vec<NodeId>,
    /// Per node: when its path to the central server was cut. A successful
    /// read at a cut entry may be serving from caches the partition keeps
    /// from being refreshed — its staleness bound is `now - stale_since`.
    stale_since: Vec<Option<SimTime>>,
    /// Whether this descriptor deploys edge caches that can answer
    /// partitioned reads (entity replicas or query caches).
    caches_serve: bool,
    /// Set by the executor's [`JobWorld::job_failed`] hook immediately
    /// before a failed completion fires; consumed by the `Ev::Done`
    /// handler to route the token into retry/failure accounting.
    last_done_failed: bool,
}

/// Which slice of the experiment one conservative-parallel shard runs:
/// its index (fixing its derived RNG streams) and the client groups whose
/// sessions it owns. Built by [`crate::parallel`] from the topology's
/// client regions — never from the thread count, so the decomposition (and
/// with it every simulated byte) is identical at any parallelism.
pub(crate) struct ShardPlan {
    /// This shard's index in ascending-region order.
    pub index: usize,
    /// Per client group: whether this shard simulates its sessions.
    pub members: Vec<bool>,
}

/// Cross-shard runtime state of one shard replica: invalidation notes this
/// shard's writes posted (drained by the parallel driver at each window
/// boundary) and the payloads of inbound notes already scheduled as
/// [`Ev::ShardNote`] events.
struct ShardCtx {
    outbound: Vec<(SimTime, Vec<TableId>)>,
    notes: Vec<Vec<TableId>>,
}

/// Memo key of one request shape: (group index, pattern, page label).
type SeriesKey = (u16, &'static str, &'static str);
/// Memoized per-shape handles: the interned stats series pair plus the
/// page's response-time histogram (`None` when metrics are off).
type SeriesIds = (u32, u32, Option<HistId>);

/// The simulation world.
pub(crate) struct World {
    net: Network,
    jobs: Jobs<World>,
    db: Database,
    state: ContainerState,
    registry: ComponentRegistry,
    descriptor: DeploymentDescriptor,
    protocols: ProtocolParams,
    container_costs: ContainerCosts,
    app: App,
    rng: SimRng,
    next_tag: u64,
    deferred: HashMap<u64, (SimTime, DeferredApply)>,
    deferred_tables: Vec<TableId>,
    plans: PlanCache,
    stats: WorkloadStats,
    /// Per-(group, pattern, page) series ids plus the page's response-time
    /// histogram handle (`None` when metrics are off), resolved once and
    /// replayed on every later request of the same shape.
    series_memo: HashMap<SeriesKey, SeriesIds>,
    staleness_ms: Summary,
    bind_totals: BindStats,
    sessions: Vec<SessionSlot>,
    inflight: Vec<Option<Inflight>>,
    inflight_free: Vec<u32>,
    spec: WorkloadSpec,
    measuring_from: SimTime,
    completed: u64,
    /// Pre-overhaul baseline emulation: resolve series ids through a cloned
    /// group-name `String` on every measured request (see
    /// [`WorkloadSpec::legacy_baseline`]).
    legacy: bool,
    tracer: Tracer,
    telemetry: TelemetryRegistry,
    /// Metric handles plus the snapshot cadence; `None` when the telemetry
    /// series is off (the `Ev::Snapshot` event is then never scheduled).
    telemetry_ids: Option<TelemetryIds>,
    fault_rt: FaultRuntime,
    /// Cross-shard note state; `None` on classic sequential runs, whose
    /// hot path then pays exactly one predictable branch per full bind.
    shard: Option<ShardCtx>,
    /// Windowed metrics recorder state; `None` when the spec's
    /// [`crate::spec::MetricsSettings`] are off — the `Ev::MetricsRoll`
    /// event is then never scheduled.
    metrics: Option<MetricsState>,
    /// Per-event-kind self-profile counts, indexed by [`Ev::kind_index`].
    /// Always incremented (one unconditional array add per event, cheaper
    /// than a branch would be); [`MetricsState::flush_ev_counts`] moves the
    /// totals into the recorder only when metrics are armed.
    ev_counts: [u64; EV_KINDS],
    /// Live-migration controller; `None` unless the spec arms adaptive
    /// placement *and* the run is sequential — conservative-parallel runs
    /// host one controller in the coordinator instead (every shard then
    /// keeps this `None` and only applies the broadcast orders).
    adaptive: Option<Controller>,
    /// Migrations in transfer, indexed by the [`Ev::Migrate`] slot.
    adaptive_pending: Vec<(ComponentId, MoveKind, NodeId)>,
}

impl World {
    /// Accepts one inbound cross-shard invalidation note, returning the
    /// index the caller schedules as [`Ev::ShardNote`].
    pub(crate) fn shard_note(&mut self, tables: Vec<TableId>) -> u32 {
        let shard = self.shard.as_mut().expect("note on unsharded world");
        shard.notes.push(tables);
        (shard.notes.len() - 1) as u32
    }

    /// Drains the invalidation notes this shard's writes posted since the
    /// last window boundary.
    pub(crate) fn shard_take_outbound(&mut self) -> Vec<(SimTime, Vec<TableId>)> {
        let shard = self.shard.as_mut().expect("drain on unsharded world");
        std::mem::take(&mut shard.outbound)
    }

    /// Reduces the freshest closed metrics window to the adaptive
    /// controller's inputs: observed per-directed-link one-way latencies
    /// (from the `wan.*.rtt_ms` gauges the roll samples) and the pooled
    /// median response time. `None` until the first window closes, or when
    /// metrics are off — the controller then has nothing to act on.
    pub(crate) fn adaptive_observation(&self) -> Option<AdaptiveObs> {
        let m = self.metrics.as_ref()?;
        let last = m.rec.rows().last()?;
        let mut one_way_ms = vec![None; self.net.topology().link_count()];
        for w in &m.wan {
            let rtt = m.rec.gauge_value(w.rtt);
            if rtt > 0.0 {
                one_way_ms[w.link.index()] = Some(rtt / 2.0);
            }
        }
        let mut pooled = LogHistogram::new();
        for hist in &last.hists {
            pooled.merge(hist);
        }
        let p50_ms = if pooled.is_empty() {
            0.0
        } else {
            pooled.quantile(0.5)
        };
        // Cumulative issued requests per client group over every *closed*
        // window — the controller's offered-demand signal. (Shard replicas
        // report their member groups only; the rest stay zero and sum
        // correctly across shards.)
        let group_issued = m
            .groups
            .iter()
            .map(|&id| {
                let slot = m.rec.counter_slot(id);
                m.rec.rows().iter().map(|r| r.counters[slot]).sum()
            })
            .collect();
        Some(AdaptiveObs {
            one_way_ms,
            windows: m.rec.rows().len() as u64,
            p50_ms,
            group_issued,
        })
    }

    /// Starts one ordered migration: prices the state transfer onto the
    /// WAN (control handshake + bulk bytes occupying the link — see
    /// [`Network::migrate`]) and parks the order in the pending buffer.
    /// Returns the arrival time and the [`Ev::Migrate`] slot the caller
    /// schedules.
    pub(crate) fn commit_migration(
        &mut self,
        now: SimTime,
        order: &MigrationOrder,
    ) -> (SimTime, u32) {
        let arrival = self
            .net
            .migrate(now, order.from, order.to, self.spec.adaptive.state_bytes);
        self.adaptive_pending
            .push((order.component, order.kind, order.to));
        (arrival, (self.adaptive_pending.len() - 1) as u32)
    }
}

/// Registered metric handles for the periodic telemetry snapshot.
struct TelemetryIds {
    every: SimDuration,
    queue_near: MetricId,
    queue_far: MetricId,
    slab_slots: MetricId,
    slab_free: MetricId,
    jobs_in_flight: MetricId,
    plan_hits: MetricId,
    plan_misses: MetricId,
    plan_invalidations: MetricId,
    entity_cache_hits: MetricId,
    query_cache_hits: MetricId,
    completed: MetricId,
    traces_committed: MetricId,
    traces_dropped: MetricId,
    /// `(link, messages metric, bytes metric)` for every WAN leg.
    wan_links: Vec<(LinkId, MetricId, MetricId)>,
    /// Fault-state gauges (armed-only; see [`TelemetryArms`]).
    faults: Option<FaultGauges>,
    /// Conservative-parallel self-profile gauges (armed-only).
    shard: Option<ShardGauges>,
}

/// Gauges exposing the injected fault state and its request-level impact.
struct FaultGauges {
    links_down: MetricId,
    nodes_down: MetricId,
    failed: MetricId,
    retries: MetricId,
}

/// Gauges exposing a conservative-parallel shard replica's cross-shard
/// note flow.
struct ShardGauges {
    outbound_pending: MetricId,
    notes_received: MetricId,
}

/// Which optional telemetry gauge families a run arms.
///
/// The registration rule is uniform: a family's gauges exist in the
/// registry iff its subsystem is active *this run*, so snapshots of runs
/// without the subsystem stay byte-identical to a stack that never had it.
/// Fault gauges arm with a non-empty fault schedule; shard self-profile
/// gauges arm on conservative-parallel shard replicas.
#[derive(Debug, Clone, Copy)]
struct TelemetryArms {
    faults: bool,
    sharded: bool,
}

impl TelemetryIds {
    fn register(
        registry: &mut TelemetryRegistry,
        net: &Network,
        wan_threshold: SimDuration,
        every: SimDuration,
        arms: TelemetryArms,
    ) -> Self {
        let wan_links = net
            .topology()
            .link_ids()
            .filter(|&l| net.topology().link(l).latency >= wan_threshold)
            .map(|l| {
                let name = &net.topology().link(l).name;
                (
                    l,
                    registry.register(format!("wan.{name}.msgs")),
                    registry.register(format!("wan.{name}.bytes")),
                )
            })
            .collect();
        TelemetryIds {
            every,
            queue_near: registry.register("queue.near_depth"),
            queue_far: registry.register("queue.far_depth"),
            slab_slots: registry.register("queue.slab_slots"),
            slab_free: registry.register("queue.slab_free"),
            jobs_in_flight: registry.register("jobs.in_flight"),
            plan_hits: registry.register("plan_cache.hits"),
            plan_misses: registry.register("plan_cache.misses"),
            plan_invalidations: registry.register("plan_cache.invalidations"),
            entity_cache_hits: registry.register("bind.entity_cache_hits"),
            query_cache_hits: registry.register("bind.query_cache_hits"),
            completed: registry.register("requests.completed"),
            traces_committed: registry.register("trace.committed"),
            traces_dropped: registry.register("trace.dropped"),
            wan_links,
            faults: arms.faults.then(|| FaultGauges {
                links_down: registry.register("fault.links_down"),
                nodes_down: registry.register("fault.nodes_down"),
                failed: registry.register("fault.requests_failed"),
                retries: registry.register("fault.retries"),
            }),
            shard: arms.sharded.then(|| ShardGauges {
                outbound_pending: registry.register("shard.outbound_pending"),
                notes_received: registry.register("shard.notes_received"),
            }),
        }
    }
}

/// Capacity of the hot-path event-kind count array. A power of two so the
/// per-event index can be masked instead of bounds-checked; must be at
/// least [`EV_KIND_NAMES`]`.len()`.
const EV_KINDS: usize = 16;
/// Self-profile counter names, indexed by [`Ev::kind_index`].
const EV_KIND_NAMES: [&str; 10] = [
    "engine.ev.net",
    "engine.ev.issue",
    "engine.ev.done",
    "engine.ev.snapshot",
    "engine.ev.fault",
    "engine.ev.retry",
    "engine.ev.shard_note",
    "engine.ev.metrics_roll",
    "engine.ev.adapt_tick",
    "engine.ev.migrate",
];

/// Registered recorder handles plus the WAN traffic baselines the roll
/// event differences against between windows.
struct MetricsState {
    window: SimDuration,
    rec: Recorder,
    /// Per-event-kind engine counters, indexed by [`Ev::kind_index`].
    ev_kinds: [CounterId; EV_KIND_NAMES.len()],
    ok: CounterId,
    failed: CounterId,
    queue_near: GaugeId,
    queue_far: GaugeId,
    slab_free: GaugeId,
    jobs_in_flight: GaugeId,
    /// `(page label, histogram)` in the app's page-inventory order.
    pages: Vec<(String, HistId)>,
    /// Per-WAN-leg series (same leg set as the telemetry registry's).
    wan: Vec<WanSeries>,
    /// Per-client-group issued-request counters (`group.<name>.issued`),
    /// aligned with `spec.groups`: the offered-demand signal the adaptive
    /// controller reweights entry shares from.
    groups: Vec<CounterId>,
}

/// One WAN leg's windowed series: traffic counters record window deltas of
/// the network's cumulative figures, the gauge samples the leg's current
/// round trip (including degradation overrides).
struct WanSeries {
    link: LinkId,
    msgs: CounterId,
    bytes: CounterId,
    rtt: GaugeId,
    last_msgs: u64,
    last_bytes: u64,
}

impl MetricsState {
    fn register(
        net: &Network,
        app: &App,
        groups: &[crate::spec::ClientGroup],
        window: SimDuration,
        wan_threshold: SimDuration,
    ) -> Self {
        let mut rec = Recorder::new(window);
        let ev_kinds = EV_KIND_NAMES.map(|n| rec.counter(n));
        let ok = rec.counter(crate::slo::OK_COUNTER);
        let failed = rec.counter(crate::slo::FAILED_COUNTER);
        let queue_near = rec.gauge("engine.queue.near_depth");
        let queue_far = rec.gauge("engine.queue.far_depth");
        let slab_free = rec.gauge("engine.queue.slab_free");
        let jobs_in_flight = rec.gauge("engine.jobs.in_flight");
        // One histogram per distinct page label, pooled across groups and
        // patterns; the inventory order is a pure function of the app, so
        // every shard registers the identical series set.
        let mut pages: Vec<(String, HistId)> = Vec::new();
        for page in app.all_pages() {
            if pages.iter().any(|(l, _)| *l == page.page) {
                continue;
            }
            let id = rec.histogram(&crate::slo::page_series(&page.page));
            pages.push((page.page, id));
        }
        let wan = net
            .topology()
            .link_ids()
            .filter(|&l| net.topology().link(l).latency >= wan_threshold)
            .map(|l| {
                let name = &net.topology().link(l).name;
                WanSeries {
                    link: l,
                    msgs: rec.counter(&format!("wan.{name}.msgs")),
                    bytes: rec.counter(&format!("wan.{name}.bytes")),
                    rtt: rec.gauge(&format!("wan.{name}.rtt_ms")),
                    last_msgs: 0,
                    last_bytes: 0,
                }
            })
            .collect();
        let groups = groups
            .iter()
            .map(|g| rec.counter(&format!("group.{}.issued", g.name)))
            .collect();
        MetricsState {
            window,
            rec,
            ev_kinds,
            ok,
            failed,
            queue_near,
            queue_far,
            slab_free,
            jobs_in_flight,
            pages,
            wan,
            groups,
        }
    }

    fn page_hist(&self, label: &str) -> Option<HistId> {
        self.pages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, id)| *id)
    }

    /// Moves the world's hot-path event-count array into the recorder's
    /// current window. Called at every roll and at drain, so no count is
    /// lost when the horizon lands between rolls.
    fn flush_ev_counts(&mut self, counts: &mut [u64; EV_KINDS]) {
        for (&id, count) in self.ev_kinds.iter().zip(counts.iter_mut()) {
            if *count > 0 {
                self.rec.add(id, *count);
                *count = 0;
            }
        }
    }
}

/// The driver's typed event payload: every recurring event of a run is one
/// of these, scheduled without allocation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// Advance an in-flight job (network/CPU step completion).
    Net(NetEvent),
    /// A session's soft-delay timer expired: issue its next request.
    Issue { slot: u32 },
    /// A request's program completed: record it and free its slot.
    Done { token: u32 },
    /// Periodic telemetry snapshot (scheduled only when the spec enables
    /// the telemetry series, so traced-off runs never see this variant).
    Snapshot,
    /// Apply fault-schedule entry `idx` (scheduled once per entry at run
    /// start; an empty schedule adds zero events).
    Fault { idx: u32 },
    /// A failed request's backoff expired: re-spawn its program.
    Retry { token: u32 },
    /// A cross-shard invalidation note arrived (conservative-parallel runs
    /// only): bump the plan cache's generation for the tables a remote
    /// shard's bind wrote. The payload index points into the shard
    /// context's note buffer, keeping the event itself `Copy`.
    ShardNote { idx: u32 },
    /// Close the current metrics window (scheduled only when the spec's
    /// [`crate::spec::MetricsSettings`] arm the recorder, so metrics-off
    /// runs never see this variant). Rides the engine's internal side queue
    /// so telemetry never perturbs the `queue.*` gauges it reports.
    MetricsRoll,
    /// Adaptive-controller decision point (sequential runs only; parallel
    /// runs drive the controller from the conservative engine's window
    /// barriers). Internal-queue event, like [`Ev::MetricsRoll`].
    AdaptTick,
    /// A migrating component's state transfer arrived: flip the primary in
    /// the deployment descriptor and restart the destination container
    /// cold. The payload indexes the world's pending-migration buffer.
    Migrate { slot: u32 },
}

impl Ev {
    /// Dense kind index for the engine self-profile counters
    /// ([`EV_KIND_NAMES`]).
    fn kind_index(&self) -> usize {
        match self {
            Ev::Net(_) => 0,
            Ev::Issue { .. } => 1,
            Ev::Done { .. } => 2,
            Ev::Snapshot => 3,
            Ev::Fault { .. } => 4,
            Ev::Retry { .. } => 5,
            Ev::ShardNote { .. } => 6,
            Ev::MetricsRoll => 7,
            Ev::AdaptTick => 8,
            Ev::Migrate { .. } => 9,
        }
    }
}

impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Ev {
        Ev::Net(e)
    }
}

impl Fire<World> for Ev {
    fn fire(self, world: &mut World, ctx: &mut Context<'_, World, Ev>) {
        // Engine self-profile: one unconditional, bounds-check-free array
        // increment per event. Counting unconditionally is cheaper than
        // branching on whether metrics are armed; the totals only reach the
        // recorder at flush time when they are.
        world.ev_counts[self.kind_index() & (EV_KINDS - 1)] += 1;
        match self {
            Ev::Net(NetEvent::Advance { job }) => advance_job(world, ctx, job),
            Ev::Issue { slot } => issue(world, ctx, slot as usize),
            Ev::Done { token } => complete_request(world, ctx, token),
            Ev::Snapshot => snapshot_telemetry(world, ctx),
            Ev::Fault { idx } => apply_fault(world, ctx, idx),
            Ev::Retry { token } => retry_request(world, ctx, token),
            Ev::ShardNote { idx } => apply_shard_note(world, idx),
            Ev::MetricsRoll => roll_metrics(world, ctx),
            Ev::AdaptTick => adapt_tick(world, ctx),
            Ev::Migrate { slot } => apply_migration(world, slot),
        }
    }
}

/// Applies one inbound cross-shard invalidation note: every memoized plan
/// reading a table a remote shard wrote must re-bind, exactly as a local
/// write would force (see [`PlanCache::bump`]).
fn apply_shard_note(world: &mut World, idx: u32) {
    let tables = {
        let shard = world.shard.as_mut().expect("note on unsharded world");
        std::mem::take(&mut shard.notes[idx as usize])
    };
    for &t in &tables {
        world.plans.bump(t);
    }
}

impl JobWorld for World {
    type Event = Ev;

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn jobs_mut(&mut self) -> &mut Jobs<World> {
        &mut self.jobs
    }

    fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        // The job executor only calls this after finding a span context on
        // the job, which in turn only exists when tracing sampled the
        // request — so no enabled-check is needed here.
        Some(&mut self.tracer)
    }

    fn fault_timeout(&self) -> SimDuration {
        self.spec.faults.timeout
    }

    fn job_failed(&mut self) {
        self.fault_rt.last_done_failed = true;
    }

    fn fork_failed(&mut self, tag: u64, _at: SimTime) {
        // A lost asynchronous push: its deferred apply never reaches the
        // replicas, which simply stay (detectably) stale. Cache state is
        // unchanged, so memoized plans stay valid and no staleness sample
        // is recorded — the update never arrived anywhere.
        self.deferred.remove(&tag);
    }

    fn fork_completed(&mut self, tag: u64, at: SimTime) {
        if let Some((issued, apply)) = self.deferred.remove(&tag) {
            if self.plans.enabled {
                // The apply changes replica/cache state: invalidate every
                // plan reading an affected table.
                let mut tables = std::mem::take(&mut self.deferred_tables);
                tables.clear();
                apply.tables(&self.registry, &mut tables);
                for &t in &tables {
                    self.plans.bump(t);
                }
                self.deferred_tables = tables;
            }
            apply.apply(&mut self.state);
            if issued >= self.measuring_from {
                self.staleness_ms.record((at - issued).as_millis_f64());
            }
        }
    }
}

fn alloc_inflight(world: &mut World, inf: Inflight) -> u32 {
    if let Some(token) = world.inflight_free.pop() {
        world.inflight[token as usize] = Some(inf);
        token
    } else {
        world.inflight.push(Some(inf));
        (world.inflight.len() - 1) as u32
    }
}

fn complete_request(world: &mut World, ctx: &mut Context<'_, World, Ev>, token: u32) {
    // One predictable branch on fault-free runs: the flag is only ever set
    // by the executor's `job_failed` hook, synchronously before this event.
    if std::mem::take(&mut world.fault_rt.last_done_failed) {
        request_attempt_failed(world, ctx, token);
        return;
    }
    let inf = world.inflight[token as usize]
        .take()
        .expect("completion token not in flight");
    world.inflight_free.push(token);
    if inf.measured {
        let now = ctx.now();
        let mut ok = true;
        if world.fault_rt.active {
            // The request completed at an entry cut off from the central
            // server. With edge caches deployed, reads are being answered
            // from state the partition keeps from refreshing: serve them
            // with a recorded staleness bound, or — under a strict policy —
            // reject them as failures. Configs without caches only complete
            // here when the page needed no far-side data at all.
            if let Some(since) = world.fault_rt.stale_since[inf.entry as usize] {
                if world.fault_rt.caches_serve && inf.replayable {
                    if world.spec.faults.policy.stale_serve {
                        world
                            .stats
                            .record_stale_serve_id(inf.group as u32, (now - since).as_millis_f64());
                    } else {
                        ok = false;
                    }
                }
            }
        }
        world.stats.record_outcome_id(inf.group as u32, ok);
        if ok {
            let response = now - inf.start;
            world.stats.record_ids(inf.series, inf.session, response);
            world.completed += 1;
            if let Some(m) = &mut world.metrics {
                m.rec.add(m.ok, 1);
                if let Some(h) = inf.hist {
                    m.rec.observe(h, response.as_millis_f64());
                }
            }
        } else if let Some(m) = &mut world.metrics {
            m.rec.add(m.failed, 1);
        }
    }
    if let Some(tc) = inf.trace {
        world.tracer.finish_request(tc, ctx.now());
    }
}

/// A request attempt hit an injected fault. Retry with capped exponential
/// backoff while the policy allows, then count the request as failed.
fn request_attempt_failed(world: &mut World, ctx: &mut Context<'_, World, Ev>, token: u32) {
    let now = ctx.now();
    let policy = world.spec.faults.policy;
    let inf = world.inflight[token as usize]
        .as_mut()
        .expect("failed token not in flight");
    inf.attempt += 1;
    if inf.program.is_some() && inf.attempt <= policy.max_retries {
        let delay = policy.backoff(inf.attempt);
        let attempt = inf.attempt;
        let (measured, group, trace) = (inf.measured, inf.group, inf.trace);
        if measured {
            world.stats.record_retry_id(group as u32);
        }
        if let Some(tc) = trace {
            world.tracer.leaf(
                tc,
                now,
                now + delay,
                SpanKind::Retry {
                    attempt,
                    failover: false,
                },
            );
        }
        ctx.schedule_event_in(delay, Ev::Retry { token });
    } else {
        let inf = world.inflight[token as usize].take().expect("in flight");
        world.inflight_free.push(token);
        if inf.measured {
            world.stats.record_outcome_id(inf.group as u32, false);
            if let Some(m) = &mut world.metrics {
                m.rec.add(m.failed, 1);
            }
        }
        if let Some(tc) = inf.trace {
            world.tracer.finish_request(tc, now);
        }
    }
}

/// Re-spawns a failed request's program after its backoff. State effects
/// were applied at bind time, so a replay only re-drives network and CPU
/// work — including the asynchronous push forks, whose deferred applies are
/// keyed by tag and therefore apply at most once.
fn retry_request(world: &mut World, ctx: &mut Context<'_, World, Ev>, token: u32) {
    let (steps, trace) = {
        let inf = world.inflight[token as usize]
            .as_ref()
            .expect("retry token not in flight");
        (
            Arc::clone(inf.program.as_ref().expect("retryable request")),
            inf.trace,
        )
    };
    spawn_program_traced(
        world,
        ctx,
        Program::Shared(steps),
        Ev::Done { token },
        trace,
    );
}

/// Applies one fault-schedule entry to the live network/container state and
/// refreshes the per-entry partition bookkeeping.
fn apply_fault(world: &mut World, ctx: &mut Context<'_, World, Ev>, idx: u32) {
    let kind = world.spec.faults.schedule.events[idx as usize].kind;
    // Memoized plans carry routing and cache-state assumptions; any fault
    // transition invalidates them wholesale (same rule as perturbations).
    world.plans.invalidate_all();
    match kind {
        FaultKind::LinkDown { link } => {
            let l = world.fault_rt.links[link as usize];
            world.net.set_link_up(l, false);
        }
        FaultKind::LinkRestore { link } => {
            let l = world.fault_rt.links[link as usize];
            world.net.set_link_up(l, true);
        }
        FaultKind::LinkDegraded { link, factor } => {
            let l = world.fault_rt.links[link as usize];
            world.net.scale_link_latency(l, factor);
        }
        FaultKind::MsgLoss { link, probability } => {
            let l = world.fault_rt.links[link as usize];
            world.net.set_link_loss(l, probability);
        }
        FaultKind::NodeCrash { node } => {
            let n = world.fault_rt.nodes[node as usize];
            world.net.set_node_up(n, false);
            // The container process died: every memory-resident cache on
            // the node is gone (§4.3–§4.4).
            world.state.evict_node(n);
        }
        FaultKind::NodeRestart { node } => {
            let n = world.fault_rt.nodes[node as usize];
            world.net.set_node_up(n, true);
            if world.descriptor.eager_cache_warmup {
                // Push-based configs re-run deployment warm-up for the
                // restarted node; lazy configs refill on demand.
                warm_caches(
                    &mut world.state,
                    &world.app,
                    &world.registry,
                    &world.descriptor,
                    &world.db,
                    Some(n),
                );
            }
        }
    }
    // Refresh partition state for every entry node: a cut starts the
    // staleness clock, healing stops it.
    let central = world.descriptor.central_node;
    for g in 0..world.spec.groups.len() {
        let entry = world.spec.groups[g].entry_node;
        let cut = !world.net.path_is_up(entry, central);
        let slot = &mut world.fault_rt.stale_since[entry.index()];
        if cut && slot.is_none() {
            *slot = Some(ctx.now());
        } else if !cut && slot.is_some() {
            *slot = None;
        }
    }
}

/// Whether any link on the `from -> to` route is a WAN leg (base latency at
/// or above `threshold`). Mirrors the hop classification in the job
/// executor, so logical and traced WAN accounting agree on what "WAN" means.
fn path_is_wan(net: &Network, threshold: SimDuration, from: NodeId, to: NodeId) -> bool {
    from != to
        && net
            .route(from, to)
            .iter()
            .any(|&l| net.topology().link(l).latency >= threshold)
}

/// Logical WAN round trips of a bind: the sum of round trips of every
/// crossing whose path traverses a WAN leg. This is the *static* figure —
/// derived from the binder's crossing list, independent of sampled protocol
/// chatter — and is what the analyzer's static budget is compared against.
fn logical_wan_rts(net: &Network, threshold: SimDuration, crossings: &[Crossing]) -> f64 {
    crossings
        .iter()
        .filter(|c| path_is_wan(net, threshold, c.from, c.to))
        .map(|c| f64::from(c.round_trips()))
        .sum()
}

/// Samples every registered gauge/counter into one timestamped snapshot and
/// re-arms the cadence event.
fn snapshot_telemetry(world: &mut World, ctx: &mut Context<'_, World, Ev>) {
    // Take the handles out so the registry and the rest of the world can be
    // borrowed simultaneously.
    let Some(ids) = world.telemetry_ids.take() else {
        return;
    };
    let depths = ctx.queue_depths();
    let t = &mut world.telemetry;
    t.set(ids.queue_near, depths.near as f64);
    t.set(ids.queue_far, depths.far as f64);
    t.set(ids.slab_slots, depths.slab_slots as f64);
    t.set(ids.slab_free, depths.slab_free as f64);
    t.set(ids.jobs_in_flight, world.jobs.in_flight() as f64);
    t.set(ids.plan_hits, world.plans.hits as f64);
    t.set(ids.plan_misses, world.plans.misses as f64);
    t.set(ids.plan_invalidations, world.plans.invalidations as f64);
    t.set(
        ids.entity_cache_hits,
        world.bind_totals.entity_cache_hits as f64,
    );
    t.set(
        ids.query_cache_hits,
        world.bind_totals.query_cache_hits as f64,
    );
    t.set(ids.completed, world.completed as f64);
    t.set(ids.traces_committed, world.tracer.finished().len() as f64);
    t.set(ids.traces_dropped, world.tracer.dropped() as f64);
    for &(link, msgs_id, bytes_id) in &ids.wan_links {
        let (msgs, bytes) = world.net.link_traffic(link);
        t.set(msgs_id, msgs as f64);
        t.set(bytes_id, bytes as f64);
    }
    if let Some(f) = &ids.faults {
        let outcome = world.stats.total_outcome();
        t.set(f.links_down, world.net.links_down() as f64);
        t.set(f.nodes_down, world.net.nodes_down() as f64);
        t.set(f.failed, outcome.failed as f64);
        t.set(f.retries, outcome.retries as f64);
    }
    if let Some(s) = &ids.shard {
        let shard = world.shard.as_ref().expect("shard gauges on sharded runs");
        t.set(s.outbound_pending, shard.outbound.len() as f64);
        t.set(s.notes_received, shard.notes.len() as f64);
    }
    t.snapshot(ctx.now());
    if ctx.now() + ids.every <= world.spec.horizon() {
        ctx.schedule_event_in(ids.every, Ev::Snapshot);
    }
    world.telemetry_ids = Some(ids);
}

/// Samples the engine gauges, folds the WAN traffic deltas, and closes the
/// current metrics window; re-arms the cadence event until the horizon. The
/// recorder is pure observation — nothing here touches simulation state, so
/// metrics-on runs replay metrics-off runs byte-for-byte.
fn roll_metrics(world: &mut World, ctx: &mut Context<'_, World, Ev>) {
    // Take the state out so the recorder and the rest of the world can be
    // borrowed simultaneously.
    let Some(mut m) = world.metrics.take() else {
        return;
    };

    m.flush_ev_counts(&mut world.ev_counts);
    let depths = ctx.queue_depths();
    m.rec.set(m.queue_near, depths.near as f64);
    m.rec.set(m.queue_far, depths.far as f64);
    m.rec.set(m.slab_free, depths.slab_free as f64);
    m.rec.set(m.jobs_in_flight, world.jobs.in_flight() as f64);
    for w in &mut m.wan {
        let (msgs, bytes) = world.net.link_traffic(w.link);
        // `reset_stats` at the measured-window boundary moves the cumulative
        // figures backwards; the saturating delta charges the window holding
        // the reset only what it observed afterwards.
        m.rec.add(w.msgs, msgs.saturating_sub(w.last_msgs));
        m.rec.add(w.bytes, bytes.saturating_sub(w.last_bytes));
        w.last_msgs = msgs;
        w.last_bytes = bytes;
        m.rec
            .set(w.rtt, world.net.link_round_trip(w.link).as_millis_f64());
    }
    m.rec.roll();
    if ctx.now() + m.window <= world.spec.horizon() {
        // Internal side queue: telemetry must not perturb the `queue.*`
        // gauges it reports (or any main-queue tie-breaking).
        ctx.schedule_internal_in(m.window, Ev::MetricsRoll);
    }
    world.metrics = Some(m);
}

/// One sequential adaptive-controller decision point: observe the freshest
/// metrics window, run a bounded delta-cost search, and launch the ordered
/// migrations as WAN state transfers.
fn adapt_tick(world: &mut World, ctx: &mut Context<'_, World, Ev>) {
    let now = ctx.now();
    let cadence = world.spec.adaptive.cadence;
    if now + cadence <= world.spec.horizon() {
        ctx.schedule_internal_in(cadence, Ev::AdaptTick);
    }
    let Some(obs) = world.adaptive_observation() else {
        return;
    };
    let Some(mut controller) = world.adaptive.take() else {
        return;
    };
    for order in controller.round(now, &obs) {
        let (arrival, slot) = world.commit_migration(now, &order);
        ctx.schedule_event_at(arrival, Ev::Migrate { slot });
    }
    world.adaptive = Some(controller);
}

/// A migration's state transfer arrived: re-home the component's primary
/// (or install its new replica) and restart the destination container cold
/// — the fault machinery's crash/restart semantics, reused. In-flight
/// requests keep their already bound plans (they complete against the old
/// placement); every later request re-binds against the updated
/// descriptor.
fn apply_migration(world: &mut World, slot: u32) {
    let (component, kind, to) = world.adaptive_pending[slot as usize];
    match kind {
        MoveKind::Primary => world.descriptor.move_primary(component, to),
        MoveKind::Replica => world.descriptor.add_replica(component, to),
    }
    // The destination container restarts to host the migrated primary:
    // every memory-resident cache there starts cold.
    world.state.evict_node(to);
    // Remote stubs for the moved component dangle everywhere; drop them.
    world.state.invalidate_component_stubs(component);
    world.plans.invalidate_all();
}

/// Issues the next request of session `slot_idx`, then re-schedules itself
/// after the soft delay.
fn issue(world: &mut World, ctx: &mut Context<'_, World, Ev>, slot_idx: usize) {
    let now = ctx.now();
    // Per-slot end: the horizon for steady-state sessions, the surge window's
    // close for surge sessions.
    if now >= world.sessions[slot_idx].ends {
        return;
    }

    // Draw the next page spec, recycling the session when it finishes.
    let drawn = {
        let slot = &mut world.sessions[slot_idx];
        match world.app.draw_page(&mut slot.state, &mut world.rng) {
            Some(x) => Some(x),
            None => {
                slot.state = world.app.new_session(slot.kind, &mut world.rng);
                world.app.draw_page(&mut slot.state, &mut world.rng)
            }
        }
    };
    let Some((label, page_spec)) = drawn else {
        return;
    };

    let slot_group = world.sessions[slot_idx].group;
    let pattern = world.sessions[slot_idx].pattern;
    if let Some(m) = world.metrics.as_mut() {
        let id = m.groups[slot_group];
        m.rec.add(id, 1);
    }
    let (client_node, mut entry_node) = {
        let g = &world.spec.groups[slot_group];
        (g.client_node, g.entry_node)
    };
    let measured = now >= world.measuring_from;

    // Entry failover: with the policy on, new requests to a crashed edge
    // entry re-target the central server (the host still forwards, only
    // the application process is down).
    let mut failover = false;
    if world.fault_rt.active
        && world.spec.faults.policy.failover
        && !world.net.node_is_up(entry_node)
    {
        entry_node = world.descriptor.central_node;
        failover = true;
        if measured {
            world.stats.record_failover_id(slot_group as u32);
        }
    }

    let (series, session, hist) = if measured {
        if world.legacy {
            // Pre-overhaul stats path: clone the group name and re-resolve
            // the series through string lookups on every request.
            let name = world.spec.groups[slot_group].name.clone();
            let (series, session) = world.stats.intern(&name, pattern, label);
            let hist = world.metrics.as_ref().and_then(|m| m.page_hist(label));
            (series, session, hist)
        } else {
            let memo_key = (slot_group as u16, pattern, label);
            match world.series_memo.get(&memo_key) {
                Some(&ids) => ids,
                None => {
                    let (series, session) =
                        world
                            .stats
                            .intern(&world.spec.groups[slot_group].name, pattern, label);
                    let hist = world.metrics.as_ref().and_then(|m| m.page_hist(label));
                    world.series_memo.insert(memo_key, (series, session, hist));
                    (series, session, hist)
                }
            }
        }
    } else {
        (0, 0, None)
    };
    // One branch on the disabled path: `start_request` is only reached when
    // the run's tracer is on; it then applies head sampling itself.
    let trace = if world.tracer.enabled() {
        world.tracer.start_request(
            now,
            TraceMeta {
                label,
                group: slot_group as u32,
                client: client_node.index() as u32,
                entry: entry_node.index() as u32,
                measured,
                wan_rts_logical: 0.0,
            },
        )
    } else {
        None
    };
    if failover {
        if let Some(tc) = trace {
            world.tracer.note(tc, now, "failover", 1);
        }
    }
    let token = alloc_inflight(
        world,
        Inflight {
            start: now,
            measured,
            series,
            session,
            trace,
            group: slot_group as u16,
            entry: entry_node.index() as u16,
            attempt: 0,
            replayable: false,
            program: None,
            hist,
        },
    );

    let key = PlanKey {
        page: page_spec.key(),
        client: client_node,
        entry: entry_node,
    };
    if let Some((steps, stats, wan_rts)) = world.plans.lookup(&key) {
        // Replay the memoized program: no page construction, no binder, no
        // RNG draws (the bind was certified draw-free), identical steps.
        if measured {
            world.bind_totals.merge(&stats);
        }
        if let Some(tc) = trace {
            world.tracer.set_logical_wan(tc, wan_rts);
        }
        if world.fault_rt.active {
            let inf = world.inflight[token as usize]
                .as_mut()
                .expect("just allocated");
            inf.replayable = true;
            inf.program = Some(Arc::clone(&steps));
        }
        spawn_program_traced(
            world,
            ctx,
            Program::Shared(steps),
            Ev::Done { token },
            trace,
        );
    } else {
        let page = world.app.build_page(&page_spec);
        let bound = Binder::new(
            &world.registry,
            &world.descriptor,
            &world.protocols,
            &world.container_costs,
            &mut world.db,
            &mut world.state,
            &mut world.rng,
            &mut world.next_tag,
        )
        .with_legacy_scan(world.legacy)
        .bind_page(client_node, entry_node, &page);

        if measured {
            world.bind_totals.merge(&bound.stats);
        }
        for &t in &bound.written_tables {
            world.plans.bump(t);
        }
        // Conservative-parallel runs announce writes to the other shards:
        // the note rides a WAN path, so its arrival is always at or past
        // the engine's lookahead horizon.
        if let Some(shard) = &mut world.shard {
            if !bound.written_tables.is_empty() {
                shard.outbound.push((now, bound.written_tables.clone()));
            }
        }
        for (tag, apply) in bound.deferred {
            world.deferred.insert(tag, (now, apply));
        }

        // Logical WAN accounting is only needed when tracing is on; keep the
        // untraced bind path free of route walks.
        let wan_rts = if world.tracer.enabled() {
            let threshold = world.trace_wan_threshold();
            logical_wan_rts(&world.net, threshold, &bound.crossings)
        } else {
            0.0
        };
        if let Some(tc) = trace {
            world.tracer.set_logical_wan(tc, wan_rts);
        }

        if bound.replayable && world.plans.enabled {
            let steps: Arc<[Step]> = bound.steps.into();
            world.plans.insert(
                key,
                Arc::clone(&steps),
                bound.stats,
                wan_rts,
                &bound.read_tables,
            );
            if world.fault_rt.active {
                let inf = world.inflight[token as usize]
                    .as_mut()
                    .expect("just allocated");
                inf.replayable = true;
                inf.program = Some(Arc::clone(&steps));
            }
            spawn_program_traced(
                world,
                ctx,
                Program::Shared(steps),
                Ev::Done { token },
                trace,
            );
        } else if world.fault_rt.active {
            // Fault runs retain every program for retries; sharing instead
            // of owning changes nothing about the simulated steps.
            let steps: Arc<[Step]> = bound.steps.into();
            {
                let inf = world.inflight[token as usize]
                    .as_mut()
                    .expect("just allocated");
                inf.replayable = bound.replayable;
                inf.program = Some(Arc::clone(&steps));
            }
            spawn_program_traced(
                world,
                ctx,
                Program::Shared(steps),
                Ev::Done { token },
                trace,
            );
        } else {
            spawn_program_traced(
                world,
                ctx,
                Program::Owned(bound.steps),
                Ev::Done { token },
                trace,
            );
        }
    }

    ctx.schedule_event_in(
        world.spec.soft_delay,
        Ev::Issue {
            slot: slot_idx as u32,
        },
    );
}

/// Deployment-time cache warm-up for push-based configurations: populate
/// every cacheable query instance at its cache nodes and every replicated
/// entity row at its replica nodes. With `only`, warms just that node — the
/// restart path after a crash evicted it.
fn warm_caches(
    state: &mut ContainerState,
    app: &App,
    registry: &ComponentRegistry,
    descriptor: &DeploymentDescriptor,
    db: &Database,
    only: Option<NodeId>,
) {
    for (tag, query) in app.cacheable_query_instances() {
        for &node in &descriptor.query_cache.nodes {
            if only.is_some_and(|n| n != node) {
                continue;
            }
            if descriptor.query_cache.covers(node, &tag) {
                state.cache_query(node, query.clone());
            }
        }
    }
    for component in registry.ids() {
        let spec_c = registry.spec(component);
        if let Some(table) = spec_c.table {
            let replicas: Vec<_> = descriptor
                .replica_nodes(component)
                .filter(|&n| only.is_none_or(|o| o == n))
                .collect();
            if replicas.is_empty() {
                continue;
            }
            for row in db.table(table).all_ids() {
                for &node in &replicas {
                    state.load_entity_row(component, node, row);
                }
            }
        }
    }
}

/// Builds one run's fully-scheduled simulation without running it.
///
/// The classic sequential driver (`shard: None`) runs the result straight
/// to the horizon; the conservative-parallel driver builds one simulation
/// per [`ShardPlan`] and advances them in lookahead windows
/// ([`crate::parallel`]). A shard simulates only its own client groups'
/// sessions and draws from per-shard RNG streams
/// ([`stream::shard`]) — both fixed by the decomposition, never by the
/// thread count.
pub(crate) fn build_sim(input: ExperimentInput, shard: Option<ShardPlan>) -> Simulation<World, Ev> {
    let ExperimentInput {
        app,
        registry,
        db,
        descriptor,
        topology,
        protocols,
        container_costs,
        spec,
    } = input;

    let rng = SimRng::seed_from_u64(spec.seed);
    let (mut session_rng, world_rng) = match &shard {
        Some(p) => (
            rng.derive(stream::shard(stream::SESSIONS, p.index)),
            rng.derive(stream::shard(stream::WORLD, p.index)),
        ),
        None => (rng.derive(stream::SESSIONS), rng.derive(stream::WORLD)),
    };
    let measuring_from = SimTime::ZERO + spec.warmup;
    let horizon = spec.horizon();
    // Satellite: the slab queue's far-horizon epoch follows the topology —
    // WAN round trips dominate event spacing, so the minimum WAN leg is the
    // natural bucket width (500 ms when the topology has no WAN leg at
    // all). Behavior-neutral: the queue's ordering contract is exact at
    // any epoch.
    let far_epoch = topology
        .min_wan_latency()
        .unwrap_or(SimDuration::from_millis(500));

    // Create the session slots: one per concurrent client session (of the
    // shard's own groups, when sharded; group indices stay global).
    let mut sessions = Vec::new();
    for (gi, group) in spec.groups.iter().enumerate() {
        if shard.as_ref().is_some_and(|p| !p.members[gi]) {
            continue;
        }
        for (kind, rate) in [
            (SessionKind::Browser, group.browser_rate),
            (SessionKind::Transactional, group.transactional_rate),
        ] {
            for _ in 0..spec.sessions_for_rate(rate) {
                let pattern = match kind {
                    SessionKind::Browser => "Browser",
                    SessionKind::Transactional => app.transactional_label(),
                };
                sessions.push(SessionSlot {
                    group: gi,
                    kind,
                    pattern,
                    state: app.new_session(kind, &mut session_rng),
                    ends: horizon,
                });
            }
        }
    }

    let n_sessions = sessions.len();
    let soft_delay = spec.soft_delay;

    // Surge sessions: extra slots modeling `factor - 1` of a group's
    // offered load over `[from, to)` — flash crowds, diurnal shifts. Drawn
    // from the dedicated `stream::SURGES` RNG stream so a surge-free spec
    // performs zero extra draws and stays byte-identical to earlier builds.
    let mut surge_rng = match &shard {
        Some(p) => rng.derive(stream::shard(stream::SURGES, p.index)),
        None => rng.derive(stream::SURGES),
    };
    let mut surge_starts: Vec<(u32, SimTime)> = Vec::new();
    for surge in &spec.surges {
        let gi = spec
            .groups
            .iter()
            .position(|g| g.name == surge.group)
            .unwrap_or_else(|| panic!("surge references unknown group {}", surge.group));
        if shard.as_ref().is_some_and(|p| !p.members[gi]) {
            continue;
        }
        let group = &spec.groups[gi];
        let extra = (surge.factor - 1.0).max(0.0);
        let ends = (SimTime::ZERO + surge.to).min(horizon);
        let base_idx = sessions.len();
        for (kind, rate) in [
            (SessionKind::Browser, group.browser_rate),
            (SessionKind::Transactional, group.transactional_rate),
        ] {
            for _ in 0..spec.sessions_for_rate(rate * extra) {
                let pattern = match kind {
                    SessionKind::Browser => "Browser",
                    SessionKind::Transactional => app.transactional_label(),
                };
                sessions.push(SessionSlot {
                    group: gi,
                    kind,
                    pattern,
                    state: app.new_session(kind, &mut surge_rng),
                    ends,
                });
            }
        }
        // Stagger the surge's slots across one soft-delay interval from its
        // onset, mirroring the steady-state session ramp.
        let n_surge = sessions.len() - base_idx;
        for k in 0..n_surge {
            let offset = soft_delay.mul_f64(k as f64 / n_surge.max(1) as f64);
            surge_starts.push(((base_idx + k) as u32, SimTime::ZERO + surge.from + offset));
        }
    }

    let mut state = ContainerState::new();
    if descriptor.eager_cache_warmup {
        warm_caches(&mut state, &app, &registry, &descriptor, &db, None);
    }

    let legacy = spec.legacy_baseline;
    let bind_cache = spec.bind_cache && !legacy;
    let faults_active = spec.faults.active();
    let mut net = Network::new(topology);
    // Deterministic message-loss hashing is keyed by the experiment seed, so
    // loss outcomes replay identically across sequential and parallel sweeps
    // without touching any RNG stream.
    net.set_loss_salt(spec.seed);
    let fault_rt = FaultRuntime {
        active: faults_active,
        links: if faults_active {
            net.topology().link_ids().collect()
        } else {
            Vec::new()
        },
        nodes: if faults_active {
            net.topology().node_ids().collect()
        } else {
            Vec::new()
        },
        stale_since: vec![None; net.topology().node_count()],
        caches_serve: descriptor.entity_propagation != mutsvc_middleware::UpdatePropagation::None
            || !descriptor.query_cache.nodes.is_empty(),
        last_done_failed: false,
    };
    let tracer = Tracer::new(spec.trace.tracer_config());
    let mut telemetry = TelemetryRegistry::new();
    let telemetry_ids = if spec.trace.telemetry_enabled() {
        // The default WAN threshold must match the job executor's; the
        // World impl doesn't override `trace_wan_threshold`.
        Some(TelemetryIds::register(
            &mut telemetry,
            &net,
            SimDuration::from_millis(20),
            spec.trace.telemetry_every,
            TelemetryArms {
                faults: faults_active,
                sharded: shard.is_some(),
            },
        ))
    } else {
        None
    };
    let telemetry_every = telemetry_ids.as_ref().map(|ids| ids.every);
    let metrics = spec.metrics.active().then(|| {
        MetricsState::register(
            &net,
            &app,
            &spec.groups,
            spec.metrics.window,
            SimDuration::from_millis(20),
        )
    });
    let metrics_window = metrics.as_ref().map(|m| m.window);
    // Pre-intern each group's outcome slot so its id equals its index.
    let mut stats = WorkloadStats::new();
    for g in &spec.groups {
        stats.intern_group(&g.name);
    }
    // Fault firing times, captured before `spec` moves into the world; the
    // handler looks the kind up by index.
    let fault_times: Vec<SimDuration> = spec.faults.schedule.events.iter().map(|e| e.at).collect();
    // The live-migration controller (sequential runs only): parallel runs
    // host one controller in the coordinator so every shard applies the
    // same globally decided orders.
    let adaptive = (shard.is_none() && spec.adaptive.active())
        .then(|| Controller::new(&app, &registry, &descriptor, net.topology(), &spec));
    let adaptive_cadence = adaptive.as_ref().map(|_| spec.adaptive.cadence);
    let world = World {
        net,
        jobs: Jobs::new(),
        db,
        state,
        registry,
        descriptor,
        protocols,
        container_costs,
        app,
        rng: world_rng,
        next_tag: 0,
        deferred: HashMap::new(),
        deferred_tables: Vec::new(),
        plans: PlanCache::new(bind_cache),
        fault_rt,
        stats,
        series_memo: HashMap::new(),
        staleness_ms: Summary::new(),
        bind_totals: BindStats::default(),
        sessions,
        inflight: Vec::new(),
        inflight_free: Vec::new(),
        spec,
        measuring_from,
        completed: 0,
        legacy,
        tracer,
        telemetry,
        telemetry_ids,
        shard: shard.map(|_| ShardCtx {
            outbound: Vec::new(),
            notes: Vec::new(),
        }),
        metrics,
        ev_counts: [0; EV_KINDS],
        adaptive,
        adaptive_pending: Vec::new(),
    };

    let mut sim: Simulation<World, Ev> = Simulation::with_events(world);
    sim.set_far_epoch(far_epoch);
    // The pre-overhaul queue boxed every event; emulate it for baseline runs.
    sim.emulate_boxed_events(legacy);
    // Stagger session starts uniformly across one soft-delay interval.
    for i in 0..n_sessions {
        let offset = soft_delay.mul_f64(i as f64 / n_sessions.max(1) as f64);
        sim.schedule_event_at(SimTime::ZERO + offset, Ev::Issue { slot: i as u32 });
    }
    // Reset resource statistics when the measured window opens.
    sim.schedule_at(measuring_from, |w: &mut World, _| w.net.reset_stats());
    // Arm the telemetry cadence (typed event; never scheduled when off).
    if let Some(every) = telemetry_every {
        sim.schedule_event_at(SimTime::ZERO + every, Ev::Snapshot);
    }
    // Surge onsets (no surges: no events, byte-identical queue history).
    for (slot, at) in surge_starts {
        sim.schedule_event_at(at, Ev::Issue { slot });
    }
    // Arm the metrics roll cadence on the engine's *internal* side queue:
    // telemetry observes the main queue's gauges, so it must not sit in it.
    if let Some(window) = metrics_window {
        sim.schedule_internal_at(SimTime::ZERO + window, Ev::MetricsRoll);
    }
    // Arm the adaptive decision cadence (sequential runs only; also an
    // internal event — controller rounds read telemetry, they are not
    // simulated work). The first round fires one cadence past warm-up:
    // windows closed during the ramp carry cold caches and connection
    // setup, and a controller acting on them migrates against transients.
    if let Some(cadence) = adaptive_cadence {
        let warmup = sim.world().spec.warmup;
        sim.schedule_internal_at(SimTime::ZERO + warmup + cadence, Ev::AdaptTick);
    }
    // Failure injection. Perturbations change link timing, so every memoized
    // plan (whose steps carry admission-time assumptions) is dropped.
    for p in sim.world().spec.perturbations.clone() {
        let action = p.action.clone();
        sim.schedule_at(SimTime::ZERO + p.at, move |w: &mut World, _| {
            w.plans.invalidate_all();
            match &action {
                crate::spec::NetAction::ScaleWanLatency { threshold, factor } => {
                    w.net.scale_latencies_above(*threshold, *factor);
                }
                crate::spec::NetAction::Restore => w.net.clear_latency_overrides(),
            }
        });
    }
    // Fault schedule: typed events, so a fault-off run (empty schedule)
    // leaves the queue — and the boxed-event count — untouched.
    for (i, at) in fault_times.into_iter().enumerate() {
        sim.schedule_event_at(SimTime::ZERO + at, Ev::Fault { idx: i as u32 });
    }

    sim
}

/// Runs one experiment to completion and reports its measurements.
pub fn run_experiment(input: ExperimentInput) -> ExperimentReport {
    let horizon = input.spec.horizon();
    let mut sim = build_sim(input, None);
    sim.run_until(horizon);
    drain_report(sim)
}

/// Tears a finished simulation down into its [`ExperimentReport`].
pub(crate) fn drain_report(sim: Simulation<World, Ev>) -> ExperimentReport {
    let horizon = sim.world().spec.horizon();
    let events_fired = sim.events_fired();
    let boxed_events = sim.boxed_events_scheduled();

    let mut world = sim.into_world();
    let config = world.descriptor.name.clone();
    let cpu_utilization = world
        .net
        .topology()
        .node_ids()
        .map(|n| {
            (
                world.net.topology().node(n).name.clone(),
                world.net.cpu_utilization(n, horizon),
            )
        })
        .collect();

    let trace = if world.tracer.enabled() {
        let topology = world.net.topology();
        Some(TraceData {
            traces: world.tracer.take_finished(),
            node_names: topology
                .node_ids()
                .map(|n| topology.node(n).name.clone())
                .collect(),
            link_names: topology
                .link_ids()
                .map(|l| topology.link(l).name.clone())
                .collect(),
            group_names: world.spec.groups.iter().map(|g| g.name.clone()).collect(),
            db_node: world.descriptor.db_node.index() as u32,
            telemetry_names: world.telemetry.names().to_vec(),
            telemetry: world.telemetry.take_snapshots(),
        })
    } else {
        None
    };

    let metrics = world.metrics.take().map(|mut m| {
        m.flush_ev_counts(&mut world.ev_counts);
        MetricsData {
            recorder: m.rec,
            shard_profiles: Vec::new(),
        }
    });

    ExperimentReport {
        config,
        stats: world.stats,
        bind_totals: world.bind_totals,
        staleness_ms: world.staleness_ms,
        cpu_utilization,
        completed: world.completed,
        events_fired,
        boxed_events,
        bind_cache: BindCacheStats {
            enabled: world.plans.enabled,
            hits: world.plans.hits,
            misses: world.plans.misses,
            invalidations: world.plans.invalidations,
        },
        shard_events: Vec::new(),
        trace,
        metrics,
        adaptive: world.adaptive.take().map(Controller::into_data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{paper_groups, WorkloadSpec};
    use mutsvc_desim::time::SimDuration;
    use mutsvc_middleware::DescriptorBuilder;
    use mutsvc_netsim::TopologyBuilder;

    /// A small Pet Store experiment on a two-server topology.
    fn small_input(seed: u64) -> ExperimentInput {
        let (app, registry, db) = App::petstore(false);
        let mut tb = TopologyBuilder::new();
        let main = tb.node("main", 2);
        let dbn = tb.node("db", 2);
        let router = tb.node("router", 8);
        let edge = tb.node("edge1", 2);
        let lc = tb.node("client-local", 4);
        let rc = tb.node("client-remote", 4);
        let lan = SimDuration::from_micros(200);
        let wan = SimDuration::from_millis(100);
        tb.duplex_link(main, router, lan, 100e6);
        tb.duplex_link(dbn, router, lan, 100e6);
        tb.duplex_link(lc, router, lan, 100e6);
        tb.duplex_link(edge, router, wan, 100e6);
        tb.duplex_link(rc, edge, lan, 100e6);
        let topology = tb.finalize();

        let components = match &app {
            App::PetStore(ps) => ps.components,
            App::Rubis(_) => unreachable!(),
        };
        let mut b = DescriptorBuilder::new(&registry, "centralized", dbn);
        b.central_node(main);
        for c in components.all() {
            b.place(c, main);
        }
        let descriptor = b.build().unwrap();

        let mut groups = paper_groups((lc, main), (rc, main), (rc, main));
        groups.truncate(2); // local + one remote group keeps the test fast
        let spec = WorkloadSpec::paper_load(groups)
            .with_duration(SimDuration::from_secs(30), SimDuration::from_secs(120))
            .with_seed(seed);

        ExperimentInput {
            app,
            registry,
            db,
            descriptor,
            topology,
            protocols: ProtocolParams::petstore_stack(),
            container_costs: ContainerCosts::default(),
            spec,
        }
    }

    #[test]
    fn centralized_experiment_measures_the_wan_gap() {
        let report = run_experiment(small_input(7));
        assert!(report.completed > 1_000, "completed {}", report.completed);

        let local = report.stats.mean_ms("local", "Browser", "Item").unwrap();
        let remote = report.stats.mean_ms("remote1", "Browser", "Item").unwrap();
        assert!(
            remote - local > 350.0 && remote - local < 500.0,
            "local {local:.0}ms remote {remote:.0}ms"
        );

        // Offered load: 20 req/s over 120 s measured ≈ 2400 requests.
        let expected = 20.0 * 120.0;
        let ratio = report.completed as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn soft_delay_keeps_load_steady_despite_slow_responses() {
        // Even with every remote page costing ~500ms, the send rate stays
        // fixed because delays are soft (measured request count unchanged).
        let report = run_experiment(small_input(8));
        let sessions_expected = 56 + 14; // per group
        assert!(
            report.completed as f64 > 0.9 * 20.0 * 120.0,
            "{}",
            report.completed
        );
        let _ = sessions_expected;
    }

    #[test]
    fn experiments_are_deterministic_per_seed() {
        let a = run_experiment(small_input(9));
        let b = run_experiment(small_input(9));
        assert_eq!(a.completed, b.completed);
        assert_eq!(
            a.stats.mean_ms("local", "Browser", "Item"),
            b.stats.mean_ms("local", "Browser", "Item")
        );
        assert_eq!(a.bind_totals, b.bind_totals);
        let c = run_experiment(small_input(10));
        assert_ne!(
            a.stats.mean_ms("local", "Browser", "Item"),
            c.stats.mean_ms("local", "Browser", "Item")
        );
    }

    #[test]
    fn cpu_stays_in_the_papers_envelope() {
        let report = run_experiment(small_input(11));
        for (node, util) in &report.cpu_utilization {
            assert!(*util < 0.75, "{node} at {util:.2}");
        }
        // The main server does carry load.
        let main = report
            .cpu_utilization
            .iter()
            .find(|(n, _)| n == "main")
            .map(|(_, u)| *u)
            .unwrap();
        assert!(main > 0.05, "main util {main}");
    }

    #[test]
    fn wan_degradation_perturbation_slows_remote_clients() {
        let baseline = run_experiment(small_input(21));
        let mut degraded_input = small_input(21);
        // Double the WAN legs for the whole measured window.
        degraded_input.spec = degraded_input.spec.with_perturbation(
            SimDuration::from_secs(1),
            crate::spec::NetAction::ScaleWanLatency {
                threshold: SimDuration::from_millis(50),
                factor: 2.0,
            },
        );
        let degraded = run_experiment(degraded_input);
        let base = baseline
            .stats
            .mean_ms("remote1", "Browser", "Item")
            .unwrap();
        let slow = degraded
            .stats
            .mean_ms("remote1", "Browser", "Item")
            .unwrap();
        assert!(
            slow > base + 300.0,
            "degraded {slow:.0} vs baseline {base:.0}"
        );
        // Local clients are unaffected.
        let base_local = baseline.stats.mean_ms("local", "Browser", "Item").unwrap();
        let slow_local = degraded.stats.mean_ms("local", "Browser", "Item").unwrap();
        assert!((slow_local - base_local).abs() < 10.0);
    }

    #[test]
    fn restore_perturbation_heals_mid_run() {
        let mut input = small_input(22);
        let horizon = input.spec.horizon();
        input.spec = input
            .spec
            .with_perturbation(
                SimDuration::from_secs(1),
                crate::spec::NetAction::ScaleWanLatency {
                    threshold: SimDuration::from_millis(50),
                    factor: 3.0,
                },
            )
            .with_perturbation(
                (horizon - SimTime::ZERO) / 2,
                crate::spec::NetAction::Restore,
            );
        let healed = run_experiment(input);
        let baseline = run_experiment(small_input(22));
        let healed_mean = healed.stats.mean_ms("remote1", "Browser", "Item").unwrap();
        let base_mean = baseline
            .stats
            .mean_ms("remote1", "Browser", "Item")
            .unwrap();
        // Roughly half the window is degraded (+400ms): the mean sits
        // strictly between the healthy and fully-degraded levels.
        assert!(
            healed_mean > base_mean + 100.0,
            "{healed_mean:.0} vs {base_mean:.0}"
        );
        assert!(
            healed_mean < base_mean + 700.0,
            "{healed_mean:.0} vs {base_mean:.0}"
        );
    }

    #[test]
    fn buyer_pattern_is_measured_separately() {
        let report = run_experiment(small_input(12));
        assert!(report.stats.mean_ms("local", "Buyer", "Commit").is_some());
        assert!(report.stats.mean_ms("local", "Browser", "Commit").is_none());
        assert!(report.stats.session_summary("remote1", "Buyer").is_some());
    }

    #[test]
    fn bind_cache_reports_hits_and_matches_uncached_run() {
        let cached = run_experiment(small_input(30));
        assert!(cached.bind_cache.enabled);
        assert!(
            cached.bind_cache.hits > cached.bind_cache.misses,
            "steady-state reads should mostly hit: {:?}",
            cached.bind_cache
        );

        let mut input = small_input(30);
        input.spec.bind_cache = false;
        let uncached = run_experiment(input);
        assert!(!uncached.bind_cache.enabled);
        assert_eq!(uncached.bind_cache.hits, 0);

        // Bit-identical measurements either way.
        assert_eq!(cached.stats, uncached.stats);
        assert_eq!(cached.bind_totals, uncached.bind_totals);
        assert_eq!(cached.staleness_ms, uncached.staleness_ms);
        assert_eq!(cached.completed, uncached.completed);
        assert_eq!(cached.events_fired, uncached.events_fired);
    }

    #[test]
    fn hot_path_schedules_no_boxed_events() {
        // Thousands of requests, yet the only boxed event is the stats
        // reset: issue/advance/done are all typed enum payloads.
        let report = run_experiment(small_input(31));
        assert!(report.completed > 1_000);
        assert_eq!(
            report.boxed_events, 1,
            "boxed events: {}",
            report.boxed_events
        );
    }

    #[test]
    fn legacy_baseline_is_slower_bookkeeping_same_simulation() {
        // The pre-overhaul emulation must change only host-side cost: the
        // simulated measurements are bit-identical to a modern cache-off
        // run, but every event pays a boxed allocation.
        let mut modern_input = small_input(33);
        modern_input.spec.bind_cache = false;
        let modern = run_experiment(modern_input);

        let mut legacy_input = small_input(33);
        legacy_input.spec = legacy_input.spec.as_legacy_baseline();
        let legacy = run_experiment(legacy_input);

        assert!(!legacy.bind_cache.enabled);
        assert_eq!(legacy.stats, modern.stats);
        assert_eq!(legacy.bind_totals, modern.bind_totals);
        assert_eq!(legacy.staleness_ms, modern.staleness_ms);
        assert_eq!(legacy.completed, modern.completed);
        assert_eq!(legacy.events_fired, modern.events_fired);
        // Every typed event is boxed under emulation (plus the control
        // events both runs schedule).
        assert!(
            legacy.boxed_events >= legacy.events_fired,
            "boxed {} < fired {}",
            legacy.boxed_events,
            legacy.events_fired
        );
        assert!(modern.boxed_events <= 4);
    }

    #[test]
    fn traced_run_commits_spans_and_telemetry() {
        use crate::spec::TraceSettings;
        use crate::trace_report::page_breakdown;
        let mut input = small_input(40);
        input.spec = input.spec.with_trace(TraceSettings::full());
        let report = run_experiment(input);
        let data = report.trace.expect("tracing enabled");
        // Full tracing commits one trace per completed measured request.
        let measured = data.traces.iter().filter(|t| t.meta.measured).count() as u64;
        assert_eq!(measured, report.completed);
        // 150 s horizon at a 5 s cadence.
        assert_eq!(data.telemetry.len(), 30);
        assert!(data
            .telemetry_names
            .iter()
            .any(|n| n.starts_with("wan.") && n.ends_with(".bytes")));
        let last = data.telemetry.last().unwrap();
        let completed_idx = data
            .telemetry_names
            .iter()
            .position(|n| n == "requests.completed")
            .unwrap();
        assert!(last.values[completed_idx] > 0.0);

        // Critical-path attribution: the centralized config keeps every
        // crossing on the LAN (no logical WAN RTs), but remote clients ride
        // the WAN for the HTTP leg — one critical-path round trip and
        // ~200 ms of WAN propagation the local group doesn't pay.
        let rows = page_breakdown(&data);
        let find = |group: &str| {
            rows.iter()
                .find(|r| r.group == group && r.page == "Item")
                .unwrap()
        };
        let remote = find("remote1");
        let local = find("local");
        assert_eq!(remote.wan_rts_logical, 0.0);
        assert!(remote.wan_rts_critical >= 1.0, "{remote:?}");
        assert!(remote.wan_propagation_ms > 150.0, "{remote:?}");
        assert_eq!(local.wan_rts_critical, 0.0, "{local:?}");
        assert!(remote.mean_ms - local.mean_ms > 350.0);
        // The decomposition covers the response time it explains.
        let parts = remote.wan_propagation_ms
            + remote.serialization_ms
            + remote.queueing_ms
            + remote.service_ms
            + remote.db_ms
            + remote.delay_ms;
        assert!(
            (parts - remote.mean_ms).abs() < remote.mean_ms * 0.05,
            "parts {parts:.1} vs mean {:.1}",
            remote.mean_ms
        );
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        use crate::spec::TraceSettings;
        let plain = run_experiment(small_input(41));
        assert!(plain.trace.is_none());
        let mut traced_input = small_input(41);
        traced_input.spec = traced_input.spec.with_trace(TraceSettings::full());
        let traced = run_experiment(traced_input);
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(plain.bind_totals, traced.bind_totals);
        assert_eq!(plain.staleness_ms, traced.staleness_ms);
    }

    #[test]
    fn head_sampling_commits_a_fraction_plus_slow_outliers() {
        use crate::spec::TraceSettings;
        let mut full_input = small_input(42);
        full_input.spec = full_input.spec.with_trace(TraceSettings::full());
        let full = run_experiment(full_input);
        let mut sampled_input = small_input(42);
        sampled_input.spec = sampled_input.spec.with_trace(TraceSettings::sampled(10));
        let sampled = run_experiment(sampled_input);
        let n_full = full.trace.unwrap().traces.len();
        let n_sampled = sampled.trace.unwrap().traces.len();
        assert!(n_sampled < n_full / 5, "{n_sampled} vs {n_full}");
        assert!(n_sampled > n_full / 20, "{n_sampled} vs {n_full}");
    }

    #[test]
    fn span_logs_are_byte_identical_per_seed() {
        use crate::spec::TraceSettings;
        use crate::trace_report::jsonl;
        let run = |seed| {
            let mut input = small_input(seed);
            input.spec = input.spec.with_trace(TraceSettings::full());
            jsonl(&run_experiment(input).trace.unwrap())
        };
        let a = run(43);
        let b = run(43);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert_ne!(a, run(44));
    }

    #[test]
    fn writes_invalidate_cached_plans() {
        // Buyer commits write the inventory/orders tables; Item plans read
        // the item table (untouched), but any plan reading a written table
        // must drop. With the default mix the run must see invalidations
        // while still mostly hitting.
        let report = run_experiment(small_input(32));
        assert!(report.bind_cache.hits > 0);
        assert!(report.bind_cache.misses > 0, "writes must miss");
    }

    // ---- fault injection ---------------------------------------------------

    use crate::spec::{FaultPolicy, FaultSettings};
    use mutsvc_desim::fault::{FaultEvent, FaultKind, FaultSchedule};

    fn link_index(input: &ExperimentInput, name: &str) -> u32 {
        input
            .topology
            .link_ids()
            .find(|&l| input.topology.link(l).name == name)
            .unwrap_or_else(|| panic!("no link {name}"))
            .index() as u32
    }

    fn node_index(input: &ExperimentInput, name: &str) -> u32 {
        input.topology.node_by_name(name).expect(name).index() as u32
    }

    fn sec(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// The two directed WAN legs between edge1 and the router cut for
    /// `[down, up)` — the driver-test equivalent of a main-link partition.
    fn wan_partition(input: &ExperimentInput, down: u64, up: u64) -> FaultSchedule {
        let out = link_index(input, "edge1->router");
        let back = link_index(input, "router->edge1");
        FaultSchedule::scripted(vec![
            FaultEvent {
                at: sec(down),
                kind: FaultKind::LinkDown { link: out },
            },
            FaultEvent {
                at: sec(down),
                kind: FaultKind::LinkDown { link: back },
            },
            FaultEvent {
                at: sec(up),
                kind: FaultKind::LinkRestore { link: out },
            },
            FaultEvent {
                at: sec(up),
                kind: FaultKind::LinkRestore { link: back },
            },
        ])
    }

    /// Satellite (a): a configured-but-empty fault policy leaves stats,
    /// traces and telemetry byte-identical to a run without the subsystem.
    #[test]
    fn fault_off_runs_are_byte_identical() {
        use crate::spec::TraceSettings;
        use crate::trace_report::jsonl;
        let run = |with_policy: bool| {
            let mut input = small_input(51);
            input.spec = input.spec.with_trace(TraceSettings::full());
            if with_policy {
                // An armed policy and a non-default timeout — but no
                // scheduled episode — must change nothing.
                input.spec = input.spec.with_faults(FaultSettings {
                    schedule: FaultSchedule::none(),
                    timeout: SimDuration::from_millis(123),
                    policy: FaultPolicy::resilient(),
                });
            }
            run_experiment(input)
        };
        let plain = run(false);
        let armed = run(true);
        assert_eq!(plain.stats, armed.stats);
        assert_eq!(plain.completed, armed.completed);
        assert_eq!(plain.bind_totals, armed.bind_totals);
        assert_eq!(plain.events_fired, armed.events_fired);
        assert_eq!(plain.boxed_events, armed.boxed_events);
        let (pt, at) = (plain.trace.unwrap(), armed.trace.unwrap());
        assert_eq!(jsonl(&pt), jsonl(&at), "span logs byte-identical");
        assert_eq!(pt.telemetry_names, at.telemetry_names);
        assert_eq!(pt.telemetry, at.telemetry);
        assert!(
            !pt.telemetry_names.iter().any(|n| n.starts_with("fault.")),
            "fault gauges exist only on fault runs"
        );
    }

    #[test]
    fn wan_partition_fails_remote_requests_only() {
        use crate::spec::TraceSettings;
        use crate::trace_report::jsonl;
        let mut input = small_input(52);
        let schedule = wan_partition(&input, 60, 100);
        input.spec = input
            .spec
            .with_trace(TraceSettings::full())
            .with_faults(FaultSettings {
                schedule,
                timeout: sec(2),
                policy: FaultPolicy::none(),
            });
        let report = run_experiment(input);
        let local = report.stats.outcome("local").unwrap();
        let remote = report.stats.outcome("remote1").unwrap();
        assert_eq!(local.availability(), 1.0, "{local:?}");
        assert!(remote.failed > 0, "{remote:?}");
        // 40 s of a 120 s window dark, give or take requests in flight at
        // the boundaries.
        assert!(
            (0.5..0.9).contains(&remote.availability()),
            "remote availability {}",
            remote.availability()
        );
        let log = jsonl(&report.trace.unwrap());
        assert!(log.contains("\"kind\":\"fault\""), "fault spans exported");
        assert!(log.contains("\"link\":\"edge1->router\""));
    }

    #[test]
    fn retry_policy_rides_out_a_short_outage() {
        // A 5 s blip against an 8 s-capped backoff: with retries every
        // affected request eventually lands; without them each one dies.
        let run = |policy: FaultPolicy| {
            let mut input = small_input(53);
            let schedule = wan_partition(&input, 60, 65);
            input.spec = input.spec.with_faults(FaultSettings {
                schedule,
                timeout: sec(2),
                policy,
            });
            run_experiment(input)
        };
        let none = run(FaultPolicy::none());
        let retry = run(FaultPolicy {
            failover: false,
            stale_serve: false,
            ..FaultPolicy::resilient()
        });
        let n = none.stats.outcome("remote1").unwrap();
        let r = retry.stats.outcome("remote1").unwrap();
        assert!(n.failed > 0, "{n:?}");
        assert!(r.retries > 0, "{r:?}");
        assert!(
            r.availability() > n.availability(),
            "retry {} vs none {}",
            r.availability(),
            n.availability()
        );
        assert_eq!(r.availability(), 1.0, "{r:?}");
    }

    /// A Pet Store variant whose remote group enters through the edge server
    /// (remote-façade style web tier), so an edge crash has somewhere to
    /// fail over *from*.
    fn edge_entry_input(seed: u64) -> ExperimentInput {
        let mut input = small_input(seed);
        let (app, registry, db) = App::petstore(true);
        let components = match &app {
            App::PetStore(ps) => ps.components,
            App::Rubis(_) => unreachable!(),
        };
        let main = input.topology.node_by_name("main").unwrap();
        let dbn = input.topology.node_by_name("db").unwrap();
        let edge = input.topology.node_by_name("edge1").unwrap();
        let mut b = DescriptorBuilder::new(&registry, "facade", dbn);
        b.central_node(main);
        for c in components.all() {
            b.place(c, main);
        }
        for c in components.edge_session_components() {
            b.place_replicated(c, main, [edge]);
        }
        input.descriptor = b.build().unwrap();
        for g in &mut input.spec.groups {
            if g.name != "local" {
                g.entry_node = edge;
            }
        }
        input.app = app;
        input.registry = registry;
        input.db = db;
        input
    }

    #[test]
    fn entry_crash_fails_over_to_central_when_policy_allows() {
        let run = |failover: bool| {
            let mut input = edge_entry_input(54);
            let edge = node_index(&input, "edge1");
            input.spec = input.spec.with_faults(FaultSettings {
                schedule: FaultSchedule::scripted(vec![
                    FaultEvent {
                        at: sec(50),
                        kind: FaultKind::NodeCrash { node: edge },
                    },
                    FaultEvent {
                        at: sec(110),
                        kind: FaultKind::NodeRestart { node: edge },
                    },
                ]),
                timeout: sec(2),
                policy: FaultPolicy {
                    failover,
                    stale_serve: false,
                    max_retries: 0,
                    ..FaultPolicy::resilient()
                },
            });
            run_experiment(input)
        };
        let with = run(true);
        let without = run(false);
        let w = with.stats.outcome("remote1").unwrap();
        let wo = without.stats.outcome("remote1").unwrap();
        assert!(w.failovers > 0, "{w:?}");
        assert_eq!(wo.failovers, 0, "{wo:?}");
        // Failover keeps serving through the crash (the edge host still
        // forwards); without it the whole outage is dark.
        assert!(
            w.availability() > wo.availability() + 0.3,
            "with {} vs without {}",
            w.availability(),
            wo.availability()
        );
        assert_eq!(
            with.stats.outcome("local").unwrap().availability(),
            1.0,
            "local group never touches the edge"
        );
    }

    #[test]
    fn lossy_link_failures_are_recovered_by_retries() {
        let run = |policy: FaultPolicy| {
            let mut input = small_input(55);
            let out = link_index(&input, "edge1->router");
            input.spec = input.spec.with_faults(FaultSettings {
                schedule: FaultSchedule::scripted(vec![
                    FaultEvent {
                        at: sec(40),
                        kind: FaultKind::MsgLoss {
                            link: out,
                            probability: 0.02,
                        },
                    },
                    FaultEvent {
                        at: sec(120),
                        kind: FaultKind::MsgLoss {
                            link: out,
                            probability: 0.0,
                        },
                    },
                ]),
                timeout: sec(2),
                policy,
            });
            run_experiment(input)
        };
        let none = run(FaultPolicy::none());
        let retry = run(FaultPolicy {
            failover: false,
            stale_serve: false,
            ..FaultPolicy::resilient()
        });
        let n = none.stats.outcome("remote1").unwrap();
        let r = retry.stats.outcome("remote1").unwrap();
        assert!(n.failed > 0, "losses fail requests: {n:?}");
        assert!(r.retries > 0, "{r:?}");
        assert!(
            r.availability() > n.availability(),
            "retry {} vs none {}",
            r.availability(),
            n.availability()
        );
    }

    #[test]
    fn fault_runs_are_byte_identical_per_seed() {
        use crate::spec::TraceSettings;
        use crate::trace_report::jsonl;
        let run = || {
            let mut input = edge_entry_input(56);
            let edge = node_index(&input, "edge1");
            let schedule = FaultSchedule::scripted(vec![
                FaultEvent {
                    at: sec(45),
                    kind: FaultKind::NodeCrash { node: edge },
                },
                FaultEvent {
                    at: sec(80),
                    kind: FaultKind::NodeRestart { node: edge },
                },
            ]);
            input.spec = input
                .spec
                .with_trace(TraceSettings::full())
                .with_faults(FaultSettings {
                    schedule,
                    timeout: sec(2),
                    policy: FaultPolicy::resilient(),
                });
            run_experiment(input)
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events_fired, b.events_fired);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(jsonl(&ta), jsonl(&tb));
        assert_eq!(ta.telemetry, tb.telemetry);
        assert!(
            ta.telemetry_names.iter().any(|x| x == "fault.nodes_down"),
            "fault gauges registered on fault runs"
        );
    }

    /// Satellite: the armed-only registration rule, pinned per
    /// configuration — each optional gauge family appears iff its
    /// subsystem is active, and never otherwise.
    #[test]
    fn telemetry_registry_contents_follow_the_armed_subsystems() {
        use crate::spec::TraceSettings;
        let families = |names: &[String]| {
            (
                names.iter().any(|n| n.starts_with("fault.")),
                names.iter().any(|n| n.starts_with("shard.")),
            )
        };

        // Plain traced run: neither optional family.
        let mut input = small_input(57);
        input.spec = input.spec.with_trace(TraceSettings::full());
        let plain = run_experiment(input);
        let names = plain.trace.unwrap().telemetry_names;
        assert_eq!(families(&names), (false, false), "{names:?}");

        // Fault-armed run: exactly the fault family joins.
        let mut input = small_input(57);
        let schedule = wan_partition(&input, 60, 70);
        input.spec = input
            .spec
            .with_trace(TraceSettings::full())
            .with_faults(FaultSettings {
                schedule,
                timeout: sec(2),
                policy: FaultPolicy::none(),
            });
        let faulted = run_experiment(input);
        let names = faulted.trace.unwrap().telemetry_names;
        assert_eq!(families(&names), (true, false), "{names:?}");

        // Conservative-parallel shard replica: exactly the shard family.
        let mut input = small_input(57);
        input.spec = input.spec.with_trace(TraceSettings::full());
        let horizon = input.spec.horizon();
        let mut sim = build_sim(
            input,
            Some(ShardPlan {
                index: 0,
                members: vec![true, true],
            }),
        );
        sim.run_until(horizon);
        let sharded = drain_report(sim);
        let names = sharded.trace.unwrap().telemetry_names;
        assert_eq!(families(&names), (false, true), "{names:?}");
        assert!(names.iter().any(|n| n == "shard.outbound_pending"));
        assert!(names.iter().any(|n| n == "shard.notes_received"));
    }

    // ---- windowed metrics --------------------------------------------------

    use crate::spec::MetricsSettings;

    #[test]
    fn metrics_do_not_perturb_the_simulation() {
        use crate::spec::TraceSettings;
        use crate::trace_report::jsonl;
        let run = |metrics: bool| {
            let mut input = small_input(58);
            input.spec = input.spec.with_trace(TraceSettings::full());
            if metrics {
                input.spec = input
                    .spec
                    .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(5)));
            }
            run_experiment(input)
        };
        let off = run(false);
        let on = run(true);
        assert!(off.metrics.is_none());
        assert!(on.metrics.is_some());
        assert_eq!(off.stats, on.stats);
        assert_eq!(off.completed, on.completed);
        assert_eq!(off.bind_totals, on.bind_totals);
        assert_eq!(off.staleness_ms, on.staleness_ms);
        let (to, tn) = (off.trace.unwrap(), on.trace.unwrap());
        assert_eq!(jsonl(&to), jsonl(&tn), "span logs byte-identical");
        assert_eq!(to.telemetry_names, tn.telemetry_names);
        // Every telemetry series is *exactly* identical, including the
        // engine queue occupancy gauges: the recorder's roll event rides the
        // internal side queue, which the depth gauges exclude — the observer
        // never observes itself.
        for (a, b) in to.telemetry.iter().zip(&tn.telemetry) {
            assert_eq!(a.at, b.at);
            for ((x, y), name) in a.values.iter().zip(&b.values).zip(&to.telemetry_names) {
                assert_eq!(x, y, "{name}");
            }
        }
    }

    #[test]
    fn metrics_runs_are_identical_per_seed() {
        let run = || {
            let mut input = small_input(61);
            input.spec = input
                .spec
                .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(5)));
            run_experiment(input)
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn metrics_windows_cover_the_run_and_count_every_request() {
        let mut input = small_input(59);
        input.spec = input
            .spec
            .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(5)));
        let report = run_experiment(input);
        let m = report.metrics.expect("metrics armed");
        let rec = &m.recorder;
        assert!(m.shard_profiles.is_empty(), "sequential run");
        // 150 s horizon at a 5 s window: 30 complete windows.
        assert_eq!(rec.rows().len(), 30);
        // Every completed measured request lands in requests.ok…
        let ok = rec.counter_index("requests.ok").unwrap();
        let total_ok: u64 = rec.rows().iter().map(|r| r.counters[ok]).sum();
        assert_eq!(total_ok, report.completed);
        // …and in exactly one page histogram.
        let hist_total: u64 = rec
            .rows()
            .iter()
            .flat_map(|r| r.hists.iter())
            .map(|h| h.total())
            .sum();
        assert_eq!(hist_total, report.completed);
        // The engine self-profile saw at least one Done per completion and
        // exactly one roll per window.
        let done = rec.counter_index("engine.ev.done").unwrap();
        let dones: u64 = rec.rows().iter().map(|r| r.counters[done]).sum();
        assert!(dones >= report.completed, "{dones}");
        let rolls = rec.counter_index("engine.ev.metrics_roll").unwrap();
        for row in rec.rows() {
            assert_eq!(row.counters[rolls], 1, "window {}", row.index);
        }
        // WAN series carried traffic, and the RTT gauge reads the leg's
        // round trip (100 ms each way, no degradation).
        let msgs = rec.counter_index("wan.edge1->router.msgs").unwrap();
        let wan_msgs: u64 = rec.rows().iter().map(|r| r.counters[msgs]).sum();
        assert!(wan_msgs > 0);
        let rtt = rec.gauge_index("wan.edge1->router.rtt_ms").unwrap();
        assert_eq!(rec.rows().last().unwrap().gauges[rtt], 200.0);
    }

    /// The tentpole end-to-end: a PR 5 fault episode drives the SLO burn
    /// rate over threshold, the engine stamps breach and recovery windows,
    /// and the final verdict reflects the outage.
    #[test]
    fn slo_burn_rate_flags_a_wan_partition_and_recovers() {
        use crate::slo::{evaluate, SloEventKind, SloSpec};
        let mut input = small_input(60);
        let schedule = wan_partition(&input, 60, 100);
        input.spec = input
            .spec
            .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(10)))
            .with_faults(FaultSettings {
                schedule,
                timeout: sec(2),
                policy: FaultPolicy::none(),
            });
        let report = run_experiment(input);
        let m = report.metrics.unwrap();

        let slo = SloSpec::new().with_availability(0.999);
        let out = evaluate(&slo, &m.recorder);
        let v = &out.verdicts[0];
        assert!(!v.met, "a 40 s partition must blow 99.9% availability");
        assert!(v.max_burn > 1.0, "max burn {}", v.max_burn);
        let breach = out
            .events
            .iter()
            .find(|e| e.kind == SloEventKind::Breach)
            .expect("breach event");
        let recovery = out
            .events
            .iter()
            .find(|e| e.kind == SloEventKind::Recovery)
            .expect("recovery event");
        assert_eq!(breach.window, 6, "partition starts at 60 s");
        assert!(recovery.window > breach.window);
        assert!(recovery.window <= 12, "heals at 100 s: {}", recovery.window);

        // A latency objective the healthy pages meet easily stays clean.
        let generous = SloSpec::new().page("Item", 10_000.0, 0.5);
        let clean = evaluate(&generous, &m.recorder);
        assert!(clean.all_met());
        assert!(clean.events.is_empty());
    }

    // ---- adaptive placement ------------------------------------------------

    use crate::spec::AdaptiveSettings;

    /// [`edge_entry_input`] with the session tier centralized: only the web
    /// facade is replicated at the edge (the runtime requires the root
    /// component on every entry node, matching its Entry role's
    /// origin-pricing in the model). `ShoppingClientController` and
    /// `ShoppingCart` sit at main — the adaptation the controller can win
    /// by replicating them out when observed conditions drift.
    fn adaptive_input(seed: u64) -> ExperimentInput {
        let mut input = edge_entry_input(seed);
        let (app, registry, db) = App::petstore(true);
        let components = match &app {
            App::PetStore(ps) => ps.components,
            App::Rubis(_) => unreachable!(),
        };
        let main = input.topology.node_by_name("main").unwrap();
        let dbn = input.topology.node_by_name("db").unwrap();
        let edge = input.topology.node_by_name("edge1").unwrap();
        let mut b = DescriptorBuilder::new(&registry, "central-sessions", dbn);
        b.central_node(main);
        for c in components.all() {
            b.place(c, main);
        }
        b.place_replicated(components.web, main, [edge]);
        input.descriptor = b.build().unwrap();
        input.app = app;
        input.registry = registry;
        input.db = db;
        input
    }

    /// Degrades both directed legs of the edge WAN link by `factor` at 40 s.
    fn degrade_edge_link(input: &ExperimentInput, factor: f64) -> FaultSchedule {
        let out = link_index(input, "edge1->router");
        let back = link_index(input, "router->edge1");
        FaultSchedule::scripted(vec![
            FaultEvent {
                at: sec(40),
                kind: FaultKind::LinkDegraded { link: out, factor },
            },
            FaultEvent {
                at: sec(40),
                kind: FaultKind::LinkDegraded { link: back, factor },
            },
        ])
    }

    /// The PR's acceptance scenario at driver scale: a mid-run link
    /// degradation octuples the edge WAN latency; the controller observes
    /// the repriced link through telemetry, migrates work, and the remote
    /// group's response times land strictly better than the frozen
    /// deployment's.
    #[test]
    fn adaptive_controller_migrates_and_helps_under_link_degradation() {
        let run = |adaptive: bool| {
            let mut input = adaptive_input(62);
            let schedule = degrade_edge_link(&input, 8.0);
            input.spec = input
                .spec
                .with_metrics(MetricsSettings::windowed(sec(5)))
                .with_faults(FaultSettings {
                    schedule,
                    timeout: sec(30),
                    policy: FaultPolicy::none(),
                });
            if adaptive {
                input.spec = input.spec.with_adaptive(AdaptiveSettings::every(sec(10)));
            }
            run_experiment(input)
        };
        let on = run(true);
        let off = run(false);

        assert!(off.adaptive.is_none(), "controller-off leaves no log");
        let data = on.adaptive.as_ref().expect("controller-on logs decisions");
        assert!(
            !data.migrations.is_empty(),
            "an 8x degraded edge link must trigger migrations: {data:?}"
        );
        assert!(
            data.rounds
                .iter()
                .all(|r| r.cost_after <= r.cost_before + 1e-6),
            "rounds never commit cost regressions: {:?}",
            data.rounds
        );
        let first = data
            .migrations
            .first()
            .expect("at least one migration logged");
        assert!(first.decided_at >= SimTime::ZERO + sec(40), "{first:?}");
        assert!(first.modeled_gain > 0.0, "{first:?}");

        // The win shows at the session level (pages mix chatty
        // web->controller exchanges, which localize, with entity fetches,
        // which still cross the WAN).
        let on_remote = on
            .stats
            .session_mean_over_groups(&["remote1"], "Browser")
            .unwrap();
        let off_remote = off
            .stats
            .session_mean_over_groups(&["remote1"], "Browser")
            .unwrap();
        assert!(
            on_remote < off_remote,
            "migrating the session tier to the edge clients must beat the \
             frozen deployment: on {on_remote:.0}ms vs off {off_remote:.0}ms"
        );
        assert!(
            on.stats.outcome("remote1").unwrap().availability()
                >= off.stats.outcome("remote1").unwrap().availability(),
            "migration must not cost availability"
        );
    }

    /// Same-seed adaptive runs are byte-identical: span logs, telemetry,
    /// and the controller's own decision log all replay exactly.
    #[test]
    fn adaptive_runs_are_identical_per_seed() {
        use crate::spec::TraceSettings;
        use crate::trace_report::jsonl;
        let run = || {
            let mut input = adaptive_input(64);
            let schedule = degrade_edge_link(&input, 8.0);
            input.spec = input
                .spec
                .with_trace(TraceSettings::full())
                .with_metrics(MetricsSettings::windowed(sec(5)))
                .with_faults(FaultSettings {
                    schedule,
                    timeout: sec(30),
                    policy: FaultPolicy::none(),
                })
                .with_adaptive(AdaptiveSettings::every(sec(10)));
            run_experiment(input)
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events_fired, b.events_fired);
        assert_eq!(a.adaptive, b.adaptive);
        assert!(!a.adaptive.as_ref().unwrap().migrations.is_empty());
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(jsonl(&ta), jsonl(&tb));
        assert_eq!(ta.telemetry, tb.telemetry);
    }

    /// Without observed drift the controller holds still: the drift floor
    /// separates "the static model disagrees with the deployed descriptor"
    /// (the offline search's business) from "the network changed under us",
    /// so a quiescent adaptive run is indistinguishable from a frozen one.
    #[test]
    fn adaptive_controller_stays_quiescent_without_observed_drift() {
        let run = |adaptive: bool| {
            let mut input = adaptive_input(63);
            input.spec = input.spec.with_metrics(MetricsSettings::windowed(sec(5)));
            if adaptive {
                input.spec = input.spec.with_adaptive(AdaptiveSettings::every(sec(10)));
            }
            run_experiment(input)
        };
        let on = run(true);
        let off = run(false);
        let data = on.adaptive.as_ref().expect("controller armed");
        assert!(
            data.migrations.is_empty(),
            "no observed drift, no migrations: {:?}",
            data.migrations
        );
        assert!(
            data.rounds.len() >= 10,
            "cost trajectory still recorded: {} rounds",
            data.rounds.len()
        );
        assert_eq!(on.stats, off.stats, "a silent controller is invisible");
        assert_eq!(on.completed, off.completed);
    }
}
