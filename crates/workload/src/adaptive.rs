//! Closed-loop adaptive placement: telemetry in, migrations out.
//!
//! The paper's deployment descriptors are chosen *offline* against a static
//! cost model. This module closes the loop at run time: the controller
//! subscribes to the engine's windowed telemetry (per-link WAN round trips,
//! per-page response histograms — see the metrics pipeline in the driver),
//! re-prices the placement problem with the *observed* link latencies via
//! [`reprice_matrix`], and runs a bounded incremental delta-cost search
//! ([`CostEvaluator`]) over single-component `MovePrimary` moves. Moves that
//! clear a hysteresis threshold become typed migration orders the driver
//! turns into mid-run component moves (state transfer over the WAN, cold
//! caches at the destination — the fault machinery's crash/restart
//! semantics, reused).
//!
//! Determinism: a controller round is a pure function of the observed
//! telemetry rows and the controller's own committed history — no RNG, no
//! wall clock, and iteration in (component, host) index order with
//! strict-improvement tie-breaks. Sequential runs drive rounds from an
//! internal tick event; parallel runs drive them from the conservative
//! engine's window barriers (see `parallel::AdaptiveCoordinator`), so
//! same-seed runs stay byte-identical at any thread count.

use mutsvc_middleware::{ComponentId, ComponentRegistry, DeploymentDescriptor};
use mutsvc_netsim::{NodeId, Topology};
use mutsvc_placement::derive::{petstore_problem, rubis_problem};
use mutsvc_placement::wan::{host_matrix, reprice_matrix};
use mutsvc_placement::{CostEvaluator, HostId, Move, NodeIndex, Placement, PlacementProblem, Role};

use mutsvc_apps::App;
use mutsvc_desim::time::SimTime;

use crate::spec::WorkloadSpec;

/// What the controller sees at one decision point: the freshest closed
/// telemetry window, reduced to the model's inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveObs {
    /// Observed one-way latency (ms) per directed topology link, `None`
    /// where telemetry tracks no series for the link (sub-WAN links fall
    /// back to their static latency when re-pricing).
    pub one_way_ms: Vec<Option<f64>>,
    /// Telemetry windows closed so far.
    pub windows: u64,
    /// Median response time (ms) pooled over every page histogram in the
    /// freshest window (0 when the window saw no completions). Logged for
    /// the cost trajectory; decisions use link and demand observations.
    pub p50_ms: f64,
    /// Cumulative issued requests per client group (aligned with
    /// `spec.groups`) over every closed window — the offered-demand signal
    /// that lets the controller reweight entry shares when a flash crowd
    /// shifts traffic between sites.
    pub group_issued: Vec<u64>,
}

/// The runtime shape of one migration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Re-home the component's primary at `to` (a replica already there is
    /// absorbed).
    Primary,
    /// Add a read-only replica at `to`; the primary stays put.
    Replica,
}

/// One migration the controller ordered for `component`, transferring state
/// from `from` to `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationOrder {
    /// The runtime component to move.
    pub component: ComponentId,
    /// Its registry name (for logs and reports).
    pub name: String,
    /// Primary re-homing or replica addition.
    pub kind: MoveKind,
    /// The node the state transfer leaves from (the current primary).
    pub from: NodeId,
    /// The node gaining the primary or replica.
    pub to: NodeId,
    /// Modeled steady-state cost reduction (ms/s of aggregate waiting).
    pub modeled_gain: f64,
}

/// One controller decision point, committed moves or not.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Simulated decision time.
    pub at: SimTime,
    /// Telemetry windows observed by this round.
    pub windows: u64,
    /// Modeled cost (ms/s) under observed latencies before the round's moves.
    pub cost_before: f64,
    /// Modeled cost after the round's committed moves.
    pub cost_after: f64,
    /// Observed pooled median response time (ms) in the freshest window.
    pub observed_p50_ms: f64,
    /// Moves committed this round.
    pub moves: u32,
}

/// One committed migration, as logged.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// When the controller decided the move (transfer delay comes on top).
    pub decided_at: SimTime,
    /// Component name.
    pub component: String,
    /// Primary re-homing or replica addition.
    pub kind: MoveKind,
    /// Source node name.
    pub from: String,
    /// Destination node name.
    pub to: String,
    /// Modeled steady-state gain (ms/s).
    pub modeled_gain: f64,
}

/// The controller's full decision log, attached to the experiment report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptiveData {
    /// Every decision point, in time order.
    pub rounds: Vec<RoundRecord>,
    /// Every committed migration, in decision order.
    pub migrations: Vec<MigrationRecord>,
}

/// The live-migration controller.
///
/// Holds the placement model (the paper's derived component graph, rehosted
/// onto the run's candidate nodes), a mirror of the current placement, and
/// per-component cooldown state. [`round`](Controller::round) is the only
/// entry point; it never touches simulation state.
#[derive(Debug)]
pub struct Controller {
    cadence_active: bool,
    budget_per_round: u32,
    hysteresis_pct: f64,
    cooldown: mutsvc_desim::time::SimDuration,
    topology: Topology,
    problem: PlacementProblem,
    /// `HostId` index → topology node backing that host.
    hosts: Vec<NodeId>,
    /// Graph node → runtime component (None for pseudo-components such as
    /// the database, or model components absent from this run's registry).
    node_component: Vec<Option<ComponentId>>,
    /// Unpinned, non-Entry graph nodes with a runtime counterpart, in index
    /// order. (Entry-role components are priced at the origin by the model
    /// — the runtime mirrors this by requiring the web facade on every
    /// entry node — so moving them is meaningless.)
    movable: Vec<NodeIndex>,
    /// Client group index → candidate-host index of its entry node.
    group_host: Vec<usize>,
    /// Mirror of the descriptor-level placement, in model terms.
    placement: Placement,
    /// Per graph node: no further moves before this time.
    cooldown_until: Vec<SimTime>,
    /// The best single-move gain under *static* pricing at construction:
    /// the static model's disagreement with the deployed descriptor. Moves
    /// must beat this floor (with margin), so the controller corrects
    /// *observed drift* only — re-optimizing a freshly deployed system
    /// under nominal conditions is the offline search's job, not the
    /// control loop's.
    drift_floor: f64,
    data: AdaptiveData,
}

/// The margin a move's gain must clear over the construction-time drift
/// floor before the controller treats it as observed drift rather than
/// static modeling disagreement.
const DRIFT_MARGIN: f64 = 1.25;

/// Best single move — primary re-homing or replica addition — over
/// `(component, host, kind)` in index order (strict `<` keeps ties
/// deterministic); `delta < 0` is an improvement. Replica drops are left to
/// the offline search: they never pay mid-run in our episodes and halve the
/// runtime surface the driver must support.
fn best_move(
    eval: &mut CostEvaluator,
    movable: &[NodeIndex],
    hosts: usize,
    cooldown_until: &[SimTime],
    now: SimTime,
) -> Option<(Move, f64)> {
    let mut best: Option<(Move, f64)> = None;
    let consider = |mv: Move, delta: f64, best: &mut Option<(Move, f64)>| {
        if delta < best.map_or(f64::INFINITY, |(_, d)| d) {
            *best = Some((mv, delta));
        }
    };
    for &node in movable {
        if cooldown_until[node.index()] > now {
            continue;
        }
        let from = eval.primary_of(node);
        for h in 0..hosts {
            let to = HostId(h);
            if to == from {
                continue;
            }
            let mv = Move::MovePrimary { node, to };
            let delta = eval.apply(mv);
            eval.undo();
            consider(mv, delta, &mut best);
            if !eval.placement().replicas[node.index()].contains(&to) {
                let mv = Move::AddReplica { node, host: to };
                let delta = eval.apply(mv);
                eval.undo();
                consider(mv, delta, &mut best);
            }
        }
    }
    best
}

impl Controller {
    /// Builds the controller for a run: derives the application's placement
    /// problem (the same §5 derivation the offline search uses), re-hosts it
    /// onto the run's candidate nodes, and mirrors the descriptor's current
    /// placement into model terms.
    ///
    /// Candidate hosts are the descriptor's central node plus every node
    /// already hosting a primary or replica and every client group's entry
    /// node — the nodes the deployment actually spans. Entry shares follow
    /// the groups' offered request rates.
    ///
    /// Model components are matched to the run's registry *by name*;
    /// pseudo-components (the database) and names absent from this run stay
    /// pinned to the central host and are never moved.
    pub fn new(
        app: &App,
        registry: &ComponentRegistry,
        descriptor: &DeploymentDescriptor,
        topology: &Topology,
        spec: &WorkloadSpec,
    ) -> Controller {
        let template = match app {
            App::PetStore(_) => petstore_problem().0,
            App::Rubis(_) => rubis_problem().0,
        };

        // Candidate hosts: central first (model pins reference HostId(0)),
        // then every deployed/entry node in ascending node-index order.
        let mut hosts = vec![descriptor.central_node];
        let mut tail: Vec<NodeId> = Vec::new();
        let note = |n: NodeId, tail: &mut Vec<NodeId>| {
            if n != descriptor.central_node && !tail.contains(&n) {
                tail.push(n);
            }
        };
        for placement in descriptor.placements.values() {
            note(placement.primary, &mut tail);
            for &r in &placement.replicas {
                note(r, &mut tail);
            }
        }
        for group in &spec.groups {
            note(group.entry_node, &mut tail);
        }
        tail.sort_by_key(|n| n.index());
        hosts.extend(tail);

        // Entry shares follow each group's share of the offered load.
        let total_rate: f64 = spec
            .groups
            .iter()
            .map(|g| g.browser_rate + g.transactional_rate)
            .sum();
        let mut shares = vec![0.0; hosts.len()];
        if total_rate > 0.0 {
            for group in &spec.groups {
                let h = hosts
                    .iter()
                    .position(|&n| n == group.entry_node)
                    .expect("entry node is a candidate host");
                shares[h] += (group.browser_rate + group.transactional_rate) / total_rate;
            }
        } else {
            shares[0] = 1.0;
        }
        let host_list: Vec<mutsvc_placement::Host> = hosts
            .iter()
            .zip(&shares)
            .map(|(&n, &share)| mutsvc_placement::Host {
                name: topology.node(n).name.clone(),
                entry_share: share,
                cpu_capacity: f64::INFINITY,
            })
            .collect();
        let matrix = host_matrix(topology, &hosts);
        let problem = mutsvc_placement::wan::rehost(&template, host_list, matrix);

        // Match model components to the run's registry by name and mirror
        // the descriptor's placement; unmatched or pinned nodes sit at the
        // central host, immobile.
        let host_of =
            |n: NodeId| -> Option<HostId> { hosts.iter().position(|&h| h == n).map(HostId) };
        let n_nodes = problem.graph.len();
        let mut node_component = vec![None; n_nodes];
        let mut movable = Vec::new();
        let mut placement = Placement::all_on(&problem, HostId(0));
        for node in problem.graph.graph.node_indices() {
            let model = &problem.graph.graph[node];
            let Some(component) = registry.by_name(&model.name) else {
                continue;
            };
            let Some(deployed) = descriptor.placements.get(&component) else {
                continue;
            };
            node_component[node.index()] = Some(component);
            if model.pinned.is_none() && model.role != Role::Entry {
                movable.push(node);
            }
            if let Some(h) = host_of(deployed.primary) {
                placement.primary[node.index()] = h;
            }
            for &replica in &deployed.replicas {
                if let Some(h) = host_of(replica) {
                    placement.replicas[node.index()].insert(h);
                }
            }
            let primary = placement.primary[node.index()];
            placement.replicas[node.index()].remove(&primary);
        }
        placement.repair_pins(&problem);

        // The static model rarely agrees *exactly* with the deployed
        // descriptor; measure that disagreement once so rounds can tell it
        // apart from observed drift.
        let zero_cool = vec![SimTime::ZERO; n_nodes];
        let mut probe = CostEvaluator::new(&problem, placement.clone());
        let drift_floor = best_move(
            &mut probe,
            &movable,
            problem.hosts.len(),
            &zero_cool,
            SimTime::ZERO,
        )
        .map_or(0.0, |(_, delta)| (-delta).max(0.0));

        let group_host = spec
            .groups
            .iter()
            .map(|g| {
                hosts
                    .iter()
                    .position(|&n| n == g.entry_node)
                    .expect("entry node is a candidate host")
            })
            .collect();

        Controller {
            cadence_active: spec.adaptive.active(),
            budget_per_round: spec.adaptive.budget_per_round,
            hysteresis_pct: spec.adaptive.hysteresis_pct,
            cooldown: spec.adaptive.cooldown,
            topology: topology.clone(),
            problem,
            hosts,
            node_component,
            movable,
            group_host,
            placement,
            cooldown_until: vec![SimTime::ZERO; n_nodes],
            drift_floor,
            data: AdaptiveData::default(),
        }
    }

    /// Whether the controller can ever act.
    pub fn active(&self) -> bool {
        self.cadence_active && self.budget_per_round > 0
    }

    /// Re-weights the model's entry shares from the cumulative demand
    /// observed so far. A flash crowd at one site shifts its share of the
    /// offered load, which re-prices every origin-weighted interaction
    /// exactly like a latency change does. Cumulative (not windowed) counts
    /// keep the estimate smooth: per-window binomial noise on a few hundred
    /// requests would swing shares enough to defeat the drift floor.
    /// Rounds that observed no requests keep the current weights.
    fn reweight_entry_shares(&mut self, obs: &AdaptiveObs) {
        if obs.group_issued.len() != self.group_host.len() {
            return;
        }
        let mut by_host = vec![0u64; self.problem.hosts.len()];
        let mut total = 0u64;
        for (g, &count) in obs.group_issued.iter().enumerate() {
            by_host[self.group_host[g]] += count;
            total += count;
        }
        if total == 0 {
            return;
        }
        for (host, &count) in self.problem.hosts.iter_mut().zip(&by_host) {
            host.entry_share = count as f64 / total as f64;
        }
    }

    /// One decision round at simulated time `now`: re-price the model with
    /// the observed link latencies, then greedily commit up to
    /// `budget_per_round` single-primary moves whose modeled gain clears
    /// both `hysteresis_pct` of the current total cost and the
    /// construction-time drift floor. Components keep a cooldown after
    /// moving so the loop cannot thrash a component back and forth between
    /// windows.
    pub fn round(&mut self, now: SimTime, obs: &AdaptiveObs) -> Vec<MigrationOrder> {
        self.problem.rtt_ms = reprice_matrix(&self.topology, &self.hosts, &obs.one_way_ms);
        self.reweight_entry_shares(obs);
        let mut eval = CostEvaluator::new(&self.problem, self.placement.clone());
        let cost_before = eval.total();
        let mut orders: Vec<MigrationOrder> = Vec::new();

        for _ in 0..self.budget_per_round {
            let current_total = eval.total();
            let gate = (self.hysteresis_pct * current_total.abs().max(1e-9))
                .max(self.drift_floor * DRIFT_MARGIN);
            let best = best_move(
                &mut eval,
                &self.movable,
                self.problem.hosts.len(),
                &self.cooldown_until,
                now,
            );
            let Some((mv, delta)) = best else { break };
            if -delta < gate {
                break;
            }
            let (node, to, kind) = match mv {
                Move::MovePrimary { node, to } => (node, to, MoveKind::Primary),
                Move::AddReplica { node, host } => (node, host, MoveKind::Replica),
                Move::DropReplica { .. } => unreachable!("drops are never searched"),
            };
            let from = eval.primary_of(node);
            eval.apply(mv);
            eval.commit();
            self.cooldown_until[node.index()] = now + self.cooldown;
            let name = self.problem.graph.graph[node].name.clone();
            self.data.migrations.push(MigrationRecord {
                decided_at: now,
                component: name.clone(),
                kind,
                from: self.problem.hosts[from.0].name.clone(),
                to: self.problem.hosts[to.0].name.clone(),
                modeled_gain: -delta,
            });
            orders.push(MigrationOrder {
                component: self.node_component[node.index()]
                    .expect("movable nodes map to runtime components"),
                name,
                kind,
                from: self.hosts[from.0],
                to: self.hosts[to.0],
                modeled_gain: -delta,
            });
        }

        self.placement = eval.placement().clone();
        self.data.rounds.push(RoundRecord {
            at: now,
            windows: obs.windows,
            cost_before,
            cost_after: eval.total(),
            observed_p50_ms: obs.p50_ms,
            moves: orders.len() as u32,
        });
        orders
    }

    /// Consumes the controller, yielding its decision log.
    pub fn into_data(self) -> AdaptiveData {
        self.data
    }

    /// The decision log so far.
    pub fn data(&self) -> &AdaptiveData {
        &self.data
    }
}
