//! # mutsvc-workload — client simulation and experiment driving
//!
//! Reproduces the paper's measurement methodology (§3.3):
//!
//! * client groups co-located with their application servers,
//!   10 requests/s per group, 80 % browsers / 20 % buyers-bidders;
//! * **soft delays**: a session sends its next request a fixed interval
//!   after the previous *send*, so the offered load is independent of
//!   response times;
//! * a warm-up window excluded from statistics, then a measured window;
//! * per-page statistics split by client group and usage pattern — exactly
//!   the axes of Tables 6/7 and Figures 7/8.
//!
//! [`driver::run_experiment`] wires an application, a deployment descriptor
//! and a topology into a deterministic discrete-event run;
//! [`parallel::run_experiment_parallel`] runs the same experiment sharded
//! by client region under conservative synchronization (DESIGN.md §6.5),
//! byte-identical at every thread count.
//!
//! With [`spec::MetricsSettings`] armed, a run additionally rolls a
//! windowed metrics [`recorder`](mutsvc_desim::recorder) — per-page
//! response-time histograms, request outcome counters, per-WAN-link
//! traffic, and engine self-profile series — which [`slo::evaluate`]
//! grades against an [`slo::SloSpec`] via window burn rates (DESIGN.md
//! §6.7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod driver;
pub mod parallel;
pub mod slo;
pub mod spec;
pub mod stats;
pub mod trace_report;

pub use adaptive::{
    AdaptiveData, AdaptiveObs, Controller, MigrationOrder, MigrationRecord, MoveKind, RoundRecord,
};
pub use driver::{run_experiment, ExperimentInput, ExperimentReport, MetricsData, ShardProfile};
pub use parallel::run_experiment_parallel;
pub use slo::{evaluate, SloEvent, SloEventKind, SloObjective, SloReport, SloSpec, SloVerdict};
pub use spec::{
    paper_groups, AdaptiveSettings, ClientGroup, FaultPolicy, FaultSettings, MetricsSettings,
    NetAction, Perturbation, Surge, TraceSettings, WorkloadSpec,
};
pub use stats::{GroupOutcome, SeriesKey, WorkloadStats};
pub use trace_report::{chrome_trace_json, jsonl, page_breakdown, PageTraceRow, TraceData};
