//! Conservative-parallel experiment driving (DESIGN.md §6.5).
//!
//! [`run_experiment_parallel`] shards one experiment by *client region* —
//! the LAN-connected components of the topology — and runs the shards on
//! OS threads under conservative synchronization: every shard may safely
//! advance one *lookahead* window (the minimum WAN leg latency) past the
//! last barrier, because nothing a remote shard does can reach it sooner
//! than a WAN crossing.
//!
//! # Decomposition
//!
//! Each shard owns the client groups whose client node lives in its
//! region and simulates them against a full replica of the world (network,
//! database, container state). Requests from a region's sessions still
//! traverse the shared topology to the central servers, so WAN response
//! times, CPU load on the central nodes, and per-group statistics are
//! produced exactly as in a sequential run of that region's load.
//!
//! The one cross-shard interaction modeled explicitly is *bind-cache
//! invalidation*: a shard whose session writes tables posts a note that
//! reaches every other shard one WAN path later and bumps the affected
//! table generations there, forcing memoized plans to re-bind — the same
//! effect a remote write has in a sequential run. What the replica scheme
//! approximates away is cross-region *contention*: shard A's requests do
//! not queue behind shard B's on the shared central CPUs, and remote
//! writes do not mutate a shard's database replica. In the provisioned
//! regime the benchmarks run (central CPUs well below saturation) the
//! contention term is negligible; the approximation is documented, not
//! hidden.
//!
//! # Determinism
//!
//! The decomposition (regions), the per-shard RNG streams
//! ([`stream::shard`](mutsvc_desim::rng::stream::shard)), the window
//! structure, and the canonical cross-shard delivery order are all
//! functions of the input alone — never of the thread count. A run at 8
//! threads is byte-identical to a run at 1: same span logs, same fault
//! tables, same statistics.

use mutsvc_desim::sim::Simulation;
use mutsvc_desim::time::{SimDuration, SimTime};
use mutsvc_desim::{run_conservative, run_coordinated, Coordinator, Outbox, ShardWorld};
use mutsvc_netsim::NodeId;
use mutsvc_relstore::TableId;

use crate::adaptive::{AdaptiveObs, Controller, MigrationOrder};
use crate::driver::{
    build_sim, drain_report, Ev, ExperimentInput, ExperimentReport, ShardPlan, ShardProfile, World,
};

/// One shard of a conservative-parallel run: a full driver simulation over
/// the shard's own client groups, plus the note delays to every peer.
struct ExperimentShard {
    sim: Simulation<World, Ev>,
    index: usize,
    /// One-way note latency to each destination shard (full shortest-path
    /// latency between region representatives; `>=` the engine lookahead,
    /// since every inter-region path crosses a WAN leg).
    delays: Vec<SimDuration>,
    /// Lookahead windows advanced through (self-profile).
    windows: u64,
    /// Windows that fired no events (self-profile).
    stalled: u64,
}

impl ShardWorld for ExperimentShard {
    type Msg = Vec<TableId>;
    type Out = ExperimentReport;

    fn deliver(&mut self, at: SimTime, _from: usize, msg: Vec<TableId>) {
        let idx = self.sim.world_mut().shard_note(msg);
        self.sim.schedule_event_at(at, Ev::ShardNote { idx });
    }

    fn advance(&mut self, upto: SimTime, closing: bool, outbox: &mut Outbox<Vec<TableId>>) {
        let fired_before = self.sim.events_fired();
        if closing {
            self.sim.run_until(upto);
        } else {
            self.sim.run_before(upto);
        }
        self.windows += 1;
        if self.sim.events_fired() == fired_before {
            self.stalled += 1;
        }
        for (at, tables) in self.sim.world_mut().shard_take_outbound() {
            for (dest, &delay) in self.delays.iter().enumerate() {
                if dest != self.index {
                    outbox.send(dest, at + delay, tables.clone());
                }
            }
        }
    }

    fn finish(self) -> ExperimentReport {
        let (index, windows, stalled) = (self.index, self.windows, self.stalled);
        let mut report = drain_report(self.sim);
        if let Some(m) = &mut report.metrics {
            m.shard_profiles.push(ShardProfile {
                shard: index as u32,
                windows,
                stalled,
                events: report.events_fired,
            });
        }
        report
    }
}

/// The conservative-parallel home of the live-migration controller: one
/// [`Controller`] driven from the engine's window barriers instead of the
/// sequential driver's internal tick event.
///
/// Each coordination round is a pure function of simulated history — every
/// shard observes (WAN rtt gauges sample replicated network state; demand
/// counters are summed across shards, since each group issues only in its
/// owning shard), the leader runs one decision round when the cadence is
/// due, and the resulting orders are applied to *every* shard replica,
/// which prices the same state transfer and flips the same descriptor
/// primary. Thread count changes nothing.
struct AdaptiveCoordinator {
    controller: Controller,
    cadence: SimDuration,
    /// The next decision time; rounds fire at the first window boundary at
    /// or past each cadence multiple beyond warm-up.
    next_round: SimTime,
}

impl Coordinator<ExperimentShard> for AdaptiveCoordinator {
    type Obs = AdaptiveObs;
    type Directive = Vec<MigrationOrder>;

    fn observe(
        &mut self,
        _index: usize,
        shard: &mut ExperimentShard,
        window_end: SimTime,
    ) -> Option<AdaptiveObs> {
        if window_end < self.next_round {
            return None;
        }
        // Every shard reports: the WAN gauges are replicated (identical in
        // each shard), but the demand counters are real only in the shard
        // that owns the issuing group, so the fleet view is their sum.
        shard.sim.world().adaptive_observation()
    }

    fn decide(
        &mut self,
        window_end: SimTime,
        obs: Vec<(usize, AdaptiveObs)>,
    ) -> Option<Vec<MigrationOrder>> {
        if window_end < self.next_round {
            return None;
        }
        while self.next_round <= window_end {
            self.next_round += self.cadence;
        }
        // No closed telemetry window yet: nothing to act on this round.
        let mut obs = obs;
        obs.sort_by_key(|&(index, _)| index);
        let mut iter = obs.into_iter();
        let (_, mut merged) = iter.next()?;
        for (_, o) in iter {
            for (acc, n) in merged.group_issued.iter_mut().zip(&o.group_issued) {
                *acc += n;
            }
        }
        let orders = self.controller.round(window_end, &merged);
        (!orders.is_empty()).then_some(orders)
    }

    fn apply(
        &mut self,
        _index: usize,
        shard: &mut ExperimentShard,
        window_end: SimTime,
        orders: &Vec<MigrationOrder>,
    ) {
        for order in orders {
            let (arrival, slot) = shard.sim.world_mut().commit_migration(window_end, order);
            shard.sim.schedule_event_at(arrival, Ev::Migrate { slot });
        }
    }
}

/// How a topology and workload decompose into shards: one shard per client
/// region, in ascending region order.
struct Decomposition {
    /// Per shard: which client groups it owns.
    members: Vec<Vec<bool>>,
    /// Per shard: its region's representative (lowest-index) node.
    reps: Vec<NodeId>,
}

fn decompose(input: &ExperimentInput) -> Decomposition {
    let regions = input.topology.regions();
    // Distinct client regions, ascending. Region ids are already dense and
    // ordered by lowest member, so this ordering is a pure function of the
    // topology.
    let mut shard_regions: Vec<usize> = input
        .spec
        .groups
        .iter()
        .map(|g| regions[g.client_node.index()])
        .collect();
    shard_regions.sort_unstable();
    shard_regions.dedup();

    let members = shard_regions
        .iter()
        .map(|&r| {
            input
                .spec
                .groups
                .iter()
                .map(|g| regions[g.client_node.index()] == r)
                .collect()
        })
        .collect();
    let reps = shard_regions
        .iter()
        .map(|&r| {
            input
                .topology
                .node_ids()
                .find(|n| regions[n.index()] == r)
                .expect("region has a member")
        })
        .collect();
    Decomposition { members, reps }
}

/// Runs one experiment sharded by client region on up to `threads` OS
/// threads, returning the deterministically merged report.
///
/// The merged report is byte-identical at every `threads` value (the
/// decomposition and schedule depend only on the input); its
/// [`shard_events`](ExperimentReport::shard_events) field records each
/// shard's event count in shard order. Note that a parallel run is *not*
/// byte-identical to [`run_experiment`](crate::driver::run_experiment) —
/// shards draw from per-shard RNG streams — but reproduces the same
/// workload distributions per seed.
///
/// # Panics
///
/// Panics if the spec has no client groups, or if the topology puts client
/// groups in more than one region without any WAN link to derive the
/// lookahead from (impossible for connected topologies).
pub fn run_experiment_parallel(input: ExperimentInput, threads: usize) -> ExperimentReport {
    let d = decompose(&input);
    let shard_count = d.members.len();
    assert!(shard_count > 0, "no client groups to shard");

    let min_wan = input.topology.min_wan_latency();
    if shard_count > 1 {
        assert!(
            min_wan.is_some(),
            "multiple client regions but no WAN link for lookahead"
        );
    }
    // Single-shard runs have no cross-shard traffic; any window width is
    // safe, and 500 ms keeps the window overhead negligible.
    let lookahead = min_wan.unwrap_or(SimDuration::from_millis(500));
    let horizon = input.spec.horizon();

    // Note delays: full shortest-path latency between region
    // representatives. Every inter-region path crosses at least one WAN
    // leg, so each delay is >= the lookahead — the conservative contract
    // the engine asserts per send.
    let delays: Vec<Vec<SimDuration>> = (0..shard_count)
        .map(|s| {
            (0..shard_count)
                .map(|t| {
                    if s == t {
                        SimDuration::ZERO
                    } else {
                        input.topology.path_latency(d.reps[s], d.reps[t])
                    }
                })
                .collect()
        })
        .collect();

    let factory = |index: usize| ExperimentShard {
        sim: build_sim(
            input.clone(),
            Some(ShardPlan {
                index,
                members: d.members[index].clone(),
            }),
        ),
        index,
        delays: delays[index].clone(),
        windows: 0,
        stalled: 0,
    };
    if input.spec.adaptive.active() {
        // Closed-loop run: the controller rides the window barriers. The
        // adaptive-off path below is the exact pre-adaptive engine
        // (`run_conservative` is `run_coordinated` with the statically
        // inert coordinator), so arming adaptive is the only way to reach
        // this branch.
        let cadence = input.spec.adaptive.cadence;
        let coordinator = AdaptiveCoordinator {
            controller: Controller::new(
                &input.app,
                &input.registry,
                &input.descriptor,
                &input.topology,
                &input.spec,
            ),
            cadence,
            // First round one cadence past warm-up, matching the
            // sequential driver: ramp windows are not acted on.
            next_round: SimTime::ZERO + input.spec.warmup + cadence,
        };
        let (reports, coordinator) = run_coordinated(
            shard_count,
            threads,
            lookahead,
            horizon,
            factory,
            coordinator,
        );
        let mut merged = merge_reports(reports);
        merged.adaptive = Some(coordinator.controller.into_data());
        merged
    } else {
        merge_reports(run_conservative(
            shard_count,
            threads,
            lookahead,
            horizon,
            factory,
        ))
    }
}

/// Reduces per-shard reports into one, in ascending shard order: summaries
/// and outcomes merge by key, counters sum, traces concatenate, telemetry
/// snapshots and metrics windows sum pointwise, shard self-profiles
/// concatenate. Gauge-style series (queue depths, fault link counts)
/// therefore read as *sums over shard replicas* in a merged report.
fn merge_reports(reports: Vec<ExperimentReport>) -> ExperimentReport {
    let shard_events: Vec<u64> = reports.iter().map(|r| r.events_fired).collect();
    let mut iter = reports.into_iter();
    let mut total = iter.next().expect("at least one shard report");
    for r in iter {
        assert_eq!(total.config, r.config, "shards run one configuration");
        total.stats.merge(&r.stats);
        total.bind_totals.merge(&r.bind_totals);
        total.staleness_ms.merge(&r.staleness_ms);
        for (acc, (name, util)) in total.cpu_utilization.iter_mut().zip(&r.cpu_utilization) {
            assert_eq!(&acc.0, name, "shards share one topology");
            acc.1 += util;
        }
        total.completed += r.completed;
        total.events_fired += r.events_fired;
        total.boxed_events += r.boxed_events;
        total.bind_cache.enabled |= r.bind_cache.enabled;
        total.bind_cache.hits += r.bind_cache.hits;
        total.bind_cache.misses += r.bind_cache.misses;
        total.bind_cache.invalidations += r.bind_cache.invalidations;
        match (&mut total.trace, r.trace) {
            (Some(t), Some(o)) => {
                t.traces.extend(o.traces);
                assert_eq!(t.telemetry_names, o.telemetry_names);
                assert_eq!(t.telemetry.len(), o.telemetry.len());
                for (a, b) in t.telemetry.iter_mut().zip(o.telemetry) {
                    assert_eq!(a.at, b.at, "snapshot cadences align");
                    for (x, y) in a.values.iter_mut().zip(b.values) {
                        *x += y;
                    }
                }
            }
            (None, None) => {}
            _ => unreachable!("every shard runs the same trace settings"),
        }
        match (&mut total.metrics, r.metrics) {
            (Some(a), Some(b)) => {
                a.recorder.merge(&b.recorder);
                a.shard_profiles.extend(b.shard_profiles);
            }
            (None, None) => {}
            _ => unreachable!("every shard runs the same metrics settings"),
        }
        // Sharded worlds never own a controller — the coordinator does, and
        // `run_experiment_parallel` attaches its log after the merge.
        debug_assert!(r.adaptive.is_none(), "shard worlds do not run controllers");
    }
    total.shard_events = shard_events;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_experiment;
    use crate::spec::{paper_groups, TraceSettings, WorkloadSpec};
    use crate::trace_report::jsonl;
    use mutsvc_apps::App;
    use mutsvc_middleware::{ContainerCosts, DescriptorBuilder};
    use mutsvc_netsim::{ProtocolParams, TopologyBuilder};

    /// A Pet Store experiment over three client regions: a local group on
    /// the server LAN and two groups behind their own WAN edges.
    fn three_region_input(seed: u64) -> ExperimentInput {
        let (app, registry, db) = App::petstore(false);
        let mut tb = TopologyBuilder::new();
        let main = tb.node("main", 2);
        let dbn = tb.node("db", 2);
        let router = tb.node("router", 8);
        let edge1 = tb.node("edge1", 2);
        let edge2 = tb.node("edge2", 2);
        let lc = tb.node("client-local", 4);
        let rc1 = tb.node("client-remote1", 4);
        let rc2 = tb.node("client-remote2", 4);
        let lan = SimDuration::from_micros(200);
        tb.duplex_link(main, router, lan, 100e6);
        tb.duplex_link(dbn, router, lan, 100e6);
        tb.duplex_link(lc, router, lan, 100e6);
        tb.duplex_link(edge1, router, SimDuration::from_millis(100), 100e6);
        tb.duplex_link(edge2, router, SimDuration::from_millis(150), 100e6);
        tb.duplex_link(rc1, edge1, lan, 100e6);
        tb.duplex_link(rc2, edge2, lan, 100e6);
        let topology = tb.finalize();

        let components = match &app {
            App::PetStore(ps) => ps.components,
            App::Rubis(_) => unreachable!(),
        };
        let mut b = DescriptorBuilder::new(&registry, "centralized", dbn);
        b.central_node(main);
        for c in components.all() {
            b.place(c, main);
        }
        let descriptor = b.build().unwrap();

        let groups = paper_groups((lc, main), (rc1, main), (rc2, main));
        let spec = WorkloadSpec::paper_load(groups)
            .with_duration(SimDuration::from_secs(10), SimDuration::from_secs(60))
            .with_seed(seed);

        ExperimentInput {
            app,
            registry,
            db,
            descriptor,
            topology,
            protocols: ProtocolParams::petstore_stack(),
            container_costs: ContainerCosts::default(),
            spec,
        }
    }

    #[test]
    fn thread_count_is_invisible_in_the_merged_report() {
        let run = |threads| {
            let mut input = three_region_input(71);
            input.spec = input.spec.with_trace(TraceSettings::full());
            run_experiment_parallel(input, threads)
        };
        let one = run(1);
        assert_eq!(one.shard_events.len(), 3, "one shard per client region");
        assert!(one.completed > 500, "completed {}", one.completed);
        let log = jsonl(one.trace.as_ref().unwrap());
        for threads in [2, 4, 8] {
            let r = run(threads);
            assert_eq!(one.stats, r.stats);
            assert_eq!(one.completed, r.completed);
            assert_eq!(one.bind_totals, r.bind_totals);
            assert_eq!(one.staleness_ms, r.staleness_ms);
            assert_eq!(one.events_fired, r.events_fired);
            assert_eq!(one.shard_events, r.shard_events);
            assert_eq!(one.bind_cache, r.bind_cache);
            assert_eq!(one.cpu_utilization, r.cpu_utilization);
            assert_eq!(
                log,
                jsonl(r.trace.as_ref().unwrap()),
                "span log byte-identical at {threads} threads"
            );
            assert_eq!(
                one.trace.as_ref().unwrap().telemetry,
                r.trace.unwrap().telemetry
            );
        }
    }

    #[test]
    fn shards_cover_the_whole_offered_load() {
        let report = run_experiment_parallel(three_region_input(72), 4);
        // Three groups at 10 req/s over a 60 s measured window.
        let expected = 30.0 * 60.0;
        let ratio = report.completed as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
        // Every shard simulated real work.
        assert_eq!(report.shard_events.len(), 3);
        for (i, &n) in report.shard_events.iter().enumerate() {
            assert!(n > 1_000, "shard {i} fired only {n} events");
        }
        assert_eq!(report.events_fired, report.shard_events.iter().sum::<u64>());
        // Per-group series all present, and remote groups pay the WAN.
        let local = report.stats.mean_ms("local", "Browser", "Item").unwrap();
        let r1 = report.stats.mean_ms("remote1", "Browser", "Item").unwrap();
        let r2 = report.stats.mean_ms("remote2", "Browser", "Item").unwrap();
        assert!(r1 - local > 350.0, "local {local:.0} remote1 {r1:.0}");
        assert!(r2 > r1, "the farther edge is slower: {r1:.0} vs {r2:.0}");
    }

    #[test]
    fn parallel_run_matches_sequential_distributions() {
        // Not byte-identical (per-shard RNG streams), but the same model:
        // means per series agree within a few percent.
        let seq = run_experiment(three_region_input(73));
        let par = run_experiment_parallel(three_region_input(73), 4);
        for (group, pattern, page) in [("local", "Browser", "Item"), ("remote1", "Browser", "Item")]
        {
            let s = seq.stats.mean_ms(group, pattern, page).unwrap();
            let p = par.stats.mean_ms(group, pattern, page).unwrap();
            assert!(
                (s - p).abs() / s < 0.05,
                "{group}/{pattern}/{page}: sequential {s:.1}ms parallel {p:.1}ms"
            );
        }
        let ratio = par.completed as f64 / seq.completed as f64;
        assert!((0.95..1.05).contains(&ratio), "completed ratio {ratio}");
    }

    #[test]
    fn cross_shard_notes_invalidate_remote_plans() {
        let report = run_experiment_parallel(three_region_input(74), 2);
        assert!(report.bind_cache.enabled);
        assert!(report.bind_cache.hits > 0);
        // Buyer commits in any shard invalidate reader plans in all of
        // them, so invalidations exceed what any one shard's own writes
        // would produce; at minimum they must occur at all.
        assert!(report.bind_cache.invalidations > 0);
    }

    #[test]
    fn single_region_collapses_to_one_shard() {
        let mut input = three_region_input(75);
        // Only the local group remains: one client region, one shard.
        input.spec.groups.truncate(1);
        let report = run_experiment_parallel(input, 8);
        assert_eq!(report.shard_events.len(), 1);
        assert!(report.completed > 300, "completed {}", report.completed);
    }

    #[test]
    fn metrics_merge_identically_at_any_thread_count() {
        use crate::spec::MetricsSettings;
        let run = |threads| {
            let mut input = three_region_input(77);
            input.spec = input
                .spec
                .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(5)));
            run_experiment_parallel(input, threads)
        };
        let one = run(1);
        let m1 = one.metrics.as_ref().expect("metrics armed");
        assert_eq!(m1.shard_profiles.len(), 3, "one profile per shard");
        for p in &m1.shard_profiles {
            assert!(p.windows > 0, "{p:?}");
            assert!(p.events > 1_000, "{p:?}");
            assert!((0.0..=1.0).contains(&p.utilization()), "{p:?}");
        }
        // 70 s horizon at a 5 s window: 14 complete windows per shard,
        // merged pointwise.
        assert_eq!(m1.recorder.rows().len(), 14);
        let ok = m1.recorder.counter_index("requests.ok").unwrap();
        let total_ok: u64 = m1.recorder.rows().iter().map(|r| r.counters[ok]).sum();
        assert_eq!(total_ok, one.completed);
        for threads in [2, 8] {
            let r = run(threads);
            assert_eq!(one.metrics, r.metrics, "at {threads} threads");
        }
    }

    /// Three regions with *edge entries*: remote groups enter at their own
    /// edge pop, the web facade is replicated there (binding requires it),
    /// and the session tier is centralized — the adaptable surface.
    fn edge_entry_three_region_input(seed: u64) -> ExperimentInput {
        let mut input = three_region_input(seed);
        let node = |name: &str| {
            input
                .topology
                .node_ids()
                .find(|&n| input.topology.node(n).name == name)
                .unwrap()
        };
        let (main, dbn) = (node("main"), node("db"));
        let (edge1, edge2) = (node("edge1"), node("edge2"));
        input.spec.groups[1].entry_node = edge1;
        input.spec.groups[2].entry_node = edge2;
        let components = match &input.app {
            App::PetStore(ps) => ps.components,
            App::Rubis(_) => unreachable!(),
        };
        let mut b = DescriptorBuilder::new(&input.registry, "central-sessions", dbn);
        b.central_node(main);
        for c in components.all() {
            b.place(c, main);
        }
        b.place_replicated(components.web, main, [edge1, edge2]);
        input.descriptor = b.build().unwrap();
        input
    }

    #[test]
    fn adaptive_migration_schedules_are_thread_count_invariant() {
        use crate::spec::{AdaptiveSettings, FaultPolicy, FaultSettings, MetricsSettings};
        use mutsvc_desim::fault::{FaultEvent, FaultKind, FaultSchedule};
        let run = |threads| {
            let mut input = edge_entry_three_region_input(78);
            let link = |name: &str| {
                input
                    .topology
                    .link_ids()
                    .find(|&l| input.topology.link(l).name == name)
                    .unwrap()
                    .index() as u32
            };
            let events = vec![
                FaultEvent {
                    at: SimDuration::from_secs(20),
                    kind: FaultKind::LinkDegraded {
                        link: link("edge1->router"),
                        factor: 8.0,
                    },
                },
                FaultEvent {
                    at: SimDuration::from_secs(20),
                    kind: FaultKind::LinkDegraded {
                        link: link("router->edge1"),
                        factor: 8.0,
                    },
                },
            ];
            input.spec = input
                .spec
                .with_trace(TraceSettings::full())
                .with_metrics(MetricsSettings::windowed(SimDuration::from_secs(5)))
                .with_faults(FaultSettings {
                    schedule: FaultSchedule::scripted(events),
                    timeout: SimDuration::from_secs(30),
                    policy: FaultPolicy::none(),
                })
                .with_adaptive(AdaptiveSettings::every(SimDuration::from_secs(10)));
            run_experiment_parallel(input, threads)
        };
        let one = run(1);
        let data = one.adaptive.as_ref().expect("controller log attached");
        assert!(
            !data.migrations.is_empty(),
            "degrading the edge WAN must trigger a migration"
        );
        assert!(data.rounds.len() >= 5, "rounds {}", data.rounds.len());
        let log = jsonl(one.trace.as_ref().unwrap());
        for threads in [2, 4, 8] {
            let r = run(threads);
            assert_eq!(one.adaptive, r.adaptive, "schedule at {threads} threads");
            assert_eq!(one.stats, r.stats);
            assert_eq!(one.completed, r.completed);
            assert_eq!(one.events_fired, r.events_fired);
            assert_eq!(
                log,
                jsonl(r.trace.as_ref().unwrap()),
                "span log byte-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn fault_episodes_replay_identically_at_any_thread_count() {
        use crate::spec::{FaultPolicy, FaultSettings};
        use mutsvc_desim::fault::{FaultEvent, FaultKind, FaultSchedule};
        let run = |threads| {
            let mut input = three_region_input(76);
            let out = input
                .topology
                .link_ids()
                .find(|&l| input.topology.link(l).name == "edge1->router")
                .unwrap()
                .index() as u32;
            let back = input
                .topology
                .link_ids()
                .find(|&l| input.topology.link(l).name == "router->edge1")
                .unwrap()
                .index() as u32;
            input.spec = input
                .spec
                .with_trace(TraceSettings::full())
                .with_faults(FaultSettings {
                    schedule: FaultSchedule::scripted(vec![
                        FaultEvent {
                            at: SimDuration::from_secs(20),
                            kind: FaultKind::LinkDown { link: out },
                        },
                        FaultEvent {
                            at: SimDuration::from_secs(20),
                            kind: FaultKind::LinkDown { link: back },
                        },
                        FaultEvent {
                            at: SimDuration::from_secs(40),
                            kind: FaultKind::LinkRestore { link: out },
                        },
                        FaultEvent {
                            at: SimDuration::from_secs(40),
                            kind: FaultKind::LinkRestore { link: back },
                        },
                    ]),
                    timeout: SimDuration::from_secs(2),
                    policy: FaultPolicy::none(),
                });
            run_experiment_parallel(input, threads)
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events_fired, b.events_fired);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(jsonl(&ta), jsonl(&tb));
        assert_eq!(ta.telemetry, tb.telemetry);
        // The partition actually bit: only the partitioned group failed.
        let r1 = a.stats.outcome("remote1").unwrap();
        assert!(r1.failed > 0, "{r1:?}");
        assert_eq!(a.stats.outcome("local").unwrap().availability(), 1.0);
        assert_eq!(a.stats.outcome("remote2").unwrap().availability(), 1.0);
    }
}
