//! Measurement collection: per-page and per-session-pattern response times,
//! keyed the way the paper's Tables 6/7 and Figures 7/8 report them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mutsvc_desim::metrics::{Histogram, Summary};
use mutsvc_desim::time::SimDuration;

/// Identifies one measured series: client group × usage pattern × page.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Client group name ("local", "remote1", "remote2").
    pub group: String,
    /// Usage pattern ("Browser", "Buyer", "Bidder").
    pub pattern: String,
    /// Page label ("Item", "Commit", …).
    pub page: String,
}

/// Per-client-group request outcomes under fault injection: the inputs for
/// availability, goodput and error-rate reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupOutcome {
    /// Measured requests that completed successfully.
    pub ok: u64,
    /// Measured requests that failed (timeouts exhausted, or stale reads
    /// rejected by a strict policy).
    pub failed: u64,
    /// Retry attempts spent on measured requests.
    pub retries: u64,
    /// Requests re-targeted from a crashed entry to the central server.
    pub failovers: u64,
    /// Successful reads answered from a partitioned edge cache (a subset
    /// of `ok`; each recorded its staleness bound).
    pub stale_served: u64,
}

impl GroupOutcome {
    /// Fraction of measured requests that succeeded (1.0 when idle).
    pub fn availability(&self) -> f64 {
        let total = self.ok + self.failed;
        if total == 0 {
            1.0
        } else {
            self.ok as f64 / total as f64
        }
    }

    /// Fraction of measured requests that failed.
    pub fn error_rate(&self) -> f64 {
        1.0 - self.availability()
    }

    /// Successful requests per second over `window` — the goodput the
    /// group actually received (offered load minus failures).
    pub fn goodput(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            self.ok as f64 / window.as_secs_f64()
        }
    }

    /// Folds another group's outcome in (for whole-run aggregates).
    pub fn merge(&mut self, other: &GroupOutcome) {
        self.ok += other.ok;
        self.failed += other.failed;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.stale_served += other.stale_served;
    }
}

/// Upper bound of the staleness histogram (ms); partitions are minutes
/// long, so the CDF must resolve well past the episode length.
const STALENESS_LIMIT_MS: f64 = 600_000.0;
const STALENESS_BUCKETS: usize = 600;

/// Collected response-time statistics for one experiment run.
///
/// Internally series are *interned*: the string-keyed maps hold dense
/// indices into `Vec<Summary>` storage, so the driver's hot path records
/// measurements through [`WorkloadStats::record_ids`] without allocating
/// (the string-keyed [`WorkloadStats::record`] remains as a convenience).
/// Request outcomes (availability/error accounting under faults) are
/// interned the same way through [`WorkloadStats::intern_group`].
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    series_index: BTreeMap<SeriesKey, u32>,
    series_data: Vec<Summary>,
    /// Aggregate per (group, pattern) — the Figures 7/8 session averages.
    session_index: BTreeMap<(String, String), u32>,
    session_data: Vec<Summary>,
    requests: u64,
    outcome_index: BTreeMap<String, u32>,
    outcome_data: Vec<GroupOutcome>,
    /// Staleness bounds (ms) of stale-served responses, across all groups.
    staleness: Histogram,
}

impl Default for WorkloadStats {
    fn default() -> Self {
        WorkloadStats {
            series_index: BTreeMap::new(),
            series_data: Vec::new(),
            session_index: BTreeMap::new(),
            session_data: Vec::new(),
            requests: 0,
            outcome_index: BTreeMap::new(),
            outcome_data: Vec::new(),
            staleness: Histogram::new(STALENESS_LIMIT_MS, STALENESS_BUCKETS),
        }
    }
}

impl WorkloadStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one (group, pattern, page) series and its (group, pattern)
    /// session aggregate, returning `(series_id, session_id)` for use with
    /// [`Self::record_ids`]. Idempotent; intended for setup time.
    pub fn intern(&mut self, group: &str, pattern: &str, page: &str) -> (u32, u32) {
        let series_id = match self.series_index.entry(SeriesKey {
            group: group.to_string(),
            pattern: pattern.to_string(),
            page: page.to_string(),
        }) {
            std::collections::btree_map::Entry::Occupied(e) => *e.get(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let id = self.series_data.len() as u32;
                self.series_data.push(Summary::default());
                *e.insert(id)
            }
        };
        let session_id = match self
            .session_index
            .entry((group.to_string(), pattern.to_string()))
        {
            std::collections::btree_map::Entry::Occupied(e) => *e.get(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let id = self.session_data.len() as u32;
                self.session_data.push(Summary::default());
                *e.insert(id)
            }
        };
        (series_id, session_id)
    }

    /// Records one completed page request against pre-interned ids
    /// (allocation-free; the driver's steady-state path).
    ///
    /// # Panics
    ///
    /// Panics if either id did not come from [`Self::intern`].
    pub fn record_ids(&mut self, series_id: u32, session_id: u32, response: SimDuration) {
        self.requests += 1;
        self.series_data[series_id as usize].record_duration(response);
        self.session_data[session_id as usize].record_duration(response);
    }

    /// Records one completed page request.
    pub fn record(&mut self, group: &str, pattern: &str, page: &str, response: SimDuration) {
        let (series_id, session_id) = self.intern(group, pattern, page);
        self.record_ids(series_id, session_id, response);
    }

    /// Total requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    // ---- request outcomes (availability under faults) -----------------------

    /// Interns one client group's outcome slot, returning its id for the
    /// `*_id` recording methods. Idempotent; intended for setup time.
    pub fn intern_group(&mut self, group: &str) -> u32 {
        match self.outcome_index.entry(group.to_string()) {
            std::collections::btree_map::Entry::Occupied(e) => *e.get(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let id = self.outcome_data.len() as u32;
                self.outcome_data.push(GroupOutcome::default());
                *e.insert(id)
            }
        }
    }

    /// Records one measured request outcome (allocation-free).
    pub fn record_outcome_id(&mut self, group_id: u32, ok: bool) {
        let o = &mut self.outcome_data[group_id as usize];
        if ok {
            o.ok += 1;
        } else {
            o.failed += 1;
        }
    }

    /// Records one retry attempt of a measured request.
    pub fn record_retry_id(&mut self, group_id: u32) {
        self.outcome_data[group_id as usize].retries += 1;
    }

    /// Records one entry failover of a measured request.
    pub fn record_failover_id(&mut self, group_id: u32) {
        self.outcome_data[group_id as usize].failovers += 1;
    }

    /// Records a stale-served read and its staleness bound. Counts toward
    /// neither `ok` nor `failed` by itself — the caller also records the
    /// outcome.
    pub fn record_stale_serve_id(&mut self, group_id: u32, staleness_ms: f64) {
        self.outcome_data[group_id as usize].stale_served += 1;
        self.staleness.record(staleness_ms);
    }

    /// One group's request outcomes, if interned.
    pub fn outcome(&self, group: &str) -> Option<&GroupOutcome> {
        self.outcome_index
            .get(group)
            .map(|&i| &self.outcome_data[i as usize])
    }

    /// Iterates every group's outcomes, sorted by group name.
    pub fn outcomes(&self) -> impl Iterator<Item = (&str, &GroupOutcome)> {
        self.outcome_index
            .iter()
            .map(|(k, &i)| (k.as_str(), &self.outcome_data[i as usize]))
    }

    /// Whole-run outcome aggregate.
    pub fn total_outcome(&self) -> GroupOutcome {
        let mut total = GroupOutcome::default();
        for o in &self.outcome_data {
            total.merge(o);
        }
        total
    }

    /// The staleness CDF of stale-served responses (ms).
    pub fn staleness_histogram(&self) -> &Histogram {
        &self.staleness
    }

    /// The summary of one series, if measured.
    pub fn series(&self, group: &str, pattern: &str, page: &str) -> Option<&Summary> {
        self.series_index
            .get(&SeriesKey {
                group: group.to_string(),
                pattern: pattern.to_string(),
                page: page.to_string(),
            })
            .map(|&i| &self.series_data[i as usize])
    }

    /// Mean response time of one series in milliseconds (`None` if unmeasured).
    pub fn mean_ms(&self, group: &str, pattern: &str, page: &str) -> Option<f64> {
        self.series(group, pattern, page).map(Summary::mean)
    }

    /// Mean response time of a page aggregated over several groups (e.g. the
    /// paper's single "remote" column covering both edge client groups).
    pub fn mean_ms_over_groups(&self, groups: &[&str], pattern: &str, page: &str) -> Option<f64> {
        mutsvc_desim::metrics::weighted_mean(
            groups
                .iter()
                .filter_map(|g| self.series(g, pattern, page))
                .map(|s| (s.mean(), s.count())),
        )
    }

    /// The session-average summary of a (group, pattern) — Figures 7/8 bars.
    pub fn session_summary(&self, group: &str, pattern: &str) -> Option<&Summary> {
        self.session_index
            .get(&(group.to_string(), pattern.to_string()))
            .map(|&i| &self.session_data[i as usize])
    }

    /// Session-average response time over several groups.
    pub fn session_mean_over_groups(&self, groups: &[&str], pattern: &str) -> Option<f64> {
        mutsvc_desim::metrics::weighted_mean(
            groups
                .iter()
                .filter_map(|g| self.session_summary(g, pattern))
                .map(|s| (s.mean(), s.count())),
        )
    }

    /// Iterates every series, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = (&SeriesKey, &Summary)> {
        self.series_index
            .iter()
            .map(|(k, &i)| (k, &self.series_data[i as usize]))
    }

    /// Folds another run's measurements in, matching series, session
    /// aggregates and group outcomes *by key* (so the two collections may
    /// have interned in any order) and summing the staleness histogram.
    ///
    /// This is the reduce step of a conservative-parallel run (DESIGN.md
    /// §6.5): each shard measures its own client groups, and the merged
    /// collection is identical whichever shard order produced it — merging
    /// is applied in ascending shard index, which is fixed by the topology,
    /// so thread count never changes the result.
    ///
    /// # Panics
    ///
    /// Panics if the staleness histograms have different geometry (they
    /// never do: every collection uses the same fixed buckets).
    pub fn merge(&mut self, other: &WorkloadStats) {
        use std::collections::btree_map::Entry;
        self.requests += other.requests;
        for (key, &oi) in &other.series_index {
            let id = match self.series_index.entry(key.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let id = self.series_data.len() as u32;
                    self.series_data.push(Summary::default());
                    *e.insert(id)
                }
            };
            self.series_data[id as usize].merge(&other.series_data[oi as usize]);
        }
        for (key, &oi) in &other.session_index {
            let id = match self.session_index.entry(key.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let id = self.session_data.len() as u32;
                    self.session_data.push(Summary::default());
                    *e.insert(id)
                }
            };
            self.session_data[id as usize].merge(&other.session_data[oi as usize]);
        }
        for (group, &oi) in &other.outcome_index {
            let id = self.intern_group(group);
            self.outcome_data[id as usize].merge(&other.outcome_data[oi as usize]);
        }
        self.staleness.merge(&other.staleness);
    }

    /// All page labels recorded for a pattern, in sorted order.
    pub fn pages_of(&self, pattern: &str) -> Vec<String> {
        let mut pages: Vec<String> = self
            .series_index
            .keys()
            .filter(|k| k.pattern == pattern)
            .map(|k| k.page.clone())
            .collect();
        pages.sort();
        pages.dedup();
        pages
    }
}

/// Equality compares the *logical* content — every (key, summary) pair and
/// the request count — independent of interning order, so cache-on and
/// cache-off runs with permuted intern sequences still compare equal when
/// they measured the same thing.
impl PartialEq for WorkloadStats {
    fn eq(&self, other: &Self) -> bool {
        self.requests == other.requests
            && self.series_index.len() == other.series_index.len()
            && self.session_index.len() == other.session_index.len()
            && self.iter().eq(other.iter())
            && self
                .session_index
                .iter()
                .map(|(k, &i)| (k, &self.session_data[i as usize]))
                .eq(other
                    .session_index
                    .iter()
                    .map(|(k, &i)| (k, &other.session_data[i as usize])))
            && self.outcomes().eq(other.outcomes())
            && self.staleness == other.staleness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn records_and_aggregates() {
        let mut s = WorkloadStats::new();
        s.record("local", "Browser", "Item", ms(50));
        s.record("local", "Browser", "Item", ms(70));
        s.record("local", "Browser", "Main", ms(80));
        s.record("remote1", "Browser", "Item", ms(400));
        assert_eq!(s.requests(), 4);
        assert_eq!(s.mean_ms("local", "Browser", "Item"), Some(60.0));
        assert_eq!(s.mean_ms("remote1", "Browser", "Item"), Some(400.0));
        assert_eq!(s.mean_ms("remote2", "Browser", "Item"), None);
        // Session average over all local browser pages: (50+70+80)/3.
        let sess = s.session_summary("local", "Browser").unwrap();
        assert!((sess.mean() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn group_aggregation_weights_by_count() {
        let mut s = WorkloadStats::new();
        s.record("remote1", "Browser", "Item", ms(100));
        s.record("remote1", "Browser", "Item", ms(100));
        s.record("remote2", "Browser", "Item", ms(400));
        let m = s
            .mean_ms_over_groups(&["remote1", "remote2"], "Browser", "Item")
            .unwrap();
        assert!((m - 200.0).abs() < 1e-9);
        assert_eq!(s.mean_ms_over_groups(&["nope"], "Browser", "Item"), None);
        let sess = s
            .session_mean_over_groups(&["remote1", "remote2"], "Browser")
            .unwrap();
        assert!((sess - 200.0).abs() < 1e-9);
    }

    #[test]
    fn outcomes_track_availability_and_staleness() {
        let mut s = WorkloadStats::new();
        let local = s.intern_group("local");
        let remote = s.intern_group("remote1");
        assert_eq!(s.intern_group("local"), local, "idempotent");
        for _ in 0..9 {
            s.record_outcome_id(remote, true);
        }
        s.record_outcome_id(remote, false);
        s.record_retry_id(remote);
        s.record_failover_id(remote);
        s.record_stale_serve_id(remote, 30_000.0);
        s.record_outcome_id(local, true);

        let r = s.outcome("remote1").unwrap();
        assert_eq!(r.ok, 9);
        assert_eq!(r.failed, 1);
        assert!((r.availability() - 0.9).abs() < 1e-12);
        assert!((r.error_rate() - 0.1).abs() < 1e-12);
        assert!((r.goodput(SimDuration::from_secs(3)) - 3.0).abs() < 1e-12);
        assert_eq!(s.outcome("local").unwrap().availability(), 1.0);
        assert_eq!(s.outcome("nope"), None);

        let total = s.total_outcome();
        assert_eq!(total.ok, 10);
        assert_eq!(total.failed, 1);
        assert_eq!(total.stale_served, 1);
        assert_eq!(s.staleness_histogram().total(), 1);
        assert!(s.staleness_histogram().quantile(0.99) >= 30_000.0);
        // An idle group reports full availability, not a 0/0 panic.
        assert_eq!(GroupOutcome::default().availability(), 1.0);
    }

    #[test]
    fn merge_matches_by_key_not_intern_order() {
        // Left interns (A then B); right interns (B then A) plus a series
        // the left never saw. Merging must line everything up by key.
        let mut a = WorkloadStats::new();
        let ga = a.intern_group("local");
        a.record("local", "Browser", "Item", ms(100));
        a.record("remote1", "Browser", "Item", ms(400));
        a.record_outcome_id(ga, true);

        let mut b = WorkloadStats::new();
        let gb = b.intern_group("remote1");
        b.record("remote1", "Browser", "Item", ms(600));
        b.record("local", "Browser", "Item", ms(200));
        b.record("local", "Buyer", "Commit", ms(50));
        b.record_outcome_id(gb, false);
        b.record_stale_serve_id(gb, 10_000.0);

        a.merge(&b);
        assert_eq!(a.requests(), 5);
        assert_eq!(a.mean_ms("local", "Browser", "Item"), Some(150.0));
        assert_eq!(a.mean_ms("remote1", "Browser", "Item"), Some(500.0));
        assert_eq!(a.mean_ms("local", "Buyer", "Commit"), Some(50.0));
        let sess = a.session_summary("local", "Browser").unwrap();
        assert_eq!(sess.count(), 2);
        assert_eq!(a.outcome("local").unwrap().ok, 1);
        let r = a.outcome("remote1").unwrap();
        assert_eq!((r.failed, r.stale_served), (1, 1));
        assert_eq!(a.staleness_histogram().total(), 1);

        // Merging an empty collection is a no-op.
        let before = a.clone();
        a.merge(&WorkloadStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn pages_of_pattern() {
        let mut s = WorkloadStats::new();
        s.record("local", "Buyer", "Commit", ms(1));
        s.record("local", "Buyer", "Cart", ms(1));
        s.record("local", "Browser", "Item", ms(1));
        assert_eq!(
            s.pages_of("Buyer"),
            vec!["Cart".to_string(), "Commit".to_string()]
        );
    }
}
