//! Measurement collection: per-page and per-session-pattern response times,
//! keyed the way the paper's Tables 6/7 and Figures 7/8 report them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mutsvc_desim::metrics::Summary;
use mutsvc_desim::time::SimDuration;

/// Identifies one measured series: client group × usage pattern × page.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Client group name ("local", "remote1", "remote2").
    pub group: String,
    /// Usage pattern ("Browser", "Buyer", "Bidder").
    pub pattern: String,
    /// Page label ("Item", "Commit", …).
    pub page: String,
}

/// Collected response-time statistics for one experiment run.
///
/// Internally series are *interned*: the string-keyed maps hold dense
/// indices into `Vec<Summary>` storage, so the driver's hot path records
/// measurements through [`WorkloadStats::record_ids`] without allocating
/// (the string-keyed [`WorkloadStats::record`] remains as a convenience).
#[derive(Debug, Clone, Default)]
pub struct WorkloadStats {
    series_index: BTreeMap<SeriesKey, u32>,
    series_data: Vec<Summary>,
    /// Aggregate per (group, pattern) — the Figures 7/8 session averages.
    session_index: BTreeMap<(String, String), u32>,
    session_data: Vec<Summary>,
    requests: u64,
}

impl WorkloadStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one (group, pattern, page) series and its (group, pattern)
    /// session aggregate, returning `(series_id, session_id)` for use with
    /// [`Self::record_ids`]. Idempotent; intended for setup time.
    pub fn intern(&mut self, group: &str, pattern: &str, page: &str) -> (u32, u32) {
        let series_id = match self.series_index.entry(SeriesKey {
            group: group.to_string(),
            pattern: pattern.to_string(),
            page: page.to_string(),
        }) {
            std::collections::btree_map::Entry::Occupied(e) => *e.get(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let id = self.series_data.len() as u32;
                self.series_data.push(Summary::default());
                *e.insert(id)
            }
        };
        let session_id = match self
            .session_index
            .entry((group.to_string(), pattern.to_string()))
        {
            std::collections::btree_map::Entry::Occupied(e) => *e.get(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let id = self.session_data.len() as u32;
                self.session_data.push(Summary::default());
                *e.insert(id)
            }
        };
        (series_id, session_id)
    }

    /// Records one completed page request against pre-interned ids
    /// (allocation-free; the driver's steady-state path).
    ///
    /// # Panics
    ///
    /// Panics if either id did not come from [`Self::intern`].
    pub fn record_ids(&mut self, series_id: u32, session_id: u32, response: SimDuration) {
        self.requests += 1;
        self.series_data[series_id as usize].record_duration(response);
        self.session_data[session_id as usize].record_duration(response);
    }

    /// Records one completed page request.
    pub fn record(&mut self, group: &str, pattern: &str, page: &str, response: SimDuration) {
        let (series_id, session_id) = self.intern(group, pattern, page);
        self.record_ids(series_id, session_id, response);
    }

    /// Total requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The summary of one series, if measured.
    pub fn series(&self, group: &str, pattern: &str, page: &str) -> Option<&Summary> {
        self.series_index
            .get(&SeriesKey {
                group: group.to_string(),
                pattern: pattern.to_string(),
                page: page.to_string(),
            })
            .map(|&i| &self.series_data[i as usize])
    }

    /// Mean response time of one series in milliseconds (`None` if unmeasured).
    pub fn mean_ms(&self, group: &str, pattern: &str, page: &str) -> Option<f64> {
        self.series(group, pattern, page).map(Summary::mean)
    }

    /// Mean response time of a page aggregated over several groups (e.g. the
    /// paper's single "remote" column covering both edge client groups).
    pub fn mean_ms_over_groups(&self, groups: &[&str], pattern: &str, page: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0u64;
        for g in groups {
            if let Some(s) = self.series(g, pattern, page) {
                total += s.mean() * s.count() as f64;
                n += s.count();
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }

    /// The session-average summary of a (group, pattern) — Figures 7/8 bars.
    pub fn session_summary(&self, group: &str, pattern: &str) -> Option<&Summary> {
        self.session_index
            .get(&(group.to_string(), pattern.to_string()))
            .map(|&i| &self.session_data[i as usize])
    }

    /// Session-average response time over several groups.
    pub fn session_mean_over_groups(&self, groups: &[&str], pattern: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0u64;
        for g in groups {
            if let Some(s) = self.session_summary(g, pattern) {
                total += s.mean() * s.count() as f64;
                n += s.count();
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }

    /// Iterates every series, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = (&SeriesKey, &Summary)> {
        self.series_index
            .iter()
            .map(|(k, &i)| (k, &self.series_data[i as usize]))
    }

    /// All page labels recorded for a pattern, in sorted order.
    pub fn pages_of(&self, pattern: &str) -> Vec<String> {
        let mut pages: Vec<String> = self
            .series_index
            .keys()
            .filter(|k| k.pattern == pattern)
            .map(|k| k.page.clone())
            .collect();
        pages.sort();
        pages.dedup();
        pages
    }
}

/// Equality compares the *logical* content — every (key, summary) pair and
/// the request count — independent of interning order, so cache-on and
/// cache-off runs with permuted intern sequences still compare equal when
/// they measured the same thing.
impl PartialEq for WorkloadStats {
    fn eq(&self, other: &Self) -> bool {
        self.requests == other.requests
            && self.series_index.len() == other.series_index.len()
            && self.session_index.len() == other.session_index.len()
            && self.iter().eq(other.iter())
            && self
                .session_index
                .iter()
                .map(|(k, &i)| (k, &self.session_data[i as usize]))
                .eq(other
                    .session_index
                    .iter()
                    .map(|(k, &i)| (k, &other.session_data[i as usize])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn records_and_aggregates() {
        let mut s = WorkloadStats::new();
        s.record("local", "Browser", "Item", ms(50));
        s.record("local", "Browser", "Item", ms(70));
        s.record("local", "Browser", "Main", ms(80));
        s.record("remote1", "Browser", "Item", ms(400));
        assert_eq!(s.requests(), 4);
        assert_eq!(s.mean_ms("local", "Browser", "Item"), Some(60.0));
        assert_eq!(s.mean_ms("remote1", "Browser", "Item"), Some(400.0));
        assert_eq!(s.mean_ms("remote2", "Browser", "Item"), None);
        // Session average over all local browser pages: (50+70+80)/3.
        let sess = s.session_summary("local", "Browser").unwrap();
        assert!((sess.mean() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn group_aggregation_weights_by_count() {
        let mut s = WorkloadStats::new();
        s.record("remote1", "Browser", "Item", ms(100));
        s.record("remote1", "Browser", "Item", ms(100));
        s.record("remote2", "Browser", "Item", ms(400));
        let m = s
            .mean_ms_over_groups(&["remote1", "remote2"], "Browser", "Item")
            .unwrap();
        assert!((m - 200.0).abs() < 1e-9);
        assert_eq!(s.mean_ms_over_groups(&["nope"], "Browser", "Item"), None);
        let sess = s
            .session_mean_over_groups(&["remote1", "remote2"], "Browser")
            .unwrap();
        assert!((sess - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pages_of_pattern() {
        let mut s = WorkloadStats::new();
        s.record("local", "Buyer", "Commit", ms(1));
        s.record("local", "Buyer", "Cart", ms(1));
        s.record("local", "Browser", "Item", ms(1));
        assert_eq!(
            s.pages_of("Buyer"),
            vec!["Cart".to_string(), "Commit".to_string()]
        );
    }
}
