//! Measurement collection: per-page and per-session-pattern response times,
//! keyed the way the paper's Tables 6/7 and Figures 7/8 report them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mutsvc_desim::metrics::Summary;
use mutsvc_desim::time::SimDuration;

/// Identifies one measured series: client group × usage pattern × page.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Client group name ("local", "remote1", "remote2").
    pub group: String,
    /// Usage pattern ("Browser", "Buyer", "Bidder").
    pub pattern: String,
    /// Page label ("Item", "Commit", …).
    pub page: String,
}

/// Collected response-time statistics for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadStats {
    series: BTreeMap<SeriesKey, Summary>,
    /// Aggregate per (group, pattern) — the Figures 7/8 session averages.
    sessions: BTreeMap<(String, String), Summary>,
    requests: u64,
}

impl WorkloadStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed page request.
    pub fn record(&mut self, group: &str, pattern: &str, page: &str, response: SimDuration) {
        self.requests += 1;
        self.series
            .entry(SeriesKey {
                group: group.to_string(),
                pattern: pattern.to_string(),
                page: page.to_string(),
            })
            .or_default()
            .record_duration(response);
        self.sessions
            .entry((group.to_string(), pattern.to_string()))
            .or_default()
            .record_duration(response);
    }

    /// Total requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The summary of one series, if measured.
    pub fn series(&self, group: &str, pattern: &str, page: &str) -> Option<&Summary> {
        self.series.get(&SeriesKey {
            group: group.to_string(),
            pattern: pattern.to_string(),
            page: page.to_string(),
        })
    }

    /// Mean response time of one series in milliseconds (`None` if unmeasured).
    pub fn mean_ms(&self, group: &str, pattern: &str, page: &str) -> Option<f64> {
        self.series(group, pattern, page).map(Summary::mean)
    }

    /// Mean response time of a page aggregated over several groups (e.g. the
    /// paper's single "remote" column covering both edge client groups).
    pub fn mean_ms_over_groups(&self, groups: &[&str], pattern: &str, page: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0u64;
        for g in groups {
            if let Some(s) = self.series(g, pattern, page) {
                total += s.mean() * s.count() as f64;
                n += s.count();
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }

    /// The session-average summary of a (group, pattern) — Figures 7/8 bars.
    pub fn session_summary(&self, group: &str, pattern: &str) -> Option<&Summary> {
        self.sessions.get(&(group.to_string(), pattern.to_string()))
    }

    /// Session-average response time over several groups.
    pub fn session_mean_over_groups(&self, groups: &[&str], pattern: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0u64;
        for g in groups {
            if let Some(s) = self.sessions.get(&(g.to_string(), pattern.to_string())) {
                total += s.mean() * s.count() as f64;
                n += s.count();
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }

    /// Iterates every series, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = (&SeriesKey, &Summary)> {
        self.series.iter()
    }

    /// All page labels recorded for a pattern, in sorted order.
    pub fn pages_of(&self, pattern: &str) -> Vec<String> {
        let mut pages: Vec<String> = self
            .series
            .keys()
            .filter(|k| k.pattern == pattern)
            .map(|k| k.page.clone())
            .collect();
        pages.sort();
        pages.dedup();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn records_and_aggregates() {
        let mut s = WorkloadStats::new();
        s.record("local", "Browser", "Item", ms(50));
        s.record("local", "Browser", "Item", ms(70));
        s.record("local", "Browser", "Main", ms(80));
        s.record("remote1", "Browser", "Item", ms(400));
        assert_eq!(s.requests(), 4);
        assert_eq!(s.mean_ms("local", "Browser", "Item"), Some(60.0));
        assert_eq!(s.mean_ms("remote1", "Browser", "Item"), Some(400.0));
        assert_eq!(s.mean_ms("remote2", "Browser", "Item"), None);
        // Session average over all local browser pages: (50+70+80)/3.
        let sess = s.session_summary("local", "Browser").unwrap();
        assert!((sess.mean() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn group_aggregation_weights_by_count() {
        let mut s = WorkloadStats::new();
        s.record("remote1", "Browser", "Item", ms(100));
        s.record("remote1", "Browser", "Item", ms(100));
        s.record("remote2", "Browser", "Item", ms(400));
        let m = s
            .mean_ms_over_groups(&["remote1", "remote2"], "Browser", "Item")
            .unwrap();
        assert!((m - 200.0).abs() < 1e-9);
        assert_eq!(s.mean_ms_over_groups(&["nope"], "Browser", "Item"), None);
        let sess = s
            .session_mean_over_groups(&["remote1", "remote2"], "Browser")
            .unwrap();
        assert!((sess - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pages_of_pattern() {
        let mut s = WorkloadStats::new();
        s.record("local", "Buyer", "Commit", ms(1));
        s.record("local", "Buyer", "Cart", ms(1));
        s.record("local", "Browser", "Item", ms(1));
        assert_eq!(
            s.pages_of("Buyer"),
            vec!["Cart".to_string(), "Commit".to_string()]
        );
    }
}
