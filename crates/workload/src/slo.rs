//! Service-level objectives evaluated over the windowed metrics series.
//!
//! An [`SloSpec`] states what the deployment must deliver — per-page
//! latency objectives ("95 % of BrowseCategories under 300 ms") and an
//! availability target — and the burn-rate engine grades a finished run's
//! [`mutsvc_desim::Recorder`] windows against it. Burn rate is the SRE
//! convention: the fraction of the error budget consumed per window,
//! `bad_fraction / (1 - target)`, so `1.0` means "exactly on budget" and a
//! WAN partition that fails half the requests against a 99.9 % target burns
//! at 500×. The engine emits window-stamped breach/recovery events (the
//! feedback signal ROADMAP item 3's placement controller consumes) and a
//! final verdict table per objective.
//!
//! Latency objectives count a request as bad only when its histogram bucket
//! certifies it at or above the threshold ([`LogHistogram::count_over`] is
//! conservative at bucket granularity), so verdicts never over-report from
//! bucketing.
//!
//! [`LogHistogram::count_over`]: mutsvc_desim::LogHistogram::count_over

use serde::{Deserialize, Serialize};

use mutsvc_desim::Recorder;

/// Name of the per-window successful-completions counter the driver
/// registers when metrics are armed.
pub const OK_COUNTER: &str = "requests.ok";
/// Name of the per-window failed-completions counter.
pub const FAILED_COUNTER: &str = "requests.failed";

/// The recorder series carrying one page's response-time histogram.
pub fn page_series(page: &str) -> String {
    format!("page.{page}.response_ms")
}

/// One per-page latency objective: at least `target` of the page's
/// measured requests complete under `latency_ms`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloObjective {
    /// Page label as the application descriptor names it.
    pub page: String,
    /// Response-time threshold in milliseconds.
    pub latency_ms: f64,
    /// Required fraction of requests under the threshold, in `(0, 1)`.
    pub target: f64,
}

/// A deployment's service-level objectives: per-page latency targets plus
/// an optional availability floor, graded by the burn-rate engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SloSpec {
    /// Per-page latency objectives.
    pub objectives: Vec<SloObjective>,
    /// Required fraction of completions that succeed (e.g. `0.999`), or
    /// `None` to skip availability grading.
    pub availability: Option<f64>,
    /// Burn rate at or above which a window counts as breaching (0 is
    /// normalized to the conventional `1.0` — consuming budget exactly at
    /// the sustainable rate).
    pub burn_threshold: f64,
}

impl SloSpec {
    /// An empty spec (no objectives, burn threshold 1).
    pub fn new() -> Self {
        SloSpec {
            objectives: Vec::new(),
            availability: None,
            burn_threshold: 1.0,
        }
    }

    /// Adds a per-page latency objective.
    pub fn page(mut self, page: &str, latency_ms: f64, target: f64) -> Self {
        assert!(
            target > 0.0 && target < 1.0,
            "latency target must lie in (0, 1), got {target}"
        );
        self.objectives.push(SloObjective {
            page: page.to_string(),
            latency_ms,
            target,
        });
        self
    }

    /// Sets the availability floor.
    pub fn with_availability(mut self, target: f64) -> Self {
        assert!(
            target > 0.0 && target < 1.0,
            "availability target must lie in (0, 1), got {target}"
        );
        self.availability = Some(target);
        self
    }

    /// Whether the spec grades anything.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty() && self.availability.is_none()
    }

    /// The effective breach threshold (`burn_threshold`, 0 normalized to 1).
    pub fn effective_burn_threshold(&self) -> f64 {
        if self.burn_threshold > 0.0 {
            self.burn_threshold
        } else {
            1.0
        }
    }
}

/// What happened to one objective in one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloEventKind {
    /// The objective's burn rate crossed up through the threshold.
    Breach,
    /// The burn rate dropped back below the threshold.
    Recovery,
}

/// A window-stamped breach or recovery of one objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloEvent {
    /// Window index the transition was observed in.
    pub window: u64,
    /// Objective name (`page.<page>` or `availability`).
    pub objective: String,
    /// Transition direction.
    pub kind: SloEventKind,
    /// The window's burn rate at the transition.
    pub burn: f64,
}

/// The final grade of one objective over every complete window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// Objective name (`page.<page>` or `availability`).
    pub objective: String,
    /// Latency threshold for page objectives, `None` for availability.
    pub threshold_ms: Option<f64>,
    /// Required good fraction.
    pub target: f64,
    /// Attained good fraction over all windows (1 when nothing was
    /// measured — a vacuous pass).
    pub attained: f64,
    /// Whether `attained >= target`.
    pub met: bool,
    /// Worst single-window burn rate.
    pub max_burn: f64,
    /// Number of windows spent at or above the breach threshold.
    pub breached_windows: u64,
    /// Samples graded (requests for page objectives, completions for
    /// availability).
    pub samples: u64,
}

/// The burn-rate engine's output: one verdict per objective plus the
/// window-stamped breach/recovery timeline, in objective order then window
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Final grades, one per objective, in spec order (availability last).
    pub verdicts: Vec<SloVerdict>,
    /// Breach/recovery transitions, grouped by objective in spec order.
    pub events: Vec<SloEvent>,
    /// The breach threshold the timeline was cut at.
    pub burn_threshold: f64,
}

impl SloReport {
    /// Whether every objective was met.
    pub fn all_met(&self) -> bool {
        self.verdicts.iter().all(|v| v.met)
    }
}

#[derive(Default)]
struct ObjectiveRun {
    good: u64,
    samples: u64,
    max_burn: f64,
    breached_windows: u64,
    transitions: Vec<(u64, bool, f64)>,
    breach_at: f64,
}

impl ObjectiveRun {
    fn into_parts(self, objective: String, threshold_ms: Option<f64>, target: f64) -> Graded {
        let attained = if self.samples == 0 {
            1.0
        } else {
            self.good as f64 / self.samples as f64
        };
        let events = self
            .transitions
            .into_iter()
            .map(|(window, over, burn)| SloEvent {
                window,
                objective: objective.clone(),
                kind: if over {
                    SloEventKind::Breach
                } else {
                    SloEventKind::Recovery
                },
                burn,
            })
            .collect();
        Graded {
            verdict: SloVerdict {
                objective,
                threshold_ms,
                target,
                attained,
                met: attained >= target,
                max_burn: self.max_burn,
                breached_windows: self.breached_windows,
                samples: self.samples,
            },
            events,
        }
    }
}

struct Graded {
    verdict: SloVerdict,
    events: Vec<SloEvent>,
}

/// Grades every complete window of `recorder` against `spec`.
///
/// Unknown pages (no registered series) grade as vacuous passes with zero
/// samples — the static W113 lint is the place that catches misspelled or
/// unreachable objectives, not a runtime panic in the grader.
pub fn evaluate(spec: &SloSpec, recorder: &Recorder) -> SloReport {
    let breach_at = spec.effective_burn_threshold();
    let mut verdicts = Vec::new();
    let mut events = Vec::new();
    for obj in &spec.objectives {
        let name = format!("page.{}", obj.page);
        let budget = 1.0 - obj.target;
        let hist = recorder.hist_index(&page_series(&obj.page));
        let mut run = ObjectiveRun {
            breach_at,
            ..Default::default()
        };
        grade_windows(
            &mut run,
            recorder.rows().iter().map(|row| match hist {
                Some(idx) => {
                    let h = &row.hists[idx];
                    let bad = h.count_over(obj.latency_ms);
                    (h.total() - bad, bad)
                }
                None => (0, 0),
            }),
            budget,
        );
        let graded = run.into_parts(name, Some(obj.latency_ms), obj.target);
        verdicts.push(graded.verdict);
        events.extend(graded.events);
    }
    if let Some(target) = spec.availability {
        let budget = 1.0 - target;
        let ok = recorder.counter_index(OK_COUNTER);
        let failed = recorder.counter_index(FAILED_COUNTER);
        let mut run = ObjectiveRun {
            breach_at,
            ..Default::default()
        };
        grade_windows(
            &mut run,
            recorder.rows().iter().map(|row| {
                let g = ok.map_or(0, |i| row.counters[i]);
                let b = failed.map_or(0, |i| row.counters[i]);
                (g, b)
            }),
            budget,
        );
        let graded = run.into_parts("availability".to_string(), None, target);
        verdicts.push(graded.verdict);
        events.extend(graded.events);
    }
    SloReport {
        verdicts,
        events,
        burn_threshold: breach_at,
    }
}

/// Folds per-window `(good, bad)` counts into `run`: budget burn, breach
/// transitions, attainment tallies.
fn grade_windows(run: &mut ObjectiveRun, good_bad: impl Iterator<Item = (u64, u64)>, budget: f64) {
    let mut breached = false;
    for (window, (good, bad)) in good_bad.enumerate() {
        let total = good + bad;
        run.good += good;
        run.samples += total;
        let burn = if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / budget
        };
        run.max_burn = run.max_burn.max(burn);
        let over = total > 0 && burn >= run.breach_at;
        if over {
            run.breached_windows += 1;
        }
        if over != breached {
            run.transitions.push((window as u64, over, burn));
            breached = over;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_desim::time::SimDuration;
    use mutsvc_desim::Recorder;

    /// A recorder with one page histogram and the availability counters,
    /// rolled through scripted windows.
    fn scripted() -> Recorder {
        let mut r = Recorder::new(SimDuration::from_secs(30));
        let ok = r.counter(OK_COUNTER);
        let failed = r.counter(FAILED_COUNTER);
        let h = r.histogram(&page_series("Home"));
        // Window 0: healthy — 100 fast requests, all ok.
        for _ in 0..100 {
            r.observe(h, 50.0);
            r.add(ok, 1);
        }
        r.roll();
        // Window 1: degraded — half the requests slow, a quarter failed.
        for _ in 0..50 {
            r.observe(h, 50.0);
            r.add(ok, 1);
        }
        for _ in 0..50 {
            r.observe(h, 900.0);
        }
        r.add(ok, 25);
        r.add(failed, 25);
        r.roll();
        // Window 2: recovered.
        for _ in 0..100 {
            r.observe(h, 60.0);
            r.add(ok, 1);
        }
        r.roll();
        r
    }

    #[test]
    fn burn_rate_breaches_and_recovers() {
        let spec = SloSpec::new()
            .page("Home", 300.0, 0.95)
            .with_availability(0.99);
        let report = evaluate(&spec, &scripted());
        assert_eq!(report.verdicts.len(), 2);

        let page = &report.verdicts[0];
        assert_eq!(page.objective, "page.Home");
        assert_eq!(page.threshold_ms, Some(300.0));
        assert_eq!(page.samples, 300);
        // 50 of 300 requests certified over 300 ms.
        assert!((page.attained - 250.0 / 300.0).abs() < 1e-12);
        assert!(!page.met);
        // Window 1 burns at (0.5 bad) / (0.05 budget) = 10×.
        assert!((page.max_burn - 10.0).abs() < 1e-9);
        assert_eq!(page.breached_windows, 1);

        let avail = &report.verdicts[1];
        assert_eq!(avail.objective, "availability");
        assert_eq!(avail.samples, 300);
        assert!((avail.attained - 275.0 / 300.0).abs() < 1e-12);
        assert!(!avail.met);

        // Timeline: each objective breaches entering window 1 and recovers
        // entering window 2.
        let windows: Vec<(u64, SloEventKind)> = report
            .events
            .iter()
            .filter(|e| e.objective == "page.Home")
            .map(|e| (e.window, e.kind))
            .collect();
        assert_eq!(
            windows,
            vec![(1, SloEventKind::Breach), (2, SloEventKind::Recovery)]
        );
        assert!(!report.all_met());
    }

    #[test]
    fn generous_objectives_are_met_without_events() {
        let spec = SloSpec::new()
            .page("Home", 2000.0, 0.5)
            .with_availability(0.5);
        let report = evaluate(&spec, &scripted());
        assert!(report.all_met());
        assert!(report.events.is_empty());
        assert_eq!(report.verdicts[0].breached_windows, 0);
    }

    #[test]
    fn unknown_page_is_a_vacuous_pass() {
        let spec = SloSpec::new().page("NoSuchPage", 100.0, 0.9);
        let report = evaluate(&spec, &scripted());
        assert_eq!(report.verdicts[0].samples, 0);
        assert_eq!(report.verdicts[0].attained, 1.0);
        assert!(report.verdicts[0].met);
        assert!(report.events.is_empty());
    }

    #[test]
    fn empty_windows_do_not_burn() {
        let mut r = Recorder::new(SimDuration::from_secs(30));
        let _ = r.counter(OK_COUNTER);
        let _ = r.counter(FAILED_COUNTER);
        let _ = r.histogram(&page_series("Home"));
        r.roll();
        r.roll();
        let spec = SloSpec::new()
            .page("Home", 100.0, 0.99)
            .with_availability(0.999);
        let report = evaluate(&spec, &r);
        assert!(report.all_met());
        for v in &report.verdicts {
            assert_eq!(v.max_burn, 0.0);
            assert_eq!(v.samples, 0);
        }
    }

    #[test]
    #[should_panic(expected = "latency target must lie in (0, 1)")]
    fn degenerate_targets_are_rejected() {
        let _ = SloSpec::new().page("Home", 100.0, 1.0);
    }
}
