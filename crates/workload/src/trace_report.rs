//! Trace artifacts: per-page critical-path aggregation and exporters.
//!
//! The driver collects raw [`CompletedTrace`]s (desim layer, index-based
//! node ids). This module resolves them against the run's topology into
//! human-readable artifacts:
//!
//! * [`jsonl`] — the compact span log: one JSON object per span, traces in
//!   commit order, spans in creation order. Byte-identical across runs with
//!   the same seed and configuration (the determinism artifact).
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON, loadable in
//!   Perfetto / `chrome://tracing`. Each request gets its own lane; each
//!   `Parallel` arm gets a sub-lane so `B`/`E` pairs nest properly.
//! * [`page_breakdown`] — the paper-table artifact: mean response time per
//!   page × client group, decomposed along the critical path into WAN
//!   propagation, serialization, queueing, server service and DB time, with
//!   both logical (binder-derived) and critical-path WAN round trips.

use mutsvc_desim::telemetry::TelemetrySnapshot;
use mutsvc_desim::trace::{critical_path, CompletedTrace, PathBreakdown, Span, SpanKind};

/// A run's trace payload, resolved enough to export without the world.
#[derive(Debug)]
pub struct TraceData {
    /// Committed span trees in completion order.
    pub traces: Vec<CompletedTrace>,
    /// Node names by node index.
    pub node_names: Vec<String>,
    /// Link names by link index ("main->router", …).
    pub link_names: Vec<String>,
    /// Client-group names by group index.
    pub group_names: Vec<String>,
    /// Node index hosting the database.
    pub db_node: u32,
    /// Telemetry metric names (parallel to snapshot value vectors).
    pub telemetry_names: Vec<String>,
    /// Telemetry snapshot series.
    pub telemetry: Vec<TelemetrySnapshot>,
}

/// Mean critical-path decomposition of one page for one client group.
#[derive(Debug, Clone, PartialEq)]
pub struct PageTraceRow {
    /// Client group name.
    pub group: String,
    /// Page label.
    pub page: &'static str,
    /// Measured traces aggregated.
    pub count: u64,
    /// Mean response time (ms).
    pub mean_ms: f64,
    /// Mean WAN round trips per the binder's crossing list (static
    /// accounting; excludes sampled protocol chatter such as DGC pings).
    pub wan_rts_logical: f64,
    /// Mean WAN round trips observed on the critical path (includes
    /// protocol chatter; excludes off-path `Parallel` arms and forks).
    pub wan_rts_critical: f64,
    /// Mean WAN propagation on the critical path (ms).
    pub wan_propagation_ms: f64,
    /// Mean serialization time on the critical path (ms).
    pub serialization_ms: f64,
    /// Mean queueing (links + non-DB CPUs) on the critical path (ms).
    pub queueing_ms: f64,
    /// Mean non-DB CPU service on the critical path (ms).
    pub service_ms: f64,
    /// Mean DB time (service + queueing) on the critical path (ms).
    pub db_ms: f64,
    /// Mean pure-delay time on the critical path (ms).
    pub delay_ms: f64,
}

/// Aggregates measured traces into per-(group, page) critical-path rows,
/// sorted by group then page for deterministic output.
pub fn page_breakdown(data: &TraceData) -> Vec<PageTraceRow> {
    struct Acc {
        count: u64,
        duration_ms: f64,
        logical: f64,
        path: PathBreakdown,
    }
    let db = data.db_node;
    let mut keys: Vec<(u32, &'static str)> = Vec::new();
    let mut accs: Vec<Acc> = Vec::new();
    for trace in &data.traces {
        if !trace.meta.measured {
            continue;
        }
        let key = (trace.meta.group, trace.meta.label);
        let idx = match keys.iter().position(|&k| k == key) {
            Some(i) => i,
            None => {
                keys.push(key);
                accs.push(Acc {
                    count: 0,
                    duration_ms: 0.0,
                    logical: 0.0,
                    path: PathBreakdown::default(),
                });
                keys.len() - 1
            }
        };
        let bd = critical_path(trace, |n| n == db);
        let acc = &mut accs[idx];
        acc.count += 1;
        acc.duration_ms += trace.duration.as_millis_f64();
        acc.logical += if trace.meta.wan_rts_logical.is_finite() {
            trace.meta.wan_rts_logical
        } else {
            0.0
        };
        acc.path.accumulate(&bd);
    }
    let mut rows: Vec<PageTraceRow> = keys
        .iter()
        .zip(accs.iter())
        .map(|(&(group, page), acc)| {
            let n = acc.count as f64;
            PageTraceRow {
                group: data
                    .group_names
                    .get(group as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("group{group}")),
                page,
                count: acc.count,
                mean_ms: acc.duration_ms / n,
                wan_rts_logical: acc.logical / n,
                wan_rts_critical: acc.path.wan_round_trips / n,
                wan_propagation_ms: acc.path.wan_propagation.as_millis_f64() / n,
                serialization_ms: acc.path.serialization.as_millis_f64() / n,
                queueing_ms: (acc.path.link_queueing + acc.path.cpu_queueing).as_millis_f64() / n,
                service_ms: acc.path.service.as_millis_f64() / n,
                db_ms: acc.path.db_time.as_millis_f64() / n,
                delay_ms: acc.path.delay.as_millis_f64() / n,
            }
        })
        .collect();
    rows.sort_by(|a, b| (&a.group, a.page).cmp(&(&b.group, b.page)));
    rows
}

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn node_name(data: &TraceData, id: u32) -> String {
    data.node_names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("node{id}"))
}

fn link_name(data: &TraceData, id: u32) -> String {
    data.link_names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("link{id}"))
}

/// Renders the compact JSONL span log: one line per span, `\n`-terminated.
///
/// The request span's line carries the trace metadata (page, group, client
/// and entry nodes, logical WAN round trips); leaf lines carry their
/// kind-specific payload. Output is a pure function of the committed
/// traces, so identical seeds and configurations produce byte-identical
/// logs.
pub fn jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    for trace in &data.traces {
        for span in &trace.spans {
            render_span_line(data, trace, span, &mut out);
            out.push('\n');
        }
    }
    out
}

fn render_span_line(data: &TraceData, trace: &CompletedTrace, span: &Span, out: &mut String) {
    out.push_str(&format!(
        "{{\"trace\":\"{:016x}\",\"span\":{},\"parent\":{},\"kind\":\"{}\",\"start_us\":{},\"end_us\":{}",
        trace.trace_id,
        span.id,
        span.parent as i64 as i32, // NO_PARENT (u32::MAX) prints as -1
        span.kind.label(),
        span.start.as_micros(),
        span.end.as_micros(),
    ));
    match span.kind {
        SpanKind::Request => {
            let meta = &trace.meta;
            out.push_str(&format!(
                ",\"page\":\"{}\",\"group\":\"",
                meta.label // page labels are static identifiers, no escaping needed
            ));
            esc(
                data.group_names
                    .get(meta.group as usize)
                    .map_or("?", String::as_str),
                out,
            );
            out.push_str(&format!(
                "\",\"client\":\"{}\",\"entry\":\"{}\",\"measured\":{},\"wan_rts_logical\":{}",
                node_name(data, meta.client),
                node_name(data, meta.entry),
                meta.measured,
                fmt_f64(meta.wan_rts_logical),
            ));
        }
        SpanKind::Cpu { node, service_us } => {
            out.push_str(&format!(
                ",\"node\":\"{}\",\"service_us\":{service_us}",
                node_name(data, node)
            ));
        }
        SpanKind::Hop {
            link,
            bytes,
            propagation_us,
            serialization_us,
            wan,
        } => {
            out.push_str(&format!(
                ",\"link\":\"{}\",\"bytes\":{bytes},\"prop_us\":{propagation_us},\"ser_us\":{serialization_us},\"wan\":{wan}",
                link_name(data, link)
            ));
        }
        SpanKind::Note { name, value } => {
            out.push_str(&format!(",\"note\":\"{name}\",\"value\":{value}"));
        }
        SpanKind::Fault { link, node } => {
            // u32::MAX marks "not the failing element" — a fault names either
            // the downed link or the crashed node, never both.
            if link != u32::MAX {
                out.push_str(&format!(",\"link\":\"{}\"", link_name(data, link)));
            }
            if node != u32::MAX {
                out.push_str(&format!(",\"node\":\"{}\"", node_name(data, node)));
            }
        }
        SpanKind::Retry { attempt, failover } => {
            out.push_str(&format!(",\"attempt\":{attempt},\"failover\":{failover}"));
        }
        SpanKind::Program | SpanKind::Branch | SpanKind::Delay => {}
    }
    out.push('}');
}

/// Renders Chrome `trace_event` JSON (the object form, `traceEvents` key),
/// loadable in Perfetto and `chrome://tracing`.
///
/// Lane assignment: each traced request gets its own `tid`, and each
/// `Parallel` arm (`Branch` span) gets a fresh sub-lane `tid`, so every
/// lane's `B`/`E` events are strictly nested. Timestamps are simulated
/// microseconds. At most `max_traces` traces are exported (0 = all) —
/// span logs stay complete via [`jsonl`]; the Chrome view is for eyeballs.
pub fn chrome_trace_json(data: &TraceData, max_traces: usize) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"mutsvc-sim\"}}",
    );
    let mut next_tid: u64 = 1;
    let take = if max_traces == 0 {
        data.traces.len()
    } else {
        max_traces.min(data.traces.len())
    };
    for trace in &data.traces[..take] {
        // children[i]: child span ids of span i, in creation order.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); trace.spans.len()];
        for span in &trace.spans[1..] {
            children[span.parent as usize].push(span.id);
        }
        let lane = next_tid;
        next_tid += 1;
        out.push_str(&format!(
            ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\"args\":{{\"name\":\"{} @",
            trace.meta.label
        ));
        esc(
            data.group_names
                .get(trace.meta.group as usize)
                .map_or("?", String::as_str),
            &mut out,
        );
        out.push_str("\"}}");
        emit_span(data, trace, &children, 0, lane, &mut next_tid, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

fn span_display_name(data: &TraceData, trace: &CompletedTrace, span: &Span) -> String {
    match span.kind {
        SpanKind::Request => format!("{:016x} {}", trace.trace_id, trace.meta.label),
        SpanKind::Program => "program".to_string(),
        SpanKind::Branch => "branch".to_string(),
        SpanKind::Cpu { node, .. } => format!("cpu {}", node_name(data, node)),
        SpanKind::Hop { link, wan, .. } => format!(
            "{} {}",
            if wan { "wan hop" } else { "hop" },
            link_name(data, link)
        ),
        SpanKind::Delay => "delay".to_string(),
        SpanKind::Note { name, .. } => name.to_string(),
        SpanKind::Fault { link, node } => {
            if node != u32::MAX {
                format!("fault node {}", node_name(data, node))
            } else {
                format!("fault link {}", link_name(data, link))
            }
        }
        SpanKind::Retry { attempt, .. } => format!("retry #{attempt}"),
    }
}

fn emit_span(
    data: &TraceData,
    trace: &CompletedTrace,
    children: &[Vec<u32>],
    span_id: u32,
    tid: u64,
    next_tid: &mut u64,
    out: &mut String,
) {
    let span = &trace.spans[span_id as usize];
    if let SpanKind::Note { name, value } = span.kind {
        out.push_str(&format!(
            ",\n{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\"args\":{{\"value\":{value}}}}}",
            span.start.as_micros()
        ));
        return;
    }
    let name = span_display_name(data, trace, span);
    out.push_str(&format!(
        ",\n{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"",
        span.start.as_micros()
    ));
    esc(&name, out);
    out.push('"');
    match span.kind {
        SpanKind::Request => {
            out.push_str(&format!(
                ",\"args\":{{\"wan_rts_logical\":{}}}",
                fmt_f64(trace.meta.wan_rts_logical)
            ));
        }
        SpanKind::Cpu { service_us, .. } => {
            out.push_str(&format!(",\"args\":{{\"service_us\":{service_us}}}"));
        }
        SpanKind::Hop {
            bytes,
            propagation_us,
            serialization_us,
            wan,
            ..
        } => {
            out.push_str(&format!(
                ",\"args\":{{\"bytes\":{bytes},\"prop_us\":{propagation_us},\"ser_us\":{serialization_us},\"wan\":{wan}}}"
            ));
        }
        SpanKind::Retry { attempt, failover } => {
            out.push_str(&format!(
                ",\"args\":{{\"attempt\":{attempt},\"failover\":{failover}}}"
            ));
        }
        _ => {}
    }
    out.push('}');
    for &child in &children[span_id as usize] {
        let child_span = &trace.spans[child as usize];
        let child_tid = if matches!(child_span.kind, SpanKind::Branch) {
            let t = *next_tid;
            *next_tid += 1;
            t
        } else {
            tid
        };
        emit_span(data, trace, children, child, child_tid, next_tid, out);
    }
    out.push_str(&format!(
        ",\n{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"",
        span.end.as_micros()
    ));
    esc(&name, out);
    out.push_str("\"}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_desim::trace::{TraceConfig, TraceMeta, Tracer};
    use mutsvc_desim::SimTime;

    fn sample_data() -> TraceData {
        let mut t = Tracer::new(TraceConfig::full());
        let us = SimTime::from_micros;
        let meta = TraceMeta {
            label: "Item",
            group: 1,
            client: 4,
            entry: 2,
            measured: true,
            wan_rts_logical: f64::NAN,
        };
        let root = t.start_request(us(10), meta).unwrap();
        let prog = t.open_span(root, us(10), SpanKind::Program);
        t.leaf(
            prog,
            us(10),
            us(20),
            SpanKind::Cpu {
                node: 2,
                service_us: 8,
            },
        );
        t.leaf(
            prog,
            us(20),
            us(120),
            SpanKind::Hop {
                link: 0,
                bytes: 512,
                propagation_us: 90,
                serialization_us: 5,
                wan: true,
            },
        );
        let b1 = t.open_span(prog, us(120), SpanKind::Branch);
        t.leaf(b1, us(120), us(130), SpanKind::Delay);
        t.close_span(b1, us(130));
        let b2 = t.open_span(prog, us(120), SpanKind::Branch);
        t.leaf(
            b2,
            us(120),
            us(145),
            SpanKind::Cpu {
                node: 7,
                service_us: 25,
            },
        );
        t.close_span(b2, us(145));
        t.note(prog, us(145), "fork", 3);
        t.close_span(prog, us(145));
        t.set_logical_wan(root, 1.0);
        t.finish_request(root, us(150));
        TraceData {
            traces: t.take_finished(),
            node_names: vec![
                "main".into(),
                "router".into(),
                "edge1".into(),
                "db".into(),
                "client-edge1".into(),
                "x5".into(),
                "x6".into(),
                "dbn".into(),
            ],
            link_names: vec!["edge1->router".into()],
            group_names: vec!["local".into(), "remote1".into()],
            db_node: 7,
            telemetry_names: Vec::new(),
            telemetry: Vec::new(),
        }
    }

    #[test]
    fn jsonl_is_one_line_per_span_with_meta() {
        let data = sample_data();
        let log = jsonl(&data);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), data.traces[0].spans.len());
        assert!(lines[0].contains("\"kind\":\"request\""));
        assert!(lines[0].contains("\"page\":\"Item\""));
        assert!(lines[0].contains("\"group\":\"remote1\""));
        assert!(lines[0].contains("\"wan_rts_logical\":1"));
        assert!(lines[0].contains("\"parent\":-1"));
        assert!(log.contains("\"link\":\"edge1->router\""));
        assert!(log.contains("\"wan\":true"));
        assert!(log.contains("\"note\":\"fork\""));
        // Determinism: rendering is a pure function of the data.
        assert_eq!(log, jsonl(&data));
    }

    #[test]
    fn chrome_json_has_balanced_nested_be_pairs() {
        let data = sample_data();
        let json = chrome_trace_json(&data, 0);
        // Minimal structural check without a JSON parser: equal numbers of
        // B and E events, and per-tid nesting validated by a scan.
        let b_count = json.matches("\"ph\":\"B\"").count();
        let e_count = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b_count, e_count);
        // request + program + cpu + hop + 2 branches + delay + branch-cpu
        assert_eq!(b_count, 8);
        assert!(json.contains("\"ph\":\"i\""), "fork note exported");
        assert!(json.contains("wan hop edge1->router"));
        assert!(json.ends_with("]}\n"));
        // Branch arms live on their own lanes.
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"tid\":3"));
    }

    #[test]
    fn page_breakdown_aggregates_measured_traces() {
        let data = sample_data();
        let rows = page_breakdown(&data);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.group, "remote1");
        assert_eq!(row.page, "Item");
        assert_eq!(row.count, 1);
        assert_eq!(row.wan_rts_logical, 1.0);
        assert_eq!(row.wan_rts_critical, 0.5);
        // db node is 7: the long branch's cpu is DB time.
        assert!((row.db_ms - 0.025).abs() < 1e-9);
        assert!((row.wan_propagation_ms - 0.09).abs() < 1e-9);
        assert!((row.mean_ms - 0.14).abs() < 1e-9);
    }
}
