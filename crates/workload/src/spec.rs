//! Workload specification: client groups, rates and soft delays (§3.3).

use serde::{Deserialize, Serialize};

use mutsvc_desim::fault::FaultSchedule;
use mutsvc_desim::time::{SimDuration, SimTime};
use mutsvc_desim::trace::TraceConfig;
use mutsvc_netsim::NodeId;

/// Tracing and telemetry policy for one run. Fully disabled by default:
/// the driver then never allocates a tracer buffer, never schedules the
/// telemetry cadence event, and each instrumentation site costs a single
/// branch (verified by the `--simperf` hot-path bench).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSettings {
    /// Master switch for span collection.
    pub enabled: bool,
    /// Head sampling: keep 1-in-N requests (`1` keeps everything).
    pub sample_every: u64,
    /// Additionally commit any request slower than the slowest committed
    /// so far.
    pub trace_slowest: bool,
    /// Telemetry snapshot cadence ([`SimDuration::ZERO`] disables the
    /// snapshot series; ignored unless `enabled`).
    pub telemetry_every: SimDuration,
}

impl TraceSettings {
    /// Tracing and telemetry off (the default).
    pub fn off() -> Self {
        TraceSettings {
            enabled: false,
            sample_every: 1,
            trace_slowest: false,
            telemetry_every: SimDuration::ZERO,
        }
    }

    /// Trace every request; snapshot telemetry every 5 simulated seconds.
    pub fn full() -> Self {
        TraceSettings {
            enabled: true,
            sample_every: 1,
            trace_slowest: true,
            telemetry_every: SimDuration::from_secs(5),
        }
    }

    /// Head-sample 1-in-`n` (plus slowest-so-far), telemetry every 5 s.
    pub fn sampled(n: u64) -> Self {
        TraceSettings {
            sample_every: n.max(1),
            ..TraceSettings::full()
        }
    }

    /// The desim-level tracer policy this spec maps to.
    pub fn tracer_config(&self) -> TraceConfig {
        TraceConfig {
            enabled: self.enabled,
            sample_every: self.sample_every.max(1),
            trace_slowest: self.trace_slowest,
        }
    }

    /// Whether the telemetry snapshot series is on.
    pub fn telemetry_enabled(&self) -> bool {
        self.enabled && !self.telemetry_every.is_zero()
    }
}

impl Default for TraceSettings {
    fn default() -> Self {
        TraceSettings::off()
    }
}

/// Windowed metrics policy for one run. Fully disabled by default: the
/// driver then never builds a [`mutsvc_desim::Recorder`], never schedules
/// the roll-cadence event, and each instrumentation site costs a single
/// branch — the same zero-cost-when-off contract as [`TraceSettings`],
/// pinned by the metrics-on/off parity test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsSettings {
    /// Master switch for the windowed recorder.
    pub enabled: bool,
    /// Window width series roll at (window `k` covers `[k·w, (k+1)·w)`
    /// of sim time). Ignored unless `enabled`.
    pub window: SimDuration,
}

impl MetricsSettings {
    /// Metrics off (the default).
    pub fn off() -> Self {
        MetricsSettings {
            enabled: false,
            window: SimDuration::ZERO,
        }
    }

    /// Roll windows every `window` of sim time.
    pub fn windowed(window: SimDuration) -> Self {
        MetricsSettings {
            enabled: true,
            window,
        }
    }

    /// Whether the windowed recorder is armed.
    pub fn active(&self) -> bool {
        self.enabled && !self.window.is_zero()
    }
}

impl Default for MetricsSettings {
    fn default() -> Self {
        MetricsSettings::off()
    }
}

/// Closed-loop adaptive placement policy for one run (DESIGN.md §6.8).
/// Fully disabled by default: the driver then never builds a controller,
/// never schedules the controller tick, and each instrumentation site costs
/// a single branch — the same zero-cost-when-off contract as
/// [`MetricsSettings`], pinned by the adaptive-off purity test.
///
/// The controller only observes *windowed metrics* rows, so an active
/// adaptive policy requires an active [`MetricsSettings`] whose window it
/// adopts as its observation granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSettings {
    /// Master switch for the live-migration controller.
    pub enabled: bool,
    /// Controller round cadence: how often observed telemetry is folded
    /// into a re-priced placement problem and a move is considered.
    /// Ignored unless `enabled`.
    pub cadence: SimDuration,
    /// Most migrations the controller may commit per round.
    pub budget_per_round: u32,
    /// Hysteresis: a round only commits moves whose modeled cost gain is
    /// at least this fraction of the current total cost, so telemetry
    /// noise cannot thrash components back and forth.
    pub hysteresis_pct: f64,
    /// After migrating, a component sits out of the search for this long.
    pub cooldown: SimDuration,
    /// Serialized component state size in bytes: prices the migration
    /// transfer that occupies the WAN link between old and new primary.
    pub state_bytes: u64,
}

impl AdaptiveSettings {
    /// Controller off (the default).
    pub fn off() -> Self {
        AdaptiveSettings {
            enabled: false,
            cadence: SimDuration::ZERO,
            budget_per_round: 0,
            hysteresis_pct: 0.0,
            cooldown: SimDuration::ZERO,
            state_bytes: 0,
        }
    }

    /// Controller on at the given round cadence, with the default
    /// conservative knobs: one move per round, 5 % hysteresis, a
    /// two-round cooldown, 4 MiB of component state.
    pub fn every(cadence: SimDuration) -> Self {
        AdaptiveSettings {
            enabled: true,
            cadence,
            budget_per_round: 1,
            hysteresis_pct: 0.05,
            cooldown: cadence * 2,
            state_bytes: 4 << 20,
        }
    }

    /// Whether the controller is armed.
    pub fn active(&self) -> bool {
        self.enabled && !self.cadence.is_zero()
    }
}

impl Default for AdaptiveSettings {
    fn default() -> Self {
        AdaptiveSettings::off()
    }
}

/// One scheduled load surge: a client group's offered rates scale by
/// `factor` over `[from, to)` (offsets from simulation start). The surge
/// sessions draw from their own RNG stream
/// ([`stream::SURGES`](mutsvc_desim::rng::stream::SURGES)), so an empty
/// surge list leaves a run byte-identical to a pre-surge build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Surge {
    /// Name of the client group whose load surges.
    pub group: String,
    /// Surge onset (offset from simulation start).
    pub from: SimDuration,
    /// Surge end: the extra sessions stop issuing at this offset.
    pub to: SimDuration,
    /// Rate multiplier during the window (`4.0` = flash crowd at 4× the
    /// steady rate; the extra sessions model `factor - 1` of offered load).
    pub factor: f64,
}

/// How the client/container stack reacts to injected faults.
///
/// All knobs are deterministic: backoff is computed from the attempt count
/// in simulated time (no wall clock), and failover re-targets requests by
/// descriptor, never by sampling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Retries after the first failed attempt (`0` fails immediately).
    pub max_retries: u32,
    /// First backoff delay; attempt `n` waits `base * 2^(n-1)`.
    pub backoff_base: SimDuration,
    /// Cap on the exponential backoff.
    pub backoff_cap: SimDuration,
    /// Re-target new requests from a crashed edge entry to the central
    /// server (the façade failover of §4.2's deployment flexibility).
    pub failover: bool,
    /// During a partition, let edge caches answer reads — each such
    /// response records its staleness bound. Off: those completions are
    /// counted as failures (strict consistency over availability).
    pub stale_serve: bool,
}

impl FaultPolicy {
    /// No resilience: no retries, no failover, strict staleness.
    pub fn none() -> Self {
        FaultPolicy {
            max_retries: 0,
            backoff_base: SimDuration::from_millis(500),
            backoff_cap: SimDuration::from_secs(8),
            failover: false,
            stale_serve: false,
        }
    }

    /// The resilient stack: capped-exponential retries, edge→main
    /// failover, and stale reads during partitions.
    pub fn resilient() -> Self {
        FaultPolicy {
            max_retries: 3,
            backoff_base: SimDuration::from_millis(500),
            backoff_cap: SimDuration::from_secs(8),
            failover: true,
            stale_serve: true,
        }
    }

    /// Backoff before retry attempt `n` (1-based), capped.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(20);
        self.backoff_cap.min(SimDuration::from_micros(
            self.backoff_base.as_micros() << exp,
        ))
    }
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy::none()
    }
}

/// Fault injection for one run: the scripted timeline plus the stack's
/// reaction policy. Default is fully off — an empty schedule adds zero
/// events, zero RNG draws and zero per-request work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSettings {
    /// The fault timeline (empty = faults off).
    #[serde(default)]
    pub schedule: FaultSchedule,
    /// RMI timeout: how long a requester waits on a lost message or a
    /// crashed callee before the attempt counts as failed.
    #[serde(default = "default_fault_timeout")]
    pub timeout: SimDuration,
    /// Retry/failover/stale-serve policy.
    #[serde(default)]
    pub policy: FaultPolicy,
}

fn default_fault_timeout() -> SimDuration {
    SimDuration::from_secs(2)
}

impl FaultSettings {
    /// Faults off (the default).
    pub fn off() -> Self {
        FaultSettings {
            schedule: FaultSchedule::none(),
            timeout: default_fault_timeout(),
            policy: FaultPolicy::none(),
        }
    }

    /// Whether any fault episode is scheduled.
    pub fn active(&self) -> bool {
        !self.schedule.is_empty()
    }
}

impl Default for FaultSettings {
    fn default() -> Self {
        FaultSettings::off()
    }
}

/// One group of clients co-located with an application server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientGroup {
    /// Group name ("local", "remote1", "remote2").
    pub name: String,
    /// The node the clients run on.
    pub client_node: NodeId,
    /// The application server the group sends its HTTP requests to.
    pub entry_node: NodeId,
    /// Aggregate browser request rate (requests/second).
    pub browser_rate: f64,
    /// Aggregate buyer/bidder request rate (requests/second).
    pub transactional_rate: f64,
}

/// A scheduled network perturbation (failure injection).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Perturbation {
    /// Offset from simulation start.
    pub at: SimDuration,
    /// What happens.
    pub action: NetAction,
}

/// Network-state changes available to perturbations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NetAction {
    /// Scale the latency of every link whose base latency is at least
    /// `threshold` (the WAN legs) by `factor`.
    ScaleWanLatency {
        /// Base-latency threshold selecting the links.
        threshold: SimDuration,
        /// Multiplier applied to the base latency.
        factor: f64,
    },
    /// Remove all latency overrides.
    Restore,
}

/// The complete load specification of one experiment.
///
/// Defaults reproduce §3.3: a combined 30 requests/s from 80 % browsers and
/// 20 % buyers/bidders, split evenly across three client groups (10 req/s
/// each), soft inter-request delays, one (simulated) hour of measurement
/// after warm-up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Client groups.
    pub groups: Vec<ClientGroup>,
    /// Soft delay: the fixed interval between successive request *sends*
    /// within a session ("effectively DELAY becomes the time interval
    /// between sending requests").
    pub soft_delay: SimDuration,
    /// Warm-up period excluded from statistics.
    pub warmup: SimDuration,
    /// Measured duration (after warm-up).
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Scheduled network perturbations (failure injection).
    pub perturbations: Vec<Perturbation>,
    /// Whether the driver may reuse memoized bound-page programs for
    /// replayable read binds (see DESIGN.md §6.2). On by default; turning it
    /// off forces every request through the full binder — useful for
    /// equivalence testing and as the baseline in `--simperf` benches.
    #[serde(default = "default_bind_cache")]
    pub bind_cache: bool,
    /// Run the driver as the pre-overhaul baseline: every request goes
    /// through the full binder, series ids are re-resolved through a cloned
    /// group-name `String` per request, and every simulator event pays a
    /// `Box<dyn FnOnce>` allocation. Simulated results are identical — only
    /// host-side cost differs — so `--simperf` can measure the overhaul's
    /// speedup in one process. Off by default.
    #[serde(default)]
    pub legacy_baseline: bool,
    /// Tracing and telemetry policy (off by default; see [`TraceSettings`]).
    #[serde(default)]
    pub trace: TraceSettings,
    /// Fault injection: schedule, RMI timeout and reaction policy (off by
    /// default; see [`FaultSettings`]).
    #[serde(default)]
    pub faults: FaultSettings,
    /// Windowed metrics policy (off by default; see [`MetricsSettings`]).
    #[serde(default)]
    pub metrics: MetricsSettings,
    /// Closed-loop adaptive placement (off by default; see
    /// [`AdaptiveSettings`]).
    #[serde(default)]
    pub adaptive: AdaptiveSettings,
    /// Scheduled load surges (empty by default; see [`Surge`]).
    #[serde(default)]
    pub surges: Vec<Surge>,
}

fn default_bind_cache() -> bool {
    true
}

impl WorkloadSpec {
    /// The paper's load: 10 req/s per group, 80/20 browser/transactional.
    pub fn paper_load(groups: Vec<ClientGroup>) -> Self {
        WorkloadSpec {
            groups,
            soft_delay: SimDuration::from_secs(7),
            warmup: SimDuration::from_secs(120),
            duration: SimDuration::from_secs(3_600),
            seed: 42,
            perturbations: Vec::new(),
            bind_cache: default_bind_cache(),
            legacy_baseline: false,
            trace: TraceSettings::off(),
            faults: FaultSettings::off(),
            metrics: MetricsSettings::off(),
            adaptive: AdaptiveSettings::off(),
            surges: Vec::new(),
        }
    }

    /// Sets the tracing/telemetry policy.
    pub fn with_trace(mut self, trace: TraceSettings) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the windowed metrics policy.
    pub fn with_metrics(mut self, metrics: MetricsSettings) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the fault-injection schedule and policy.
    pub fn with_faults(mut self, faults: FaultSettings) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the adaptive-placement policy.
    pub fn with_adaptive(mut self, adaptive: AdaptiveSettings) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Schedules a load surge.
    pub fn with_surge(mut self, surge: Surge) -> Self {
        self.surges.push(surge);
        self
    }

    /// Enables or disables the bound-program cache.
    pub fn with_bind_cache(mut self, enabled: bool) -> Self {
        self.bind_cache = enabled;
        self
    }

    /// Switches the run to the pre-overhaul baseline driver (full bind per
    /// request, per-request `String` clones, one boxed allocation per
    /// event). Implies a disabled bound-program cache.
    pub fn as_legacy_baseline(mut self) -> Self {
        self.legacy_baseline = true;
        self.bind_cache = false;
        self
    }

    /// Scales every group's request rates by `factor` (for high-load
    /// stress benches; session counts scale with the rates).
    pub fn scale_rates(mut self, factor: f64) -> Self {
        for g in &mut self.groups {
            g.browser_rate *= factor;
            g.transactional_rate *= factor;
        }
        self
    }

    /// Schedules a network perturbation.
    pub fn with_perturbation(mut self, at: SimDuration, action: NetAction) -> Self {
        self.perturbations.push(Perturbation { at, action });
        self
    }

    /// Scales warm-up and measured duration (for quick tests and benches).
    pub fn with_duration(mut self, warmup: SimDuration, duration: SimDuration) -> Self {
        self.warmup = warmup;
        self.duration = duration;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// End of the simulation (warm-up plus measurement).
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.duration
    }

    /// Number of concurrent sessions needed for `rate` with this soft delay.
    pub fn sessions_for_rate(&self, rate: f64) -> usize {
        (rate * self.soft_delay.as_secs_f64()).round().max(0.0) as usize
    }

    /// Aggregate offered load in requests/second.
    pub fn total_rate(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.browser_rate + g.transactional_rate)
            .sum()
    }
}

/// Builds the paper's three standard groups (10 req/s each, 80 % browser)
/// given the node placements.
pub fn paper_groups(
    local: (NodeId, NodeId),
    remote1: (NodeId, NodeId),
    remote2: (NodeId, NodeId),
) -> Vec<ClientGroup> {
    let mk = |name: &str, (client, entry): (NodeId, NodeId)| ClientGroup {
        name: name.to_string(),
        client_node: client,
        entry_node: entry,
        browser_rate: 8.0,
        transactional_rate: 2.0,
    };
    vec![
        mk("local", local),
        mk("remote1", remote1),
        mk("remote2", remote2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_netsim::TopologyBuilder;

    #[test]
    fn paper_load_matches_section_3_3() {
        let mut tb = TopologyBuilder::new();
        let a = tb.node("a", 1);
        let b = tb.node("b", 1);
        tb.duplex_link(a, b, SimDuration::from_millis(1), 1e9);
        let groups = paper_groups((a, a), (b, b), (b, b));
        let spec = WorkloadSpec::paper_load(groups);
        assert_eq!(spec.total_rate(), 30.0);
        assert_eq!(spec.sessions_for_rate(8.0), 56);
        assert_eq!(spec.sessions_for_rate(2.0), 14);
        assert_eq!(spec.horizon().as_secs_f64(), 3_720.0);
        let browser_share: f64 =
            spec.groups.iter().map(|g| g.browser_rate).sum::<f64>() / spec.total_rate();
        assert!((browser_share - 0.8).abs() < 1e-9);
    }
}
