//! Deterministic request tracing: span trees over simulated time.
//!
//! A [`Tracer`] collects one span tree per traced page request. Spans carry
//! sim-clock timestamps only — no wall clock anywhere — and trace IDs are
//! derived from `(client, per-client sequence)`, so two runs with the same
//! seed and configuration produce bit-identical traces regardless of host,
//! thread count, or wall-clock jitter.
//!
//! The tracer sits in the `desim` layer because it is pure bookkeeping over
//! [`SimTime`]: higher layers (the network job engine, the workload driver)
//! decide *what* to record and feed timestamps in. Disabled tracing costs a
//! single branch at each instrumentation site: [`Tracer::start_request`]
//! returns `None` and every downstream site checks an `Option<SpanCtx>`
//! that is statically `None` for the whole run.
//!
//! ## Span model
//!
//! ```text
//! Request                    root, one per traced page request
//! └── Program                the bound step program executing the page
//!     ├── Cpu{node}          one CPU service slice (wait + service)
//!     ├── Hop{link}          one link traversal (queue + serialize + propagate)
//!     ├── Delay              a pure think/latency step
//!     ├── Note{name}         instant annotation (bind counters, cache hits)
//!     └── Branch             one arm of a Parallel step (recursive)
//! ```
//!
//! Detached `Fork` work (asynchronous cache pushes) is *not* traced: it can
//! outlive the request that spawned it, and the paper's response-time tables
//! exclude it by construction. A `Note` records that a fork was launched.
//!
//! ## Sampling
//!
//! Head sampling keeps 1-in-N requests (`sample_every`), plus optionally
//! every request slower than the slowest committed so far
//! (`trace_slowest`). Unsampled requests are never buffered unless the
//! slowest-so-far policy needs a tentative buffer.

use crate::time::{SimDuration, SimTime};

/// Sentinel parent id for root spans.
pub const NO_PARENT: u32 = u32::MAX;

/// What a span describes. Leaf payloads carry enough to attribute time
/// without consulting the simulation again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanKind {
    /// Root: one page request from issue to completion.
    Request,
    /// A step program executing on behalf of the request.
    Program,
    /// One arm of a `Parallel` step.
    Branch,
    /// A CPU service slice on `node`; span duration = queueing + service.
    Cpu {
        /// Node index the slice ran on.
        node: u32,
        /// Pure service time (demand scaled by node speed), microseconds.
        service_us: u64,
    },
    /// One traversal of a link; span duration = queueing + serialization
    /// + propagation.
    Hop {
        /// Link index traversed.
        link: u32,
        /// Payload bytes serialized onto the link.
        bytes: u64,
        /// One-way propagation delay, microseconds.
        propagation_us: u64,
        /// Serialization (transmission) time, microseconds.
        serialization_us: u64,
        /// Whether the link is a wide-area leg.
        wan: bool,
    },
    /// A pure delay step (think time, fixed latencies).
    Delay,
    /// Instant annotation: a named counter observed at one instant.
    Note {
        /// Annotation name (static so spans stay `Copy`).
        name: &'static str,
        /// Observed value.
        value: u64,
    },
    /// An injected-fault encounter: the request hit a downed link, lost
    /// message or crashed node and waited out the failure-detection timeout.
    /// Span duration covers the timeout wait.
    Fault {
        /// Directed-link index hit (`u32::MAX` when the fault was a node).
        link: u32,
        /// Node index hit (`u32::MAX` when the fault was a link).
        node: u32,
    },
    /// A retry wait: the policy layer backing off before re-issuing the
    /// request. Span duration is the backoff delay.
    Retry {
        /// 1-based retry attempt number.
        attempt: u32,
        /// Whether this attempt failed over to the central server.
        failover: bool,
    },
}

impl SpanKind {
    /// Short stable label used by exporters.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Program => "program",
            SpanKind::Branch => "branch",
            SpanKind::Cpu { .. } => "cpu",
            SpanKind::Hop { .. } => "hop",
            SpanKind::Delay => "delay",
            SpanKind::Note { .. } => "note",
            SpanKind::Fault { .. } => "fault",
            SpanKind::Retry { .. } => "retry",
        }
    }
}

/// One node in a span tree. Spans are stored in creation order and
/// `id` is the index into the owning trace's span vector.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Index of this span within its trace.
    pub id: u32,
    /// Parent span index, or [`NO_PARENT`] for the root.
    pub parent: u32,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed. Equal to `start` for instant spans; set by
    /// [`Tracer::close_span`] / [`Tracer::finish_request`] for containers.
    pub end: SimTime,
    /// Payload.
    pub kind: SpanKind,
}

impl Span {
    /// Span duration (zero for instants and unclosed spans).
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Handle to an open span inside an active trace. Held by in-flight work
/// (the driver's inflight slot, the job engine's job slots) and passed back
/// into [`Tracer`] calls. Copy, 8 bytes: cheap to thread through job state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    slot: u32,
    span: u32,
}

/// Request-level metadata attached to a trace at start and enriched as the
/// bind resolves. Kept index-based (`u32` node ids, group index) so the
/// desim layer stays ignorant of topology types; exporters resolve names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceMeta {
    /// Page label (interned static string from the application model).
    pub label: &'static str,
    /// Client-group index in the workload spec.
    pub group: u32,
    /// Client node index.
    pub client: u32,
    /// Entry (first middleware) node index.
    pub entry: u32,
    /// Whether the request started inside the measured window.
    pub measured: bool,
    /// Logical WAN round trips per the binder's crossing list (static
    /// accounting, excludes sampled protocol chatter). Filled in by
    /// [`Tracer::set_logical_wan`] once the bind resolves; `f64::NAN`
    /// until then.
    pub wan_rts_logical: f64,
}

/// Tracing policy. Default is fully disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Master switch. When false every instrumentation site is one branch.
    pub enabled: bool,
    /// Keep 1-in-N requests (head sampling). `1` keeps everything.
    pub sample_every: u64,
    /// Additionally commit any request slower than the slowest committed
    /// so far, regardless of head sampling.
    pub trace_slowest: bool,
}

impl TraceConfig {
    /// Tracing off (the default; zero observable cost).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            sample_every: 1,
            trace_slowest: false,
        }
    }

    /// Trace every request plus slowest-so-far (no-op given every=1).
    pub fn full() -> Self {
        TraceConfig {
            enabled: true,
            sample_every: 1,
            trace_slowest: true,
        }
    }

    /// Head-sample 1-in-`n`, and always keep the slowest-so-far.
    pub fn sampled(n: u64) -> Self {
        TraceConfig {
            enabled: true,
            sample_every: n.max(1),
            trace_slowest: true,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// A committed span tree.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// Deterministic id: `client << 32 | per-client sequence`.
    pub trace_id: u64,
    /// Request metadata.
    pub meta: TraceMeta,
    /// Spans in creation order; `spans[i].id == i`.
    pub spans: Vec<Span>,
    /// Root span duration.
    pub duration: SimDuration,
}

struct ActiveTrace {
    trace_id: u64,
    meta: TraceMeta,
    spans: Vec<Span>,
    start: SimTime,
    sampled: bool,
}

/// Collects span trees for sampled requests. See module docs.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    /// Per-client trace sequence numbers (index = client node id).
    client_seq: Vec<u32>,
    /// Global request counter driving head sampling.
    requests_seen: u64,
    active: Vec<Option<ActiveTrace>>,
    free: Vec<u32>,
    /// Recycled span buffers from discarded tentative traces.
    pool: Vec<Vec<Span>>,
    committed: Vec<CompletedTrace>,
    slowest: SimDuration,
    dropped: u64,
}

impl std::fmt::Debug for ActiveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTrace")
            .field("trace_id", &self.trace_id)
            .field("spans", &self.spans.len())
            .finish()
    }
}

impl Tracer {
    /// Creates a tracer with the given policy.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            config,
            client_seq: Vec::new(),
            requests_seen: 0,
            active: Vec::new(),
            free: Vec::new(),
            pool: Vec::new(),
            committed: Vec::new(),
            slowest: SimDuration::ZERO,
            dropped: 0,
        }
    }

    /// A tracer that never records (the hot-path default).
    pub fn disabled() -> Self {
        Tracer::new(TraceConfig::off())
    }

    /// Whether tracing is on at all. The one branch on the hot path.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active policy.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Begins a trace for one page request. Returns `None` when tracing is
    /// disabled or head sampling skips the request (and slowest-so-far
    /// tracking is off). `meta.wan_rts_logical` should start as `f64::NAN`
    /// and be filled via [`Tracer::set_logical_wan`].
    pub fn start_request(&mut self, now: SimTime, meta: TraceMeta) -> Option<SpanCtx> {
        if !self.config.enabled {
            return None;
        }
        let seq_in_run = self.requests_seen;
        self.requests_seen += 1;
        let sampled = seq_in_run.is_multiple_of(self.config.sample_every);
        if !sampled && !self.config.trace_slowest {
            return None;
        }
        let client = meta.client as usize;
        if self.client_seq.len() <= client {
            self.client_seq.resize(client + 1, 0);
        }
        let seq = self.client_seq[client];
        self.client_seq[client] += 1;
        let trace_id = (u64::from(meta.client) << 32) | u64::from(seq);
        let mut spans = self.pool.pop().unwrap_or_default();
        spans.clear();
        spans.push(Span {
            id: 0,
            parent: NO_PARENT,
            start: now,
            end: now,
            kind: SpanKind::Request,
        });
        let trace = ActiveTrace {
            trace_id,
            meta,
            spans,
            start: now,
            sampled,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.active[slot as usize] = Some(trace);
                slot
            }
            None => {
                self.active.push(Some(trace));
                (self.active.len() - 1) as u32
            }
        };
        Some(SpanCtx { slot, span: 0 })
    }

    fn trace_mut(&mut self, ctx: SpanCtx) -> &mut ActiveTrace {
        self.active[ctx.slot as usize]
            .as_mut()
            .expect("span context references a finished trace")
    }

    /// Opens a container span under `ctx` and returns a context pointing at
    /// the new span. Close it with [`Tracer::close_span`].
    pub fn open_span(&mut self, ctx: SpanCtx, now: SimTime, kind: SpanKind) -> SpanCtx {
        let trace = self.trace_mut(ctx);
        let id = trace.spans.len() as u32;
        trace.spans.push(Span {
            id,
            parent: ctx.span,
            start: now,
            end: now,
            kind,
        });
        SpanCtx {
            slot: ctx.slot,
            span: id,
        }
    }

    /// Closes the span `ctx` points at.
    pub fn close_span(&mut self, ctx: SpanCtx, now: SimTime) {
        let span = ctx.span as usize;
        let trace = self.trace_mut(ctx);
        trace.spans[span].end = now;
    }

    /// Records an already-closed leaf span (CPU slice, link hop, delay)
    /// under `ctx`.
    pub fn leaf(&mut self, ctx: SpanCtx, start: SimTime, end: SimTime, kind: SpanKind) {
        let trace = self.trace_mut(ctx);
        let id = trace.spans.len() as u32;
        trace.spans.push(Span {
            id,
            parent: ctx.span,
            start,
            end,
            kind,
        });
    }

    /// Records an instant annotation under `ctx`.
    pub fn note(&mut self, ctx: SpanCtx, now: SimTime, name: &'static str, value: u64) {
        self.leaf(ctx, now, now, SpanKind::Note { name, value });
    }

    /// Fills the statically-derived WAN round-trip count for the request.
    pub fn set_logical_wan(&mut self, ctx: SpanCtx, round_trips: f64) {
        self.trace_mut(ctx).meta.wan_rts_logical = round_trips;
    }

    /// Completes the request: closes the root span, then either commits the
    /// trace (head-sampled, or slower than the slowest committed so far) or
    /// recycles its buffer. Returns whether the trace was committed.
    pub fn finish_request(&mut self, ctx: SpanCtx, now: SimTime) -> bool {
        let slot = ctx.slot as usize;
        let mut trace = self.active[slot]
            .take()
            .expect("finish_request on a finished trace");
        self.free.push(ctx.slot);
        trace.spans[0].end = now;
        let duration = now.saturating_since(trace.start);
        let keep = trace.sampled || (self.config.trace_slowest && duration > self.slowest);
        if keep {
            if duration > self.slowest {
                self.slowest = duration;
            }
            self.committed.push(CompletedTrace {
                trace_id: trace.trace_id,
                meta: trace.meta,
                spans: trace.spans,
                duration,
            });
        } else {
            self.dropped += 1;
            self.pool.push(trace.spans);
        }
        keep
    }

    /// Committed traces in completion order.
    pub fn finished(&self) -> &[CompletedTrace] {
        &self.committed
    }

    /// Takes ownership of the committed traces.
    pub fn take_finished(&mut self) -> Vec<CompletedTrace> {
        std::mem::take(&mut self.committed)
    }

    /// Requests observed while enabled (sampled or not).
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    /// Tentative traces discarded by sampling.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Traces currently in flight.
    pub fn in_flight(&self) -> usize {
        self.active.iter().filter(|t| t.is_some()).count()
    }
}

/// Response-time decomposition along the critical path of one trace.
///
/// The critical path follows the span tree from the root; at each
/// `Parallel` join it descends into the branch that finished last. Detached
/// forks never appear (they are not traced). All buckets are sums over
/// leaf spans on that path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathBreakdown {
    /// One-way propagation over wide-area links.
    pub wan_propagation: SimDuration,
    /// One-way propagation over local links.
    pub lan_propagation: SimDuration,
    /// Serialization (transmission) time on all links.
    pub serialization: SimDuration,
    /// Waiting for link capacity.
    pub link_queueing: SimDuration,
    /// Waiting for CPU capacity on non-database nodes.
    pub cpu_queueing: SimDuration,
    /// Pure CPU service on non-database nodes.
    pub service: SimDuration,
    /// Total time on database nodes (service plus queueing).
    pub db_time: SimDuration,
    /// Pure delay steps (fixed protocol latencies on the path).
    pub delay: SimDuration,
    /// WAN round trips on the critical path (0.5 per WAN hop traversed).
    pub wan_round_trips: f64,
    /// Root span duration (>= sum of buckets; slack is join overlap).
    pub total: SimDuration,
}

impl PathBreakdown {
    /// Merges another breakdown into this one (for averaging over traces).
    pub fn accumulate(&mut self, other: &PathBreakdown) {
        self.wan_propagation += other.wan_propagation;
        self.lan_propagation += other.lan_propagation;
        self.serialization += other.serialization;
        self.link_queueing += other.link_queueing;
        self.cpu_queueing += other.cpu_queueing;
        self.service += other.service;
        self.db_time += other.db_time;
        self.delay += other.delay;
        self.wan_round_trips += other.wan_round_trips;
        self.total += other.total;
    }
}

/// Decomposes one completed trace along its critical path.
///
/// `is_db_node` classifies node indices; time on database nodes lands in
/// [`PathBreakdown::db_time`] wholesale (the paper's tables fold DB
/// queueing into "database time").
pub fn critical_path(
    trace: &CompletedTrace,
    mut is_db_node: impl FnMut(u32) -> bool,
) -> PathBreakdown {
    // children[i] lists child span ids of span i, in creation order.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); trace.spans.len()];
    for span in &trace.spans[1..] {
        children[span.parent as usize].push(span.id);
    }
    let mut out = PathBreakdown {
        total: trace.duration,
        ..PathBreakdown::default()
    };
    walk(trace, &children, 0, &mut is_db_node, &mut out);
    out
}

fn walk(
    trace: &CompletedTrace,
    children: &[Vec<u32>],
    span_id: u32,
    is_db_node: &mut impl FnMut(u32) -> bool,
    out: &mut PathBreakdown,
) {
    let kids = &children[span_id as usize];
    let mut i = 0;
    while i < kids.len() {
        let span = &trace.spans[kids[i] as usize];
        match span.kind {
            SpanKind::Cpu { node, service_us } => {
                let service = SimDuration::from_micros(service_us);
                if is_db_node(node) {
                    out.db_time += span.duration();
                } else {
                    out.service += service;
                    out.cpu_queueing += span.duration().saturating_sub(service);
                }
                i += 1;
            }
            SpanKind::Hop {
                wan,
                propagation_us,
                serialization_us,
                ..
            } => {
                let prop = SimDuration::from_micros(propagation_us);
                let ser = SimDuration::from_micros(serialization_us);
                if wan {
                    out.wan_propagation += prop;
                    out.wan_round_trips += 0.5;
                } else {
                    out.lan_propagation += prop;
                }
                out.serialization += ser;
                out.link_queueing += span.duration().saturating_sub(prop + ser);
                i += 1;
            }
            SpanKind::Delay => {
                out.delay += span.duration();
                i += 1;
            }
            // Fault timeouts and retry backoffs are policy waits, not
            // network or CPU time: fold them into the delay bucket so the
            // decomposition still sums toward the root duration.
            SpanKind::Fault { .. } | SpanKind::Retry { .. } => {
                out.delay += span.duration();
                i += 1;
            }
            SpanKind::Note { .. } => {
                i += 1;
            }
            SpanKind::Program => {
                walk(trace, children, span.id, is_db_node, out);
                i += 1;
            }
            SpanKind::Branch => {
                // Consecutive Branch children are the arms of one Parallel
                // step (spawned together); the join waits for the slowest,
                // so the critical path descends into the latest-ending arm.
                let mut longest = span.id;
                let mut latest_end = span.end;
                let mut j = i + 1;
                while j < kids.len() {
                    let next = &trace.spans[kids[j] as usize];
                    if !matches!(next.kind, SpanKind::Branch) {
                        break;
                    }
                    if next.end > latest_end {
                        latest_end = next.end;
                        longest = next.id;
                    }
                    j += 1;
                }
                walk(trace, children, longest, is_db_node, out);
                i = j;
            }
            SpanKind::Request => {
                // Requests never nest; ignore defensively.
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    fn meta(client: u32) -> TraceMeta {
        TraceMeta {
            label: "Page",
            group: 0,
            client,
            entry: 1,
            measured: true,
            wan_rts_logical: f64::NAN,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(t.start_request(us(0), meta(3)).is_none());
        assert!(t.finished().is_empty());
        assert_eq!(t.requests_seen(), 0);
    }

    #[test]
    fn trace_ids_derive_from_client_and_sequence() {
        let mut t = Tracer::new(TraceConfig::full());
        for i in 0..3 {
            let ctx = t.start_request(us(i), meta(7)).unwrap();
            t.finish_request(ctx, us(i + 1));
        }
        let ctx = t.start_request(us(9), meta(2)).unwrap();
        t.finish_request(ctx, us(10));
        let ids: Vec<u64> = t.finished().iter().map(|tr| tr.trace_id).collect();
        assert_eq!(
            ids,
            vec![7 << 32, (7 << 32) | 1, (7 << 32) | 2, 2 << 32],
            "ids are (client << 32) | per-client seq"
        );
    }

    #[test]
    fn head_sampling_keeps_one_in_n() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            sample_every: 4,
            trace_slowest: false,
        });
        let mut kept = 0;
        for i in 0..16 {
            if let Some(ctx) = t.start_request(us(i), meta(0)) {
                t.finish_request(ctx, us(i + 1));
                kept += 1;
            }
        }
        assert_eq!(kept, 4);
        assert_eq!(t.finished().len(), 4);
        assert_eq!(t.requests_seen(), 16);
    }

    #[test]
    fn slowest_so_far_commits_regressions_only() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            sample_every: u64::MAX,
            trace_slowest: true,
        });
        // First request is always sampled (seq 0); durations then ratchet.
        let durations = [10u64, 5, 20, 15, 30];
        let mut now = 0;
        for d in durations {
            let ctx = t.start_request(us(now), meta(0)).unwrap();
            t.finish_request(ctx, us(now + d));
            now += 100;
        }
        let kept: Vec<u64> = t
            .finished()
            .iter()
            .map(|tr| tr.duration.as_micros())
            .collect();
        assert_eq!(kept, vec![10, 20, 30], "only new maxima commit");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn span_tree_shape_and_closure() {
        let mut t = Tracer::new(TraceConfig::full());
        let root = t.start_request(us(0), meta(0)).unwrap();
        let prog = t.open_span(root, us(0), SpanKind::Program);
        t.leaf(
            prog,
            us(0),
            us(5),
            SpanKind::Cpu {
                node: 1,
                service_us: 4,
            },
        );
        t.note(prog, us(5), "bind.remote_invocations", 3);
        t.close_span(prog, us(5));
        t.set_logical_wan(root, 1.0);
        assert!(t.finish_request(root, us(6)));
        let tr = &t.finished()[0];
        assert_eq!(tr.spans.len(), 4);
        assert_eq!(tr.spans[0].parent, NO_PARENT);
        assert_eq!(tr.spans[1].parent, 0);
        assert_eq!(tr.spans[2].parent, 1);
        assert_eq!(tr.spans[0].duration(), SimDuration::from_micros(6));
        assert_eq!(tr.meta.wan_rts_logical, 1.0);
    }

    /// Builds: request → program → [cpu 10us(6 service), wan hop, branch
    /// pair where the longer branch holds a db cpu slice, delay].
    fn sample_trace() -> CompletedTrace {
        let mut t = Tracer::new(TraceConfig::full());
        let root = t.start_request(us(0), meta(0)).unwrap();
        let prog = t.open_span(root, us(0), SpanKind::Program);
        t.leaf(
            prog,
            us(0),
            us(10),
            SpanKind::Cpu {
                node: 1,
                service_us: 6,
            },
        );
        t.leaf(
            prog,
            us(10),
            us(130),
            SpanKind::Hop {
                link: 0,
                bytes: 2_000,
                propagation_us: 100,
                serialization_us: 15,
                wan: true,
            },
        );
        let short = t.open_span(prog, us(130), SpanKind::Branch);
        t.leaf(short, us(130), us(140), SpanKind::Delay);
        t.close_span(short, us(140));
        let long = t.open_span(prog, us(130), SpanKind::Branch);
        t.leaf(
            long,
            us(130),
            us(160),
            SpanKind::Cpu {
                node: 9,
                service_us: 20,
            },
        );
        t.close_span(long, us(160));
        t.leaf(prog, us(160), us(170), SpanKind::Delay);
        t.close_span(prog, us(170));
        t.finish_request(root, us(170));
        t.take_finished().pop().unwrap()
    }

    #[test]
    fn critical_path_attributes_buckets() {
        let tr = sample_trace();
        let bd = critical_path(&tr, |node| node == 9);
        assert_eq!(bd.service, SimDuration::from_micros(6));
        assert_eq!(bd.cpu_queueing, SimDuration::from_micros(4));
        assert_eq!(bd.wan_propagation, SimDuration::from_micros(100));
        assert_eq!(bd.serialization, SimDuration::from_micros(15));
        assert_eq!(bd.link_queueing, SimDuration::from_micros(5));
        assert_eq!(bd.wan_round_trips, 0.5);
        // The longer branch wins: db time 30us, the 10us delay arm is off
        // the critical path; only the trailing 10us delay counts.
        assert_eq!(bd.db_time, SimDuration::from_micros(30));
        assert_eq!(bd.delay, SimDuration::from_micros(10));
        assert_eq!(bd.total, SimDuration::from_micros(170));
    }

    #[test]
    fn slot_reuse_keeps_traces_separate() {
        let mut t = Tracer::new(TraceConfig::full());
        let a = t.start_request(us(0), meta(0)).unwrap();
        t.finish_request(a, us(1));
        let b = t.start_request(us(2), meta(0)).unwrap();
        let prog = t.open_span(b, us(2), SpanKind::Program);
        t.close_span(prog, us(3));
        t.finish_request(b, us(3));
        assert_eq!(t.finished().len(), 2);
        assert_eq!(t.finished()[0].spans.len(), 1);
        assert_eq!(t.finished()[1].spans.len(), 2);
        assert_eq!(t.in_flight(), 0);
    }
}
