//! Seeded randomness helpers.
//!
//! All stochastic choices in the simulator flow through a [`SimRng`], a
//! ChaCha8-based generator with explicit seeding so that every experiment is
//! reproducible. Derived streams ([`SimRng::derive`]) give independent,
//! stable sub-streams to different model parts (workload generation, protocol
//! jitter, …) so that adding draws to one part does not perturb another.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::time::SimDuration;

/// Named derived-stream identifiers.
///
/// Every model part that draws randomness derives its own sub-stream from
/// the experiment seed via [`SimRng::derive`], so adding draws to one part
/// never perturbs another. The identifiers are part of the determinism
/// contract: renumbering them changes every same-seed replay.
pub mod stream {
    /// Client session behaviour: page choices, think times, arrivals.
    pub const SESSIONS: u64 = 1;
    /// World-level protocol jitter (sampled RMI chatter).
    pub const WORLD: u64 = 2;
    /// Fault-schedule generation ([`crate::fault::FaultSchedule::random`]).
    /// Independent of the workload streams, so enabling an (even empty)
    /// fault schedule cannot shift arrival or think-time draws.
    pub const FAULTS: u64 = 3;
    /// Load-surge session generation (flash crowds, diurnal shifts).
    /// Independent of `SESSIONS`, so a run with an empty surge list draws
    /// nothing from it and stays byte-identical to a pre-surge build.
    pub const SURGES: u64 = 4;

    /// The per-shard variant of a base stream, for conservative-parallel
    /// runs (see [`crate::shard`]): shard `index`'s copy of e.g. `SESSIONS`.
    ///
    /// The shard index (plus one) lives in the high 32 bits, so shard
    /// streams can never collide with the global streams above (whose high
    /// bits are zero) or with each other. Like the identifiers themselves,
    /// this encoding is part of the determinism contract.
    pub const fn shard(base: u64, index: usize) -> u64 {
        base | ((index as u64 + 1) << 32)
    }
}

/// A deterministic random number generator for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream identified by `stream`.
    ///
    /// Two derivations with distinct identifiers are statistically
    /// independent; the same identifier always yields the same stream.
    pub fn derive(&self, stream: u64) -> SimRng {
        let mut rng = self.inner.clone();
        rng.set_stream(stream);
        rng.set_word_pos(0);
        SimRng { inner: rng }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty set");
        self.inner.random_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return false;
        }
        if p == 1.0 {
            return true;
        }
        self.inner.random::<f64>() < p
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// Used for Poisson arrival processes and think-time jitter.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        let u: f64 = self.inner.random::<f64>();
        // Inverse-CDF; (1 - u) avoids ln(0).
        let sample = -(1.0 - u).ln() * mean.as_secs_f64();
        SimDuration::from_secs_f64(sample)
    }

    /// Draws an index according to non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted draw from an empty set");
        let total: f64 = weights.iter().copied().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut draw = self.inner.random::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }

    /// Access to the underlying `rand` RNG for distribution adapters.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.uniform().to_bits() == b.uniform().to_bits())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn derived_streams_are_stable_and_distinct() {
        let root = SimRng::seed_from_u64(7);
        let mut s1a = root.derive(1);
        let mut s1b = root.derive(1);
        let mut s2 = root.derive(2);
        for _ in 0..50 {
            assert_eq!(s1a.uniform().to_bits(), s1b.uniform().to_bits());
        }
        let mut s1c = root.derive(1);
        let same = (0..32)
            .filter(|_| s1c.uniform().to_bits() == s2.uniform().to_bits())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from_u64(99);
        let mean = SimDuration::from_millis(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_millis_f64()).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 100.0).abs() < 3.0,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn exponential_of_zero_mean_is_zero() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.exponential(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from_u64(5);
        let weights = [0.1, 0.0, 0.9];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let share2 = counts[2] as f64 / 10_000.0;
        assert!((share2 - 0.9).abs() < 0.03, "share {share2}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn index_covers_domain() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn index_on_empty_panics() {
        SimRng::seed_from_u64(0).index(0);
    }

    /// The fault stream is independent: draining it (as fault-schedule
    /// generation does) leaves the session and world streams bit-identical,
    /// so enabling an empty fault schedule cannot perturb workload arrival
    /// or think-time draws.
    #[test]
    fn fault_stream_does_not_perturb_workload_streams() {
        let root = SimRng::seed_from_u64(4242);
        let baseline_sessions: Vec<u64> = {
            let mut s = root.derive(stream::SESSIONS);
            (0..256).map(|_| s.uniform().to_bits()).collect()
        };
        let baseline_world: Vec<u64> = {
            let mut w = root.derive(stream::WORLD);
            (0..256).map(|_| w.uniform().to_bits()).collect()
        };

        // Now derive and heavily consume the fault stream first, as a run
        // with fault generation enabled would.
        let mut faults = root.derive(stream::FAULTS);
        for _ in 0..1_000 {
            faults.uniform();
        }
        let mut s = root.derive(stream::SESSIONS);
        let mut w = root.derive(stream::WORLD);
        for i in 0..256 {
            assert_eq!(s.uniform().to_bits(), baseline_sessions[i]);
            assert_eq!(w.uniform().to_bits(), baseline_world[i]);
        }
    }

    #[test]
    fn named_streams_are_distinct() {
        let root = SimRng::seed_from_u64(1);
        let mut a = root.derive(stream::SESSIONS);
        let mut b = root.derive(stream::WORLD);
        let mut c = root.derive(stream::FAULTS);
        let same_ab = (0..32)
            .filter(|_| a.uniform().to_bits() == b.uniform().to_bits())
            .count();
        let same_bc = (0..32)
            .filter(|_| b.uniform().to_bits() == c.uniform().to_bits())
            .count();
        assert!(same_ab < 4 && same_bc < 4);
    }
}
