//! Conservative parallel execution of sharded simulations.
//!
//! The wide-area model has a built-in lookahead: hosts in different regions
//! only interact through WAN links costing ≥100 ms one-way, so a per-region
//! shard can safely simulate a full lookahead window `[k·L, (k+1)·L)` without
//! observing any other shard — every cross-shard message sent inside window
//! `k` arrives at or after the window's end. The engine here exploits that
//! with the textbook conservative (Chandy–Misra style) discipline, but
//! *null-message-free*: instead of per-link null messages, all shards
//! advance in lockstep windows separated by one barrier each.
//!
//! Per window, each shard:
//!
//! 1. drains its mailbox of envelopes routed by other shards,
//! 2. delivers the due ones (`recv_at` inside the window) in the canonical
//!    `(recv_at, src_shard, src_seq)` order,
//! 3. advances its local event queue through the half-open window
//!    ([`Simulation::run_before`]), accumulating outbound sends,
//! 4. stamps each send with its per-shard emission sequence and routes it
//!    into the destination shard's mailbox (asserting the conservative
//!    contract `recv_at >= window end`),
//!
//! then waits on the barrier. One barrier per window suffices: a message
//! routed while a peer is mid-window is not due before the *next* window,
//! and the barrier orders every window-`k` route before every window-`k+1`
//! drain, so the set of due envelopes at each drain — and therefore the
//! entire execution — is independent of thread count and scheduling. Runs
//! with 1, 2, 4 or 8 threads are byte-identical by construction.
//!
//! [`Simulation::run_before`]: crate::sim::Simulation::run_before

use std::sync::{Barrier, Mutex};

use crate::time::{SimDuration, SimTime};

/// A simulation shard drivable by the conservative engine.
///
/// Implementations typically wrap a [`Simulation`](crate::sim::Simulation)
/// over a shard-local world; the engine never touches the world directly,
/// so only `Msg` and `Out` cross threads.
pub trait ShardWorld: Sized {
    /// A cross-shard message (timestamped at its receive time).
    type Msg: Send + 'static;
    /// The shard's mergeable result.
    type Out: Send + 'static;

    /// Delivers a cross-shard message timestamped `at`. Called before
    /// [`advance`](ShardWorld::advance) for the window containing `at`,
    /// in canonical `(at, from, emission seq)` order; `at` is never before
    /// the current window's start.
    fn deliver(&mut self, at: SimTime, from: usize, msg: Self::Msg);

    /// Advances the shard-local clock through `[now, upto)` — or through
    /// `[now, upto]` when `closing` marks the final window — pushing every
    /// cross-shard send emitted along the way into `outbox`, in emission
    /// order. Sends must respect the lookahead: `recv_at >= upto` (checked
    /// by the engine outside the closing window).
    fn advance(&mut self, upto: SimTime, closing: bool, outbox: &mut Outbox<Self::Msg>);

    /// Consumes the shard after the final window, producing its result.
    fn finish(self) -> Self::Out;
}

/// Cross-shard sends accumulated by one shard during one window.
#[derive(Debug)]
pub struct Outbox<M> {
    sends: Vec<(usize, SimTime, M)>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { sends: Vec::new() }
    }

    /// Queues `msg` for delivery to shard `dest` at absolute time `recv_at`.
    pub fn send(&mut self, dest: usize, recv_at: SimTime, msg: M) {
        self.sends.push((dest, recv_at, msg));
    }
}

/// An in-flight cross-shard message with its deterministic ordering key.
#[derive(Debug)]
struct Envelope<M> {
    recv_at: SimTime,
    src_shard: u32,
    src_seq: u64,
    msg: M,
}

/// A global controller driven at every conservative window boundary.
///
/// The coordinator closes the loop between shards that otherwise only talk
/// through timestamped messages: at the end of window `k` every shard is
/// *observed*, one *decision* is taken over the merged observations, and the
/// resulting *directive* is applied to every shard before window `k+1`
/// starts. Three properties make this deterministic at any thread count:
///
/// 1. observations are collected after the window barrier discipline has
///    made every shard's state at `window_end` thread-invisible,
/// 2. [`decide`](Coordinator::decide) sees them sorted by shard index — a
///    pure function of simulated history, never of collection order,
/// 3. the directive is published once, behind a barrier, before any shard
///    resumes.
///
/// Per coordinated window the engine pays two extra barriers (observations
/// in; directive out). Coordinators that can never act set
/// [`ACTIVE`](Coordinator::ACTIVE) to `false`, which statically removes the
/// extra barriers and every lock touch — the uncoordinated engine's exact
/// execution.
pub trait Coordinator<S: ShardWorld>: Send {
    /// Per-shard observation extracted at a window boundary (`None` when the
    /// shard has nothing new to report).
    type Obs: Send;
    /// A global decision broadcast to every shard.
    type Directive: Clone + Send;

    /// Statically gates the coordination phases. `false` makes the engine
    /// skip observe/decide/apply entirely.
    const ACTIVE: bool = true;

    /// Extracts shard `index`'s observation at `window_end`. Called for
    /// every shard each window, on the worker thread owning the shard, in
    /// shard-index order within a worker.
    fn observe(&mut self, index: usize, shard: &mut S, window_end: SimTime) -> Option<Self::Obs>;

    /// Takes the global decision for the window just closed. `obs` holds
    /// every non-`None` observation sorted by shard index. Called exactly
    /// once per window, on one thread, after all observations are in.
    fn decide(
        &mut self,
        window_end: SimTime,
        obs: Vec<(usize, Self::Obs)>,
    ) -> Option<Self::Directive>;

    /// Applies the window's directive to shard `index` before the next
    /// window starts. Called for every shard, on its owning worker thread.
    fn apply(
        &mut self,
        index: usize,
        shard: &mut S,
        window_end: SimTime,
        directive: &Self::Directive,
    );
}

/// The inert coordinator: statically inactive, so coordinated execution
/// degenerates to the plain conservative engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCoordinator;

impl<S: ShardWorld> Coordinator<S> for NoCoordinator {
    type Obs = ();
    type Directive = ();
    const ACTIVE: bool = false;

    fn observe(&mut self, _: usize, _: &mut S, _: SimTime) -> Option<()> {
        None
    }
    fn decide(&mut self, _: SimTime, _: Vec<(usize, ())>) -> Option<()> {
        None
    }
    fn apply(&mut self, _: usize, _: &mut S, _: SimTime, (): &()) {}
}

/// Runs `shard_count` shards to `horizon` on up to `threads` OS threads,
/// with conservative windows of width `lookahead`.
///
/// `factory(i)` builds shard `i` *inside* its worker thread — shard worlds
/// never cross a thread boundary, so they need not be `Send` (event queues
/// hold `Box<dyn FnOnce>` payloads). Shards are distributed round-robin
/// (`i % threads`), and each worker steps its shards in index order within
/// every window, so the execution — including every per-shard event-queue
/// sequence number — is a pure function of `(shard_count, lookahead,
/// horizon, factory)`: thread count only changes wall-clock time.
///
/// Returns the shard results in shard-index order.
///
/// # Panics
///
/// Panics if `lookahead` is zero, or when a shard violates the conservative
/// contract by emitting a send with `recv_at` before its window's end.
pub fn run_conservative<S, F>(
    shard_count: usize,
    threads: usize,
    lookahead: SimDuration,
    horizon: SimTime,
    factory: F,
) -> Vec<S::Out>
where
    S: ShardWorld,
    F: Fn(usize) -> S + Sync,
{
    run_coordinated(
        shard_count,
        threads,
        lookahead,
        horizon,
        factory,
        NoCoordinator,
    )
    .0
}

/// [`run_conservative`] with a [`Coordinator`] closing the loop at every
/// window boundary: observe all shards → one global decision → apply the
/// directive everywhere, separated by barriers so the coordination round is
/// a pure function of simulated history. Returns the shard results and the
/// coordinator (which typically carries its decision log).
///
/// The closing window is not coordinated — shards are consumed by
/// [`finish`](ShardWorld::finish) immediately after it, so a directive could
/// never take effect.
///
/// # Panics
///
/// Same contract as [`run_conservative`].
pub fn run_coordinated<S, F, C>(
    shard_count: usize,
    threads: usize,
    lookahead: SimDuration,
    horizon: SimTime,
    factory: F,
    coordinator: C,
) -> (Vec<S::Out>, C)
where
    S: ShardWorld,
    F: Fn(usize) -> S + Sync,
    C: Coordinator<S>,
{
    assert!(!lookahead.is_zero(), "conservative lookahead must be > 0");
    if shard_count == 0 {
        return (Vec::new(), coordinator);
    }
    let threads = threads.clamp(1, shard_count);
    let la = lookahead.as_micros();
    let span = horizon.as_micros();
    // Window k covers [k·L, (k+1)·L); the last window closes at `horizon`
    // inclusively, so boundary events fire exactly as one run_until would.
    let windows = (span / la + u64::from(!span.is_multiple_of(la))).max(1);

    let mailboxes: Vec<Mutex<Vec<Envelope<S::Msg>>>> =
        (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(threads);
    let outs: Mutex<Vec<Option<S::Out>>> = Mutex::new((0..shard_count).map(|_| None).collect());
    // Coordination state: observations pooled during a window, the leader's
    // directive published between the two coordination barriers.
    let coord: Mutex<C> = Mutex::new(coordinator);
    let obs_pool: Mutex<Vec<(usize, C::Obs)>> = Mutex::new(Vec::new());
    let directive: Mutex<Option<C::Directive>> = Mutex::new(None);

    // (index, shard, undelivered envelopes, emission counter)
    type LocalShard<S> = (usize, S, Vec<Envelope<<S as ShardWorld>::Msg>>, u64);
    let run_worker = |worker: usize| {
        let mut local: Vec<LocalShard<S>> = (worker..shard_count)
            .step_by(threads)
            .map(|i| (i, factory(i), Vec::new(), 0))
            .collect();
        let mut outbox = Outbox::new();
        for window in 0..windows {
            let closing = window + 1 == windows;
            let wend = if closing {
                horizon
            } else {
                SimTime::from_micros(la * (window + 1))
            };
            for (idx, shard, pending, emitted) in &mut local {
                {
                    let mut mailbox = mailboxes[*idx].lock().expect("shard mailbox poisoned");
                    pending.append(&mut mailbox);
                }
                // Split out the envelopes due this window. The closing
                // window is inclusive, matching run_until.
                let (mut due, rest): (Vec<_>, Vec<_>) = pending
                    .drain(..)
                    .partition(|e| e.recv_at < wend || (closing && e.recv_at == wend));
                *pending = rest;
                due.sort_by_key(|e| (e.recv_at, e.src_shard, e.src_seq));
                for e in due {
                    shard.deliver(e.recv_at, e.src_shard as usize, e.msg);
                }
                shard.advance(wend, closing, &mut outbox);
                for (dest, recv_at, msg) in outbox.sends.drain(..) {
                    *emitted += 1;
                    if closing {
                        // Past the horizon: unreceivable in every execution,
                        // dropped identically at any thread count.
                        continue;
                    }
                    assert!(
                        recv_at >= wend,
                        "conservative violation: shard {idx} sent a message \
                         due at {recv_at:?} inside window ending at {wend:?}",
                    );
                    mailboxes[dest]
                        .lock()
                        .expect("shard mailbox poisoned")
                        .push(Envelope {
                            recv_at,
                            src_shard: *idx as u32,
                            src_seq: *emitted,
                            msg,
                        });
                }
            }
            if C::ACTIVE && !closing {
                // Coordination round. Observations first, still pre-barrier:
                // each worker reads only shards it owns.
                {
                    let mut coord = coord.lock().expect("coordinator poisoned");
                    let mut pool = obs_pool.lock().expect("observation pool poisoned");
                    for (idx, shard, _, _) in &mut local {
                        if let Some(obs) = coord.observe(*idx, shard, wend) {
                            pool.push((*idx, obs));
                        }
                    }
                }
                // Barrier 1: every observation (and every routed send) in.
                if barrier.wait().is_leader() {
                    let mut obs =
                        std::mem::take(&mut *obs_pool.lock().expect("observation pool poisoned"));
                    // Collection order depends on worker scheduling; the
                    // decision input must not.
                    obs.sort_by_key(|(idx, _)| *idx);
                    *directive.lock().expect("directive slot poisoned") = coord
                        .lock()
                        .expect("coordinator poisoned")
                        .decide(wend, obs);
                }
                // Barrier 2: the directive is published; apply to owned
                // shards. Every worker finishes applying before it can pass
                // the *next* window's barrier 1, where the slot is rewritten.
                barrier.wait();
                let published = directive.lock().expect("directive slot poisoned").clone();
                if let Some(d) = published {
                    let mut coord = coord.lock().expect("coordinator poisoned");
                    for (idx, shard, _, _) in &mut local {
                        coord.apply(*idx, shard, wend, &d);
                    }
                }
            }
            barrier.wait();
        }
        let mut outs = outs.lock().expect("shard outputs poisoned");
        for (idx, shard, pending, _) in local {
            // Envelopes due past the horizon are dropped, exactly like
            // sends emitted during the closing window.
            debug_assert!(
                pending.iter().all(|e| e.recv_at > horizon),
                "shard {idx} finished with deliverable envelopes"
            );
            outs[idx] = Some(shard.finish());
        }
    };

    if threads == 1 {
        // Degenerate case on the caller thread: no spawn cost, and contract
        // violations surface as ordinary panics instead of a poisoned scope.
        run_worker(0);
    } else {
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let run_worker = &run_worker;
                std::thread::Builder::new()
                    .name(format!("desim-shard-{worker}"))
                    .spawn_scoped(scope, move || run_worker(worker))
                    .expect("spawning shard worker");
            }
        });
    }

    let outs = outs
        .into_inner()
        .expect("shard outputs poisoned")
        .into_iter()
        .map(|out| out.expect("every shard produces an output"))
        .collect();
    (outs, coord.into_inner().expect("coordinator poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;

    /// One delay ≥ the 100 ms lookahead, one well past it: messages land in
    /// the very next window and several windows out, respectively.
    const DELAYS_US: [u64; 2] = [150_000, 470_000];
    const LOOKAHEAD: SimDuration = SimDuration::from_millis(100);
    const HORIZON: SimTime = SimTime::from_secs(10);

    struct RingState {
        idx: usize,
        n: usize,
        log: Vec<(u64, usize, u64)>,
        outgoing: Vec<(usize, SimTime, u64)>,
    }

    /// A shard wrapping a real `Simulation`: every delivered token is logged
    /// and forwarded around the ring with a WAN-scale delay until it expires.
    struct RingShard {
        sim: Simulation<RingState>,
    }

    impl RingShard {
        fn new(idx: usize, n: usize) -> Self {
            let mut sim = Simulation::new(RingState {
                idx,
                n,
                log: Vec::new(),
                outgoing: Vec::new(),
            });
            // Each shard seeds a couple of tokens at staggered times.
            for k in 0..2u64 {
                let at = SimTime::from_micros(idx as u64 * 1_000 + k * 77_000);
                sim.schedule_at(at, move |s: &mut RingState, ctx| {
                    forward(s, ctx.now(), 40 + k);
                });
            }
            RingShard { sim }
        }
    }

    fn forward(s: &mut RingState, now: SimTime, ttl: u64) {
        s.log.push((now.as_micros(), s.idx, ttl));
        if ttl > 0 {
            let delay = DELAYS_US[(ttl as usize + s.idx) % DELAYS_US.len()];
            let dest = (s.idx + 1) % s.n;
            s.outgoing
                .push((dest, now + SimDuration::from_micros(delay), ttl - 1));
        }
    }

    impl ShardWorld for RingShard {
        type Msg = u64;
        type Out = (Vec<(u64, usize, u64)>, u64);

        fn deliver(&mut self, at: SimTime, _from: usize, ttl: u64) {
            self.sim
                .schedule_at(at, move |s: &mut RingState, ctx| forward(s, ctx.now(), ttl));
        }

        fn advance(&mut self, upto: SimTime, closing: bool, outbox: &mut Outbox<u64>) {
            if closing {
                self.sim.run_until(upto);
            } else {
                self.sim.run_before(upto);
            }
            let state = self.sim.world_mut();
            for (dest, recv_at, ttl) in state.outgoing.drain(..) {
                outbox.send(dest, recv_at, ttl);
            }
        }

        fn finish(self) -> Self::Out {
            let fired = self.sim.events_fired();
            (self.sim.into_world().log, fired)
        }
    }

    fn run_ring(shards: usize, threads: usize) -> Vec<(Vec<(u64, usize, u64)>, u64)> {
        run_conservative(shards, threads, LOOKAHEAD, HORIZON, |i| {
            RingShard::new(i, shards)
        })
    }

    #[test]
    fn thread_count_is_invisible() {
        let reference = run_ring(5, 1);
        for threads in [2, 4, 8, 16] {
            assert_eq!(reference, run_ring(5, threads), "threads={threads}");
        }
    }

    #[test]
    fn tokens_actually_cross_shards() {
        let outs = run_ring(3, 2);
        // 2 seeds per shard, ttl 40/41, ~5 s of ring hops in a 10 s horizon:
        // every shard both originates and receives traffic.
        for (idx, (log, fired)) in outs.iter().enumerate() {
            assert!(*fired > 10, "shard {idx} fired only {fired} events");
            assert!(
                log.iter().any(|&(_, i, ttl)| i == idx && ttl < 40),
                "shard {idx} never received a forwarded token"
            );
        }
        // ~10 s of 150/470 ms hops: each of the 6 tokens makes dozens.
        let total: usize = outs.iter().map(|(log, _)| log.len()).sum();
        assert!(total > 100, "only {total} hops logged");
    }

    #[test]
    fn single_shard_matches_plain_sequential_execution() {
        // With one shard the engine degenerates to windowed sequential
        // execution, which must equal a plain event-by-event replay that
        // delivers each self-send at its receive time.
        // Advance in strides no longer than the model's minimum send delay:
        // any event fired inside a stride emits sends due at or after the
        // stride's end, so absorbing `outgoing` at each boundary sees every
        // delivery before the clock could move past its receive time.
        let step = SimDuration::from_micros(*DELAYS_US.iter().min().unwrap());
        let mut plain = RingShard::new(0, 1);
        let mut pending: Vec<(SimTime, u64)> = Vec::new();
        let mut now = SimTime::ZERO;
        loop {
            // Absorb sends emitted so far (in emission order, like src_seq).
            let state = plain.sim.world_mut();
            pending.extend(state.outgoing.drain(..).map(|(_, at, ttl)| (at, ttl)));
            // Earliest reachable delivery; emission order breaks time ties.
            let next = (0..pending.len())
                .filter(|&i| pending[i].0 <= HORIZON && pending[i].0 <= now + step)
                .min_by_key(|&i| (pending[i].0, i));
            if let Some(i) = next {
                let (at, ttl) = pending.remove(i);
                // Local events up to the receive time fire first (they carry
                // earlier queue sequence numbers in the engine too), then
                // the delivery itself, so its sends surface immediately.
                plain.sim.run_until(at);
                plain
                    .sim
                    .schedule_at(at, move |s: &mut RingState, ctx| forward(s, ctx.now(), ttl));
                plain.sim.run_until(at);
                now = at;
            } else {
                if now == HORIZON {
                    break;
                }
                now = (now + step).min(HORIZON);
                plain.sim.run_until(now);
            }
        }
        let plain_out = plain.finish();
        let sharded = run_ring(1, 4);
        assert_eq!(sharded.len(), 1);
        assert_eq!(sharded[0], plain_out);
    }

    #[test]
    fn empty_shard_set_is_fine() {
        let outs: Vec<((), ())> = {
            struct Never;
            impl ShardWorld for Never {
                type Msg = ();
                type Out = ((), ());
                fn deliver(&mut self, _: SimTime, _: usize, (): ()) {}
                fn advance(&mut self, _: SimTime, _: bool, _: &mut Outbox<()>) {}
                fn finish(self) -> Self::Out {
                    ((), ())
                }
            }
            run_conservative(0, 4, LOOKAHEAD, HORIZON, |_| Never)
        };
        assert!(outs.is_empty());
    }

    /// A closed-loop coordinator over the ring: observes every shard's hop
    /// count each window, decides a directive from the global total, and
    /// injects marker events back into every shard.
    struct CountCoordinator {
        rounds: Vec<(u64, usize)>,
    }

    impl Coordinator<RingShard> for CountCoordinator {
        type Obs = usize;
        type Directive = u64;

        fn observe(&mut self, _: usize, shard: &mut RingShard, _: SimTime) -> Option<usize> {
            Some(shard.sim.world().log.len())
        }

        fn decide(&mut self, wend: SimTime, obs: Vec<(usize, usize)>) -> Option<u64> {
            let total: usize = obs.iter().map(|(_, n)| n).sum();
            self.rounds.push((wend.as_micros(), total));
            // Act on every other round so both branches are exercised.
            (self.rounds.len() % 2 == 0).then_some(total as u64)
        }

        fn apply(&mut self, _: usize, shard: &mut RingShard, wend: SimTime, &d: &u64) {
            shard.sim.schedule_at(wend, move |s: &mut RingState, ctx| {
                s.log.push((ctx.now().as_micros(), usize::MAX, d));
            });
        }
    }

    #[test]
    fn coordinated_rounds_are_thread_invariant_and_close_the_loop() {
        let run = |threads: usize| {
            run_coordinated(5, threads, LOOKAHEAD, HORIZON, |i| RingShard::new(i, 5), {
                CountCoordinator { rounds: Vec::new() }
            })
        };
        let (ref_outs, ref_coord) = run(1);
        // The directive actually lands back in the shards (closed loop) and
        // the decision log covers every non-closing window.
        assert!(
            ref_outs
                .iter()
                .any(|(log, _)| log.iter().any(|&(_, i, _)| i == usize::MAX)),
            "no coordinator marker reached any shard"
        );
        assert_eq!(
            ref_coord.rounds.len() as u64,
            HORIZON.as_micros() / LOOKAHEAD.as_micros() - 1
        );
        for threads in [2, 4, 8] {
            let (outs, coord) = run(threads);
            assert_eq!(ref_outs, outs, "threads={threads}");
            assert_eq!(ref_coord.rounds, coord.rounds, "threads={threads}");
        }
    }

    #[test]
    fn inert_coordinator_matches_run_conservative() {
        let plain = run_ring(3, 2);
        let (coordinated, NoCoordinator) = run_coordinated(
            3,
            2,
            LOOKAHEAD,
            HORIZON,
            |i| RingShard::new(i, 3),
            NoCoordinator,
        );
        assert_eq!(plain, coordinated);
    }

    #[test]
    #[should_panic(expected = "conservative violation")]
    fn lookahead_violations_are_caught() {
        struct Rogue;
        impl ShardWorld for Rogue {
            type Msg = ();
            type Out = ();
            fn deliver(&mut self, _: SimTime, _: usize, (): ()) {}
            fn advance(&mut self, upto: SimTime, closing: bool, outbox: &mut Outbox<()>) {
                if !closing {
                    // Due *inside* the window just simulated: too late.
                    outbox.send(1, upto - SimDuration::from_micros(1), ());
                }
            }
            fn finish(self) -> Self::Out {}
        }
        run_conservative(2, 1, LOOKAHEAD, HORIZON, |_| Rogue);
    }
}
