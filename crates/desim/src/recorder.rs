//! Windowed time-series recording on exactly-mergeable log-bucketed
//! histograms.
//!
//! The streaming estimators in [`crate::metrics`] answer "what was the
//! distribution over the whole run"; the adaptive-placement roadmap needs
//! "what was it in *this 30-second window*", per page and per WAN link, as
//! the feedback signal a controller would consume. Two requirements shape
//! this module:
//!
//! 1. **Exact shard-merge.** The conservative-parallel engine runs one
//!    recorder per shard and folds them in ascending shard order; the merged
//!    series must be byte-identical at any thread count. [`LogHistogram`]
//!    therefore fixes its bucket boundaries once, globally, derives the
//!    bucket index from the IEEE-754 bit pattern of the sample (exponent
//!    plus the top three mantissa bits — eight sub-buckets per octave), and
//!    stores nothing but integer bucket counts. Merge is per-bucket `u64`
//!    addition: associative, commutative, and exactly equal to single-stream
//!    recording, with no float summation order to drift.
//!
//! 2. **Fixed windows.** [`Recorder`] registers counter / gauge / histogram
//!    series up front and rolls them at a fixed sim-time cadence: window `k`
//!    covers `[k·w, (k+1)·w)` and is closed by [`Recorder::roll`], driven
//!    from a typed simulation event at that cadence. Counters and histograms
//!    reset each window (rows carry per-window deltas); gauges persist and
//!    each row carries the value sampled at the roll. Only complete windows
//!    are reported — a trailing partial window is discarded.
//!
//! Merging follows the telemetry-snapshot convention: counters, histogram
//! buckets *and gauges* sum across shard replicas (a gauge like queue depth
//! is per-shard state, and the sum over shards is the fleet-wide value).
//! See DESIGN.md §6.7 for the bucket scheme and the merge proof sketch.

use serde::{Deserialize, Serialize};

use crate::metrics::nearest_rank;
use crate::time::SimDuration;

/// Sub-bucket resolution: 2³ = 8 sub-buckets per octave (≤ 12.5% relative
/// bucket width).
const SUB_BITS: u32 = 3;
const SUBS: i32 = 1 << SUB_BITS;
/// Smallest bucketed magnitude: 2⁻¹⁰ ≈ 0.001 (about a microsecond when
/// samples are milliseconds). Anything smaller lands in the underflow
/// bucket.
const MIN_EXP: i32 = -10;
/// Largest bucketed octave: values in `[2³⁰, 2³¹)` (~12–25 days in
/// milliseconds). Anything at or above `2³¹` lands in the overflow bucket.
const MAX_EXP: i32 = 30;
/// 2^MIN_EXP, the underflow boundary.
const MIN_VALUE: f64 = 0.0009765625;
/// 2^(MAX_EXP + 1), the overflow boundary.
const MAX_VALUE: f64 = 2147483648.0;
/// Total bucket count: 41 octaves × 8 sub-buckets, plus underflow and
/// overflow.
const BUCKET_COUNT: usize = ((MAX_EXP - MIN_EXP + 1) * SUBS) as usize + 2;

/// 2^e for exponents within the bucketed range (exact, via the bit pattern).
fn exp2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((1023 + e) as u64) << 52)
}

/// A histogram over fixed, process-global logarithmic buckets.
///
/// Every `LogHistogram` in the workspace shares one geometry, so any two can
/// merge exactly — there is no bucket-boundary negotiation and no stored
/// float state. The bucket for a sample is computed from its IEEE-754 bits:
/// the unbiased exponent selects the octave and the top three mantissa bits
/// the sub-bucket, giving bucket edges at `2ᵉ·(1 + s/8)`.
///
/// ```
/// use mutsvc_desim::recorder::LogHistogram;
///
/// let mut a = LogHistogram::new();
/// let mut b = LogHistogram::new();
/// a.record(120.0);
/// b.record(450.0);
/// a.merge(&b);
/// assert_eq!(a.total(), 2);
/// assert!(a.quantile(1.0) >= 450.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Dense bucket counts. Empty until the first sample lands — the
    /// recorder re-creates every histogram at each window roll, and most
    /// of those never see the allocation. The invariant `counts` is dense
    /// iff `total > 0` is maintained by [`LogHistogram::record`] and
    /// [`LogHistogram::merge`], which keeps the derived `PartialEq`
    /// representation-independent.
    counts: Vec<u64>,
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram. Allocation-free: the bucket array is
    /// only materialized when the first sample lands.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Materializes the dense bucket array before the first write.
    fn ensure_buckets(&mut self) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKET_COUNT];
        }
    }

    /// The bucket index a sample falls into. Non-finite, negative, and
    /// sub-`MIN_VALUE` samples share the underflow bucket 0; samples at or
    /// above `2³¹` share the overflow bucket.
    pub fn bucket_index(x: f64) -> usize {
        if x.is_nan() || x < MIN_VALUE {
            return 0;
        }
        if x >= MAX_VALUE {
            return BUCKET_COUNT - 1;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as i32;
        (1 + (exp - MIN_EXP) * SUBS + sub) as usize
    }

    /// `[lower, upper)` bounds of bucket `idx`. The underflow bucket is
    /// `[0, 2⁻¹⁰)`; the overflow bucket's upper bound is `+∞`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_bounds(idx: usize) -> (f64, f64) {
        assert!(idx < BUCKET_COUNT, "bucket index {idx} out of range");
        if idx == 0 {
            return (0.0, MIN_VALUE);
        }
        if idx == BUCKET_COUNT - 1 {
            return (MAX_VALUE, f64::INFINITY);
        }
        let i = (idx - 1) as i32;
        let base = exp2(MIN_EXP + i / SUBS);
        let sub = (i % SUBS) as f64;
        let width = SUBS as f64;
        (
            base * (1.0 + sub / width),
            base * (1.0 + (sub + 1.0) / width),
        )
    }

    /// Records one sample (typically milliseconds). Negative or non-finite
    /// samples are debug-asserted and counted in the underflow bucket so
    /// totals stay conserved.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite() && x >= 0.0, "bad histogram sample {x}");
        self.ensure_buckets();
        self.counts[Self::bucket_index(x)] += 1;
        self.total += 1;
    }

    /// Records a duration sample in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates `(bucket_index, count)` for non-empty buckets only — the
    /// sparse form exporters serialize.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Nearest-rank quantile resolved to the bucket's upper bound (the
    /// tightest value the histogram can certify the rank is below). Ranks
    /// landing in the overflow bucket report its finite lower bound. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let target = nearest_rank(self.total, q);
        if target == 0 {
            return 0.0;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                return if hi.is_finite() { hi } else { lo };
            }
        }
        unreachable!("total is the sum of bucket counts");
    }

    /// Samples the histogram can certify are `>= threshold`: the counts of
    /// every bucket whose lower bound is at or above it. Samples sharing the
    /// threshold's own bucket are conservatively counted as under the
    /// threshold, so SLO burn never over-reports from bucket granularity.
    pub fn count_over(&self, threshold: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let idx = Self::bucket_index(threshold);
        let from = if Self::bucket_bounds(idx).0 >= threshold {
            idx
        } else {
            idx + 1
        };
        self.counts[from.min(BUCKET_COUNT)..].iter().sum()
    }

    /// Merges another histogram into this one by per-bucket addition —
    /// exact, associative, and commutative, because the geometry is global
    /// and no float state is kept.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        self.ensure_buckets();
        for (c, &o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
    }
}

/// Handle for a registered counter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterId(u32);

/// Handle for a registered gauge series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeId(u32);

/// Handle for a registered histogram series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistId(u32);

/// One closed window of every registered series: counter deltas, gauge
/// values sampled at the roll, and per-window histograms, each indexed in
/// registration order. Window `index` covers sim-time
/// `[index·w, (index+1)·w)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRow {
    /// Zero-based window number.
    pub index: u64,
    /// Per-window counter deltas, in counter registration order.
    pub counters: Vec<u64>,
    /// Gauge values at the window's closing roll, in registration order.
    pub gauges: Vec<f64>,
    /// Per-window histograms, in registration order.
    pub hists: Vec<LogHistogram>,
}

/// A registry of named counter / gauge / histogram series rolled into
/// fixed-width sim-time windows.
///
/// Registration happens once, before the run; recording is by dense id on
/// the hot path. [`Recorder::roll`] closes the current window. Shard
/// recorders built from the same registration sequence merge exactly with
/// [`Recorder::merge`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recorder {
    window: SimDuration,
    counter_names: Vec<String>,
    gauge_names: Vec<String>,
    hist_names: Vec<String>,
    counters: Vec<u64>,
    gauges: Vec<f64>,
    hists: Vec<LogHistogram>,
    rows: Vec<WindowRow>,
}

impl Recorder {
    /// Creates an empty recorder rolling at `window` cadence.
    ///
    /// # Panics
    ///
    /// Panics on a zero window — every row would alias the same instant.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        Recorder {
            window,
            counter_names: Vec::new(),
            gauge_names: Vec::new(),
            hist_names: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// The window width series roll at.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn assert_fresh(&self, name: &str) {
        assert!(
            !self.counter_names.iter().any(|n| n == name)
                && !self.gauge_names.iter().any(|n| n == name)
                && !self.hist_names.iter().any(|n| n == name),
            "series {name:?} already registered"
        );
        assert!(
            self.rows.is_empty(),
            "cannot register {name:?} after the first roll"
        );
    }

    /// Registers a counter series.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name (any kind) or registration after a roll.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.assert_fresh(name);
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() as u32 - 1)
    }

    /// Registers a gauge series (initial value 0).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name (any kind) or registration after a roll.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.assert_fresh(name);
        self.gauge_names.push(name.to_string());
        self.gauges.push(0.0);
        GaugeId(self.gauges.len() as u32 - 1)
    }

    /// Registers a histogram series.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name (any kind) or registration after a roll.
    pub fn histogram(&mut self, name: &str) -> HistId {
        self.assert_fresh(name);
        self.hist_names.push(name.to_string());
        self.hists.push(LogHistogram::new());
        HistId(self.hists.len() as u32 - 1)
    }

    /// Adds to a counter in the current window.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Sets a gauge; the value persists across rolls until set again.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize] = v;
    }

    /// Records a sample into a histogram in the current window.
    pub fn observe(&mut self, id: HistId, x: f64) {
        self.hists[id.0 as usize].record(x);
    }

    /// The current value of a gauge — the last value [`set`](Recorder::set),
    /// which is exactly what the next [`roll`](Recorder::roll) will sample
    /// (and, right after a roll, what the freshest row holds).
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    /// The row-array slot a counter handle indexes — for reading one
    /// counter's series out of [`WindowRow::counters`] without a name
    /// lookup.
    pub fn counter_slot(&self, id: CounterId) -> usize {
        id.0 as usize
    }

    /// Closes the current window: counter deltas and histograms move into a
    /// new [`WindowRow`] and reset; gauges are sampled and persist.
    pub fn roll(&mut self) {
        let index = self.rows.len() as u64;
        let counters = std::mem::replace(&mut self.counters, vec![0; self.counter_names.len()]);
        let hists = std::mem::replace(
            &mut self.hists,
            vec![LogHistogram::new(); self.hist_names.len()],
        );
        self.rows.push(WindowRow {
            index,
            counters,
            gauges: self.gauges.clone(),
            hists,
        });
    }

    /// The closed windows, oldest first.
    pub fn rows(&self) -> &[WindowRow] {
        &self.rows
    }

    /// Registered counter names, in registration order.
    pub fn counter_names(&self) -> &[String] {
        &self.counter_names
    }

    /// Registered gauge names, in registration order.
    pub fn gauge_names(&self) -> &[String] {
        &self.gauge_names
    }

    /// Registered histogram names, in registration order.
    pub fn hist_names(&self) -> &[String] {
        &self.hist_names
    }

    /// Dense index of a counter series by name.
    pub fn counter_index(&self, name: &str) -> Option<usize> {
        self.counter_names.iter().position(|n| n == name)
    }

    /// Dense index of a gauge series by name.
    pub fn gauge_index(&self, name: &str) -> Option<usize> {
        self.gauge_names.iter().position(|n| n == name)
    }

    /// Dense index of a histogram series by name.
    pub fn hist_index(&self, name: &str) -> Option<usize> {
        self.hist_names.iter().position(|n| n == name)
    }

    /// Merges a shard replica into this recorder: counters and histogram
    /// buckets add per window; gauges sum across replicas (per-shard state
    /// pooled to the fleet-wide value, the same convention as the telemetry
    /// snapshot merge).
    ///
    /// Window counts may differ — a shard that went idle (or finished its
    /// horizon early) rolls fewer windows. Merging is *row-aligned by window
    /// index*: shared indices sum, and rows beyond the shorter recorder's
    /// last roll are carried over as-is, holding only the contributions of
    /// the replicas that actually rolled them.
    ///
    /// # Panics
    ///
    /// Panics when the registration sequences or window widths differ —
    /// those merges would silently misalign series.
    pub fn merge(&mut self, other: &Recorder) {
        assert_eq!(self.window, other.window, "recorder windows must align");
        assert_eq!(self.counter_names, other.counter_names, "counter series");
        assert_eq!(self.gauge_names, other.gauge_names, "gauge series");
        assert_eq!(self.hist_names, other.hist_names, "histogram series");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            assert_eq!(a.index, b.index, "window indices align");
            for (x, y) in a.counters.iter_mut().zip(b.counters.iter()) {
                *x += y;
            }
            for (x, y) in a.gauges.iter_mut().zip(b.gauges.iter()) {
                *x += y;
            }
            for (x, y) in a.hists.iter_mut().zip(b.hists.iter()) {
                x.merge(y);
            }
        }
        if other.rows.len() > self.rows.len() {
            let from = self.rows.len();
            self.rows.extend(other.rows[from..].iter().cloned());
        }
        for (x, y) in self.counters.iter_mut().zip(other.counters.iter()) {
            *x += y;
        }
        for (x, y) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *x += y;
        }
        for (x, y) in self.hists.iter_mut().zip(other.hists.iter()) {
            x.merge(y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_contain_their_samples() {
        for &x in &[
            0.0011, 0.5, 1.0, 1.5, 7.99, 8.0, 99.9, 100.0, 123.456, 1e4, 1e6, 2.0e9,
        ] {
            let idx = LogHistogram::bucket_index(x);
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            assert!(lo <= x && x < hi, "{x} outside bucket {idx} [{lo}, {hi})");
        }
    }

    #[test]
    fn bucket_width_is_at_most_one_eighth() {
        // Relative resolution: every finite bucket spans ≤ 12.5% of its
        // lower bound.
        for idx in 1..BUCKET_COUNT - 1 {
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            assert!(hi - lo <= lo / 8.0 + 1e-12, "bucket {idx} too wide");
        }
    }

    #[test]
    fn degenerate_samples_share_the_underflow_bucket() {
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-3.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(LogHistogram::bucket_index(1e-9), 0);
        assert_eq!(LogHistogram::bucket_index(1e12), BUCKET_COUNT - 1);
        assert_eq!(LogHistogram::bucket_index(f64::INFINITY), BUCKET_COUNT - 1);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10.0);
        }
        h.record(1000.0);
        let p50 = h.quantile(0.5);
        assert!((10.0..=11.25).contains(&p50), "p50 {p50}");
        let p100 = h.quantile(1.0);
        assert!(p100 >= 1000.0 && p100 <= 1125.0, "p100 {p100}");
        assert_eq!(LogHistogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_in_overflow_stays_finite() {
        let mut h = LogHistogram::new();
        h.record(1e12);
        let q = h.quantile(0.5);
        assert!(q.is_finite());
        assert_eq!(q, MAX_VALUE);
    }

    #[test]
    fn count_over_is_conservative_at_bucket_granularity() {
        let mut h = LogHistogram::new();
        h.record(50.0); // below
        h.record(300.0); // same bucket as the 300 ms threshold — counted under
        h.record(400.0); // certainly over
        h.record(1e12); // overflow — certainly over
        assert_eq!(h.count_over(300.0), 2);
        assert_eq!(h.count_over(0.0), 4);
        assert_eq!(h.count_over(1e13), 0);
        // A threshold exactly on a bucket edge includes that bucket.
        let (lo, _) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(400.0));
        assert_eq!(h.count_over(lo), 2);
    }

    #[test]
    fn recorder_rolls_windows_and_resets_deltas() {
        let mut r = Recorder::new(SimDuration::from_secs(30));
        let c = r.counter("requests.ok");
        let g = r.gauge("queue.depth");
        let h = r.histogram("page.home.response_ms");
        r.add(c, 3);
        r.set(g, 5.0);
        r.observe(h, 120.0);
        r.roll();
        r.add(c, 2);
        r.roll();
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].index, 0);
        assert_eq!(rows[0].counters, vec![3]);
        assert_eq!(rows[0].gauges, vec![5.0]);
        assert_eq!(rows[0].hists[0].total(), 1);
        // Counters and histograms reset; gauges persist.
        assert_eq!(rows[1].counters, vec![2]);
        assert_eq!(rows[1].gauges, vec![5.0]);
        assert_eq!(rows[1].hists[0].total(), 0);
        assert_eq!(r.counter_index("requests.ok"), Some(0));
        assert_eq!(r.hist_index("page.home.response_ms"), Some(0));
        assert_eq!(r.gauge_index("nope"), None);
    }

    #[test]
    fn recorder_merge_sums_aligned_windows() {
        let build = || {
            let mut r = Recorder::new(SimDuration::from_secs(10));
            let c = r.counter("c");
            let g = r.gauge("g");
            let h = r.histogram("h");
            (r, c, g, h)
        };
        let (mut a, ca, ga, ha) = build();
        let (mut b, cb, gb, hb) = build();
        a.add(ca, 1);
        a.set(ga, 2.0);
        a.observe(ha, 10.0);
        a.roll();
        b.add(cb, 4);
        b.set(gb, 3.0);
        b.observe(hb, 10.0);
        b.roll();
        a.merge(&b);
        assert_eq!(a.rows()[0].counters, vec![5]);
        assert_eq!(a.rows()[0].gauges, vec![5.0]);
        assert_eq!(a.rows()[0].hists[0].total(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_are_rejected_across_kinds() {
        let mut r = Recorder::new(SimDuration::from_secs(1));
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn merge_row_aligns_unequal_window_counts() {
        let build = |rolls: &[u64]| {
            let mut r = Recorder::new(SimDuration::from_secs(1));
            let c = r.counter("c");
            let g = r.gauge("g");
            let h = r.histogram("h");
            for &v in rolls {
                r.add(c, v);
                r.set(g, v as f64);
                r.observe(h, v as f64);
                r.roll();
            }
            r
        };
        // The longer recorder merges in a shorter (idle-shard) replica: the
        // shared prefix sums, the tail survives untouched.
        let mut a = build(&[1, 2, 3]);
        a.merge(&build(&[10]));
        assert_eq!(a.rows().len(), 3);
        assert_eq!(a.rows()[0].counters, vec![11]);
        assert_eq!(a.rows()[1].counters, vec![2]);
        assert_eq!(a.rows()[2].counters, vec![3]);
        assert_eq!(a.rows()[0].hists[0].total(), 2);
        // The shorter recorder absorbs a longer one: the extra rows carry
        // over with the longer replica's contribution only.
        let mut b = build(&[10]);
        b.merge(&build(&[1, 2, 3]));
        assert_eq!(b.rows().len(), 3);
        assert_eq!(b.rows()[0].counters, vec![11]);
        assert_eq!(b.rows()[1].counters, vec![2]);
        assert_eq!(b.rows()[2].counters, vec![3]);
        assert_eq!(b.rows()[2].index, 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn log_histogram_conserves_samples(xs in proptest::collection::vec(0f64..1e10, 0..300)) {
                let mut h = LogHistogram::new();
                for &x in &xs {
                    h.record(x);
                }
                let bucketed: u64 = h.nonzero().map(|(_, c)| c).sum();
                prop_assert_eq!(bucketed, xs.len() as u64);
                prop_assert_eq!(h.total(), xs.len() as u64);
            }

            #[test]
            fn log_histogram_merge_equals_single_stream(xs in proptest::collection::vec(0f64..1e8, 0..400)) {
                let mut all = LogHistogram::new();
                let mut shards = [LogHistogram::new(), LogHistogram::new(), LogHistogram::new()];
                for (i, &x) in xs.iter().enumerate() {
                    all.record(x);
                    shards[i % 3].record(x);
                }
                let mut merged = LogHistogram::new();
                for s in &shards {
                    merged.merge(s);
                }
                prop_assert_eq!(merged, all);
            }

            #[test]
            fn log_histogram_merge_is_commutative_and_associative(
                xs in proptest::collection::vec(0f64..1e8, 0..200),
                ys in proptest::collection::vec(0f64..1e8, 0..200),
                zs in proptest::collection::vec(0f64..1e8, 0..200),
            ) {
                let build = |vals: &[f64]| {
                    let mut h = LogHistogram::new();
                    for &x in vals {
                        h.record(x);
                    }
                    h
                };
                let (a, b, c) = (build(&xs), build(&ys), build(&zs));
                // Commutative: a ⊕ b == b ⊕ a.
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b.clone();
                ba.merge(&a);
                prop_assert_eq!(&ab, &ba);
                // Associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
                let mut ab_c = ab.clone();
                ab_c.merge(&c);
                let mut bc = b.clone();
                bc.merge(&c);
                let mut a_bc = a.clone();
                a_bc.merge(&bc);
                prop_assert_eq!(ab_c, a_bc);
            }

            #[test]
            fn recorder_merge_row_aligns_any_window_counts(
                xs in proptest::collection::vec(0u64..100, 0..6),
                ys in proptest::collection::vec(0u64..100, 0..6),
                live_a in 0u64..50,
                live_b in 0u64..50,
            ) {
                // A shard that went idle rolls fewer windows; the merge must
                // align rows by window index, summing the shared prefix and
                // carrying the longer tail through, for *any* length pair —
                // including zero rolls on either side.
                let build = |vals: &[u64], live: u64| {
                    let mut r = Recorder::new(SimDuration::from_secs(1));
                    let c = r.counter("c");
                    let g = r.gauge("g");
                    for &v in vals {
                        r.add(c, v);
                        r.set(g, 1.0);
                        r.roll();
                    }
                    r.add(c, live);
                    r
                };
                let mut a = build(&xs, live_a);
                a.merge(&build(&ys, live_b));
                prop_assert_eq!(a.rows().len(), xs.len().max(ys.len()));
                for (i, row) in a.rows().iter().enumerate() {
                    prop_assert_eq!(row.index, i as u64);
                    let want = xs.get(i).copied().unwrap_or(0)
                        + ys.get(i).copied().unwrap_or(0);
                    prop_assert_eq!(row.counters[0], want);
                    // Gauges pool across exactly the replicas that rolled
                    // this window.
                    let rollers = u64::from(i < xs.len()) + u64::from(i < ys.len());
                    prop_assert_eq!(row.gauges[0], rollers as f64);
                }
                // Live (unrolled) deltas still sum regardless of row counts.
                prop_assert_eq!(a.counters[0], live_a + live_b);
            }

            #[test]
            fn log_histogram_quantile_is_a_valid_upper_bound(
                xs in proptest::collection::vec(0.01f64..1e6, 1..300),
                q in 0f64..1.0,
            ) {
                let mut h = LogHistogram::new();
                for &x in &xs {
                    h.record(x);
                }
                let v = h.quantile(q);
                prop_assert!(v.is_finite());
                // The reported bound dominates the true nearest-rank sample.
                let mut sorted = xs.clone();
                sorted.sort_by(f64::total_cmp);
                let rank = nearest_rank(sorted.len() as u64, q) as usize;
                prop_assert!(v >= sorted[rank - 1], "bound {} below sample {}", v, sorted[rank - 1]);
                // And is within one bucket (≤ 12.5% + underflow floor) of it.
                let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(sorted[rank - 1]));
                prop_assert!(v <= hi.max(lo * 1.126) + MIN_VALUE);
            }

            #[test]
            fn count_over_never_overcounts(
                xs in proptest::collection::vec(0f64..1e6, 0..300),
                threshold in 0f64..1e6,
            ) {
                let mut h = LogHistogram::new();
                for &x in &xs {
                    h.record(x);
                }
                let exact = xs.iter().filter(|&&x| x >= threshold).count() as u64;
                prop_assert!(h.count_over(threshold) <= exact);
            }
        }
    }
}
