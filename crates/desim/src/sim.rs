//! Event scheduler and simulation driver.
//!
//! A [`Simulation`] owns an arbitrary *world* `W` (the mutable state of the
//! model) and a priority queue of events. An event is a one-shot closure
//! `FnOnce(&mut W, &mut Context<W>)`; firing an event may mutate the world and
//! schedule further events through the [`Context`].
//!
//! Determinism: events fire in `(time, insertion sequence)` order, so two runs
//! with the same seed and the same scheduling order are identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A scheduled event: a boxed one-shot closure over the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Context<'_, W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    event: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed so that the BinaryHeap (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The event queue shared between the driver and in-flight events.
struct EventQueue<W> {
    heap: BinaryHeap<Scheduled<W>>,
    seq: u64,
}

impl<W> EventQueue<W> {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, event: EventFn<W>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }
}

/// Handle given to a firing event for scheduling follow-up events.
///
/// A `Context` exposes the current clock and the event queue, but not the
/// world itself — the world is passed to the event separately, which lets the
/// borrow checker verify that events cannot re-enter the scheduler recursively.
pub struct Context<'a, W> {
    now: SimTime,
    queue: &'a mut EventQueue<W>,
}

impl<'a, W> Context<'a, W> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Events scheduled in the past fire "now" (at the current clock value);
    /// the kernel never moves time backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Context<'_, W>) + 'static,
    ) {
        let at = at.max(self.now);
        self.queue.push(at, Box::new(event));
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut W, &mut Context<'_, W>) + 'static,
    ) {
        let at = self.now + delay;
        self.queue.push(at, Box::new(event));
    }
}

/// A discrete-event simulation over a world `W`.
///
/// ```
/// use mutsvc_desim::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_in(SimDuration::from_millis(5), |count, ctx| {
///     *count += 1;
///     ctx.schedule_in(SimDuration::from_millis(5), |count, _| *count += 10);
/// });
/// sim.run();
/// assert_eq!(*sim.world(), 11);
/// assert_eq!(sim.now().as_millis_f64(), 10.0);
/// ```
pub struct Simulation<W> {
    world: W,
    clock: SimTime,
    queue: EventQueue<W>,
    events_fired: u64,
}

impl<W: std::fmt::Debug> std::fmt::Debug for Simulation<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("world", &self.world)
            .field("clock", &self.clock)
            .field("pending", &self.queue.heap.len())
            .field("events_fired", &self.events_fired)
            .finish()
    }
}

impl<W> Simulation<W> {
    /// Creates a simulation whose clock starts at [`SimTime::ZERO`].
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            events_fired: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.heap.len()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at absolute time `at` (clamped to the current clock).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Context<'_, W>) + 'static,
    ) {
        let at = at.max(self.clock);
        self.queue.push(at, Box::new(event));
    }

    /// Schedules an event `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut W, &mut Context<'_, W>) + 'static,
    ) {
        let at = self.clock + delay;
        self.queue.push(at, Box::new(event));
    }

    /// Fires the single earliest pending event.
    ///
    /// Returns `false` when the queue is empty (the clock does not advance).
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.queue.heap.pop() else {
            return false;
        };
        debug_assert!(
            scheduled.time >= self.clock,
            "event queue produced an event in the past"
        );
        self.clock = scheduled.time;
        self.events_fired += 1;
        let mut ctx = Context {
            now: self.clock,
            queue: &mut self.queue,
        };
        (scheduled.event)(&mut self.world, &mut ctx);
        true
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event lies strictly after
    /// `deadline`. Events exactly at `deadline` fire. On return the clock is
    /// `max(clock, deadline)` if any events remain, so repeated calls advance.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(head) = self.queue.heap.peek() {
            if head.time > deadline {
                self.clock = self.clock.max(deadline);
                return;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for &t in &[30u64, 10, 20] {
            let order = Rc::clone(&order);
            sim.schedule_at(SimTime::from_millis(t), move |_, _| {
                order.borrow_mut().push(t);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for i in 0..5 {
            let order = Rc::clone(&order);
            sim.schedule_at(SimTime::from_millis(7), move |_, _| {
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::from_millis(1), |w: &mut Vec<u64>, ctx| {
            w.push(ctx.now().as_micros());
            ctx.schedule_in(SimDuration::from_millis(2), |w, ctx| {
                w.push(ctx.now().as_micros());
            });
        });
        sim.run();
        assert_eq!(sim.world(), &vec![1_000, 3_000]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn scheduling_in_the_past_fires_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::from_millis(10), |_, ctx| {
            // Deliberately "in the past": fires at the current clock instead.
            ctx.schedule_at(SimTime::from_millis(1), |w: &mut Vec<u64>, ctx| {
                w.push(ctx.now().as_micros());
            });
        });
        sim.run();
        assert_eq!(sim.world(), &vec![10_000]);
    }

    #[test]
    fn run_until_stops_and_resumes() {
        let mut sim = Simulation::new(0u32);
        for t in 1..=10u64 {
            sim.schedule_at(SimTime::from_secs(t), |w: &mut u32, _| *w += 1);
        }
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(*sim.world(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(*sim.world(), 7);
        sim.run();
        assert_eq!(*sim.world(), 10);
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        let mut sim = Simulation::<()>::new(());
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut sim = Simulation::new(());
        assert!(!sim.step());
    }

    #[test]
    fn deterministic_under_repetition() {
        fn run_once() -> Vec<u64> {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::new(());
            for i in 0..100u64 {
                let log = Rc::clone(&log);
                // Interleave identical timestamps to stress tie-breaking.
                sim.schedule_at(SimTime::from_micros(i % 7), move |_, _| {
                    log.borrow_mut().push(i);
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        }
        assert_eq!(run_once(), run_once());
    }
}
