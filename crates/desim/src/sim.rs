//! Event scheduler and simulation driver.
//!
//! A [`Simulation`] owns an arbitrary *world* `W` (the mutable state of the
//! model) and a priority queue of events. Two kinds of event coexist:
//!
//! * **Boxed closures** — one-shot `FnOnce(&mut W, &mut Context<W, E>)`
//!   values. Flexible, but each costs a heap allocation; use them for rare
//!   control events (start-up, perturbations, statistics resets).
//! * **Typed events** — values of a world-chosen enum `E` implementing
//!   [`Fire`]. These are stored inline in the queue with **zero per-event
//!   allocation**, which is what the request hot path uses (job advancement,
//!   request issue timers, completion notifications).
//!
//! Worlds that never need typed events simply use `Simulation::new`, which
//! pins `E` to the uninhabited [`NoEvent`]; nothing changes for them.
//!
//! Pending events live in a slab-backed two-tier queue: the binary heap only
//! orders small `(time, seq, slot)` keys for the *near* future, payloads sit
//! in a recycled slab, and far-future timers (session think-time clocks, of
//! which an open workload keeps thousands) wait in an unsorted staging list
//! until the horizon reaches them. See [`SlabStore`] for the exactness
//! argument; the pre-overhaul single-heap layout is preserved behind
//! [`Simulation::emulate_boxed_events`] as a measurable baseline.
//!
//! Determinism: events fire in `(time, insertion sequence)` order regardless
//! of their kind or physical layout, so two runs with the same seed and the
//! same scheduling order are identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A typed simulation event: a plain value fired by the scheduler.
///
/// Implementations are usually small enums; firing consumes the value.
pub trait Fire<W>: Sized + 'static {
    /// Applies the event to the world at its scheduled time.
    fn fire(self, world: &mut W, ctx: &mut Context<'_, W, Self>);
}

/// The default (uninhabited) event type: a `Simulation<W>` without an event
/// enum schedules boxed closures only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoEvent {}

impl<W> Fire<W> for NoEvent {
    fn fire(self, _world: &mut W, _ctx: &mut Context<'_, W, Self>) {
        match self {}
    }
}

/// A scheduled event: a boxed one-shot closure over the world.
pub type EventFn<W, E = NoEvent> = Box<dyn FnOnce(&mut W, &mut Context<'_, W, E>)>;

enum Payload<W, E> {
    Boxed(EventFn<W, E>),
    Event(E),
}

struct Scheduled<W, E> {
    time: SimTime,
    seq: u64,
    payload: Payload<W, E>,
}

impl<W, E> PartialEq for Scheduled<W, E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W, E> Eq for Scheduled<W, E> {}
impl<W, E> PartialOrd for Scheduled<W, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W, E> Ord for Scheduled<W, E> {
    // Reversed so that the BinaryHeap (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// An engine-internal typed event held in the side queue: telemetry rolls,
/// controller ticks — bookkeeping the engine schedules for itself, kept out
/// of the workload store so queue-depth telemetry never observes it (the
/// "observer effect": arming metrics used to shift every `queue.*` gauge by
/// the pending roll event). The `seq` is drawn from the queue's shared
/// counter, so the merged pop order across both stores is exactly the order
/// a single queue would produce.
struct Internal<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Internal<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Internal<E> {}
impl<E> PartialOrd for Internal<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Internal<E> {
    // Reversed so that the BinaryHeap (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A slab-queue heap key: ordering state only, 24 bytes. The payload lives
/// in the slab at `slot`, so sift operations never move event payloads.
#[derive(Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    // Reversed so that the BinaryHeap (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The overhauled store: a near-future heap of small [`Key`]s over a recycled
/// payload slab, plus an unsorted far-future staging list.
///
/// Open workloads keep thousands of session timers pending several simulated
/// seconds out while network events resolve within milliseconds. A single
/// heap makes every hot push/pop sift through all of them; here the heap only
/// holds events below `horizon`, far timers wait unsorted in `far`, and the
/// horizon advances one `epoch` at a time, migrating due events in bulk.
///
/// Exactness: every `far` entry has `time >= horizon` and every `near` entry
/// has `time < horizon` (the horizon only grows), so whenever the near head
/// is below the horizon it is the global `(time, seq)` minimum. Firing order
/// is therefore identical to the single-heap queue, event for event.
struct SlabStore<W, E> {
    near: BinaryHeap<Key>,
    far: Vec<Key>,
    /// Smallest time in `far` (`SimTime::MAX` when empty): lets `settle`
    /// jump the horizon across idle gaps instead of stepping epoch by epoch.
    far_min: SimTime,
    horizon: SimTime,
    epoch: SimDuration,
    slots: Vec<Option<Payload<W, E>>>,
    free: Vec<u32>,
}

impl<W, E> SlabStore<W, E> {
    fn new() -> Self {
        SlabStore {
            near: BinaryHeap::new(),
            far: Vec::new(),
            far_min: SimTime::MAX,
            horizon: SimTime::ZERO,
            epoch: SimDuration::from_millis(500),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }

    fn push(&mut self, time: SimTime, seq: u64, payload: Payload<W, E>) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        };
        let key = Key { time, seq, slot };
        if time < self.horizon {
            self.near.push(key);
        } else {
            self.far_min = self.far_min.min(time);
            self.far.push(key);
        }
    }

    /// Advances the horizon until the near head (if any) is the global
    /// minimum, migrating due far events into the heap.
    fn settle(&mut self) {
        loop {
            match self.near.peek() {
                Some(head) if head.time < self.horizon => return,
                head => {
                    if self.far.is_empty() {
                        return;
                    }
                    let target = head.map_or(self.far_min, |k| k.time.min(self.far_min));
                    self.horizon = self.horizon.max(target) + self.epoch;
                    let horizon = self.horizon;
                    let mut far_min = SimTime::MAX;
                    let near = &mut self.near;
                    self.far.retain(|&key| {
                        if key.time < horizon {
                            near.push(key);
                            false
                        } else {
                            far_min = far_min.min(key.time);
                            true
                        }
                    });
                    self.far_min = far_min;
                }
            }
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.settle();
        self.near.peek().map(|k| (k.time, k.seq))
    }

    fn pop(&mut self) -> Option<(SimTime, Payload<W, E>)> {
        self.settle();
        let key = self.near.pop()?;
        let payload = self.slots[key.slot as usize]
            .take()
            .expect("slab slot empty");
        self.free.push(key.slot);
        Some((key.time, payload))
    }

    fn drain(&mut self) -> Vec<Scheduled<W, E>> {
        let mut out = Vec::with_capacity(self.len());
        for key in self.near.drain().chain(self.far.drain(..)) {
            let payload = self.slots[key.slot as usize]
                .take()
                .expect("slab slot empty");
            out.push(Scheduled {
                time: key.time,
                seq: key.seq,
                payload,
            });
        }
        self.slots.clear();
        self.free.clear();
        self.far_min = SimTime::MAX;
        out
    }
}

/// Observed occupancy of the pending-event store, for telemetry snapshots.
///
/// With the slab layout, `near`/`far` are the two tiers of the time-split
/// queue and `slab_slots`/`slab_free` describe the payload slab. With the
/// inline baseline layout everything is one heap: `near` holds the total
/// and the slab fields are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueDepths {
    /// Events inside the horizon (heap-ordered tier).
    pub near: usize,
    /// Events beyond the horizon (unsorted tier).
    pub far: usize,
    /// Allocated payload slots (high-water occupancy).
    pub slab_slots: usize,
    /// Recyclable payload slots.
    pub slab_free: usize,
}

/// Physical layout of the pending-event set.
enum Store<W, E> {
    /// Pre-overhaul layout: payloads inline in one `BinaryHeap`, sifted on
    /// every push/pop. Kept as the measured baseline (see
    /// [`Simulation::emulate_boxed_events`]).
    Inline(BinaryHeap<Scheduled<W, E>>),
    /// Overhauled layout: slab-backed two-tier queue.
    Slab(SlabStore<W, E>),
}

/// The event queue shared between the driver and in-flight events.
struct EventQueue<W, E> {
    store: Store<W, E>,
    /// Engine-internal events (metrics rolls, controller ticks) in a side
    /// heap: they fire in exact `(time, seq)` order with workload events but
    /// are invisible to [`EventQueue::depths`], so arming them cannot perturb
    /// `queue.*` telemetry. Always typed and never boxed — the side heap is
    /// not part of the measured hot-path layout, so boxed-event emulation
    /// leaves it alone.
    internal: BinaryHeap<Internal<E>>,
    seq: u64,
    boxed_events: u64,
    /// When set, typed events are wrapped in a `Box<dyn FnOnce>` at
    /// scheduling time — the pre-overhaul allocation profile, used as the
    /// measured baseline in hot-path benches. Firing order and results are
    /// unchanged; only the allocation and dispatch cost differ.
    box_typed: bool,
}

impl<W, E> EventQueue<W, E> {
    fn new() -> Self {
        EventQueue {
            store: Store::Slab(SlabStore::new()),
            internal: BinaryHeap::new(),
            seq: 0,
            boxed_events: 0,
            box_typed: false,
        }
    }

    fn len(&self) -> usize {
        let main = match &self.store {
            Store::Inline(heap) => heap.len(),
            Store::Slab(slab) => slab.len(),
        };
        main + self.internal.len()
    }

    /// Occupancy of the *workload* store only: engine-internal side-queue
    /// events are bookkeeping, not model state, and reporting them would
    /// make the act of measuring shift the measurement.
    fn depths(&self) -> QueueDepths {
        match &self.store {
            Store::Inline(heap) => QueueDepths {
                near: heap.len(),
                far: 0,
                slab_slots: 0,
                slab_free: 0,
            },
            Store::Slab(slab) => QueueDepths {
                near: slab.near.len(),
                far: slab.far.len(),
                slab_slots: slab.slots.len(),
                slab_free: slab.free.len(),
            },
        }
    }

    fn peek_main_key(&mut self) -> Option<(SimTime, u64)> {
        match &mut self.store {
            Store::Inline(heap) => heap.peek().map(|s| (s.time, s.seq)),
            Store::Slab(slab) => slab.peek_key(),
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        let main = self.peek_main_key();
        let side = self.internal.peek().map(|i| (i.time, i.seq));
        match (main, side) {
            (Some(a), Some(b)) => Some(a.min(b).0),
            (Some(a), None) => Some(a.0),
            (None, Some(b)) => Some(b.0),
            (None, None) => None,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Payload<W, E>)> {
        // Merge the workload store and the internal side heap by (time, seq):
        // seq values come from one shared counter, so the comparison is total
        // and the merged order is exactly the single-queue order.
        let main = self.peek_main_key();
        let side = self.internal.peek().map(|i| (i.time, i.seq));
        let take_side = match (main, side) {
            (Some(m), Some(s)) => s < m,
            (None, Some(_)) => true,
            _ => false,
        };
        if take_side {
            let i = self.internal.pop().expect("peeked internal event");
            return Some((i.time, Payload::Event(i.event)));
        }
        match &mut self.store {
            Store::Inline(heap) => heap.pop().map(|s| (s.time, s.payload)),
            Store::Slab(slab) => slab.pop(),
        }
    }

    fn push(&mut self, time: SimTime, payload: Payload<W, E>) {
        if matches!(payload, Payload::Boxed(_)) {
            self.boxed_events += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        match &mut self.store {
            Store::Inline(heap) => heap.push(Scheduled { time, seq, payload }),
            Store::Slab(slab) => slab.push(time, seq, payload),
        }
    }

    fn push_event(&mut self, time: SimTime, event: E)
    where
        E: Fire<W>,
    {
        if self.box_typed {
            self.push(
                time,
                Payload::Boxed(Box::new(move |w: &mut W, ctx: &mut Context<'_, W, E>| {
                    event.fire(w, ctx);
                })),
            );
        } else {
            self.push(time, Payload::Event(event));
        }
    }

    /// Schedules an engine-internal event on the side heap. Internal events
    /// share the global `(time, seq)` order but stay invisible to
    /// [`EventQueue::depths`] and are never boxed under emulation.
    fn push_internal(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.internal.push(Internal { time, seq, event });
    }

    /// Swaps the physical store, carrying over any pending events.
    fn set_layout(&mut self, inline: bool) {
        let pending = match &mut self.store {
            Store::Inline(heap) => {
                if !inline {
                    std::mem::take(heap).into_vec()
                } else {
                    return;
                }
            }
            Store::Slab(slab) => {
                if inline {
                    slab.drain()
                } else {
                    return;
                }
            }
        };
        if inline {
            self.store = Store::Inline(pending.into_iter().collect());
        } else {
            let mut slab = SlabStore::new();
            for s in pending {
                slab.push(s.time, s.seq, s.payload);
            }
            self.store = Store::Slab(slab);
        }
    }
}

/// Handle given to a firing event for scheduling follow-up events.
///
/// A `Context` exposes the current clock and the event queue, but not the
/// world itself — the world is passed to the event separately, which lets the
/// borrow checker verify that events cannot re-enter the scheduler recursively.
pub struct Context<'a, W, E = NoEvent> {
    now: SimTime,
    queue: &'a mut EventQueue<W, E>,
}

impl<'a, W, E> Context<'a, W, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Occupancy of the pending-event store, excluding the event currently
    /// firing. Lets telemetry events observe queue depth mid-run.
    pub fn queue_depths(&self) -> QueueDepths {
        self.queue.depths()
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a boxed closure to fire at absolute time `at`.
    ///
    /// Events scheduled in the past fire "now" (at the current clock value);
    /// the kernel never moves time backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Context<'_, W, E>) + 'static,
    ) {
        let at = at.max(self.now);
        self.queue.push(at, Payload::Boxed(Box::new(event)));
    }

    /// Schedules a boxed closure to fire after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut W, &mut Context<'_, W, E>) + 'static,
    ) {
        let at = self.now + delay;
        self.queue.push(at, Payload::Boxed(Box::new(event)));
    }

    /// Schedules a typed event at absolute time `at` (clamped to now).
    /// Allocation-free: the event value is stored inline in the queue
    /// (unless boxed-event emulation is on, see
    /// [`Simulation::emulate_boxed_events`]).
    pub fn schedule_event_at(&mut self, at: SimTime, event: E)
    where
        E: Fire<W>,
    {
        let at = at.max(self.now);
        self.queue.push_event(at, event);
    }

    /// Schedules a typed event after `delay`. Allocation-free.
    pub fn schedule_event_in(&mut self, delay: SimDuration, event: E)
    where
        E: Fire<W>,
    {
        let at = self.now + delay;
        self.queue.push_event(at, event);
    }

    /// Schedules an *engine-internal* typed event at absolute time `at`
    /// (clamped to now). Internal events fire in the same global
    /// `(time, seq)` order as everything else but are excluded from
    /// [`Context::queue_depths`], so telemetry that samples queue occupancy
    /// never observes the engine's own bookkeeping (metrics rolls, adaptive
    /// controller ticks).
    pub fn schedule_internal_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.queue.push_internal(at, event);
    }

    /// Schedules an engine-internal typed event after `delay`. See
    /// [`Context::schedule_internal_at`].
    pub fn schedule_internal_in(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.queue.push_internal(at, event);
    }
}

/// A discrete-event simulation over a world `W`.
///
/// ```
/// use mutsvc_desim::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_in(SimDuration::from_millis(5), |count, ctx| {
///     *count += 1;
///     ctx.schedule_in(SimDuration::from_millis(5), |count, _| *count += 10);
/// });
/// sim.run();
/// assert_eq!(*sim.world(), 11);
/// assert_eq!(sim.now().as_millis_f64(), 10.0);
/// ```
pub struct Simulation<W, E = NoEvent> {
    world: W,
    clock: SimTime,
    queue: EventQueue<W, E>,
    events_fired: u64,
}

impl<W: std::fmt::Debug, E> std::fmt::Debug for Simulation<W, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("world", &self.world)
            .field("clock", &self.clock)
            .field("pending", &self.queue.len())
            .field("events_fired", &self.events_fired)
            .finish()
    }
}

impl<W> Simulation<W, NoEvent> {
    /// Creates a simulation whose clock starts at [`SimTime::ZERO`] and
    /// whose events are boxed closures only.
    ///
    /// Defined on `Simulation<W, NoEvent>` (not generically) so existing
    /// call sites infer the default event type.
    pub fn new(world: W) -> Self {
        Simulation::with_events(world)
    }
}

impl<W, E: Fire<W>> Simulation<W, E> {
    /// Creates a simulation over a world with a typed event enum `E`.
    pub fn with_events(world: W) -> Self {
        Simulation {
            world,
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            events_fired: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Total boxed-closure events ever scheduled (typed events excluded).
    /// The request hot path schedules typed events only, so in steady state
    /// this counter stays at the handful of control events a run sets up.
    pub fn boxed_events_scheduled(&self) -> u64 {
        self.queue.boxed_events
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Occupancy of the pending-event store (see [`QueueDepths`]).
    pub fn queue_depths(&self) -> QueueDepths {
        self.queue.depths()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules a boxed closure at absolute time `at` (clamped to the clock).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Context<'_, W, E>) + 'static,
    ) {
        let at = at.max(self.clock);
        self.queue.push(at, Payload::Boxed(Box::new(event)));
    }

    /// Schedules a boxed closure `delay` from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut W, &mut Context<'_, W, E>) + 'static,
    ) {
        let at = self.clock + delay;
        self.queue.push(at, Payload::Boxed(Box::new(event)));
    }

    /// Schedules a typed event at absolute time `at` (clamped to the clock).
    /// Allocation-free.
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.clock);
        self.queue.push_event(at, event);
    }

    /// Schedules a typed event `delay` from now. Allocation-free.
    pub fn schedule_event_in(&mut self, delay: SimDuration, event: E) {
        let at = self.clock + delay;
        self.queue.push_event(at, event);
    }

    /// Schedules an engine-internal typed event at absolute time `at`
    /// (clamped to the clock): same global firing order, invisible to
    /// [`Simulation::queue_depths`]. See [`Context::schedule_internal_at`].
    pub fn schedule_internal_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.clock);
        self.queue.push_internal(at, event);
    }

    /// Schedules an engine-internal typed event `delay` from now. See
    /// [`Context::schedule_internal_at`].
    pub fn schedule_internal_in(&mut self, delay: SimDuration, event: E) {
        let at = self.clock + delay;
        self.queue.push_internal(at, event);
    }

    /// Turns boxed-event emulation on or off (off by default). When on,
    /// every *typed* event is wrapped in a heap-allocated `Box<dyn FnOnce>`
    /// at scheduling time — faithfully reproducing the pre-overhaul
    /// one-allocation-per-event queue as a measurable baseline. Events still
    /// fire in exact `(time, seq)` order with identical effects, so a run
    /// differs only in host-side cost (and in the boxed-event counter,
    /// which then counts every event). Emulation also reverts the queue to
    /// the pre-overhaul single-heap layout with inline payloads, so the
    /// baseline pays the sift costs the slab queue was built to remove.
    pub fn emulate_boxed_events(&mut self, on: bool) {
        self.queue.box_typed = on;
        self.queue.set_layout(on);
    }

    /// Fires the single earliest pending event.
    ///
    /// Returns `false` when the queue is empty (the clock does not advance).
    pub fn step(&mut self) -> bool {
        let Some((time, payload)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(
            time >= self.clock,
            "event queue produced an event in the past"
        );
        self.clock = time;
        self.events_fired += 1;
        let mut ctx = Context {
            now: self.clock,
            queue: &mut self.queue,
        };
        match payload {
            Payload::Boxed(f) => f(&mut self.world, &mut ctx),
            Payload::Event(e) => e.fire(&mut self.world, &mut ctx),
        }
        true
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event lies strictly after
    /// `deadline`. Events exactly at `deadline` fire. On return the clock is
    /// `max(clock, deadline)` if any events remain, so repeated calls advance.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(head) = self.queue.peek_time() {
            if head > deadline {
                self.clock = self.clock.max(deadline);
                return;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }

    /// Runs until the queue is empty or the next event lies at or after
    /// `deadline`: the half-open window `[clock, deadline)`. Events exactly
    /// at `deadline` do *not* fire — they belong to the next window. On
    /// return the clock is `max(clock, deadline)`, so repeated calls advance.
    ///
    /// Conservative parallel windows are built from this: a shard advancing
    /// through `[w·L, (w+1)·L)` must leave events at the window boundary to
    /// the next window, where freshly delivered cross-shard messages with
    /// the same timestamp can still be ordered ahead of them by `seq`.
    pub fn run_before(&mut self, deadline: SimTime) {
        while let Some(head) = self.queue.peek_time() {
            if head >= deadline {
                break;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }

    /// Sets the far-horizon migration epoch of the two-tier slab store.
    ///
    /// The epoch only affects *when* far-future events migrate into the
    /// near heap, never their firing order (see [`SlabStore`]'s exactness
    /// invariant), so changing it is behaviour-neutral. Deriving it from the
    /// topology's minimum WAN link delay makes the far-queue horizon and the
    /// conservative-parallel lookahead share one source of truth. No-op for
    /// the inline baseline layout, which has no horizon.
    pub fn set_far_epoch(&mut self, epoch: SimDuration) {
        if let Store::Slab(slab) = &mut self.queue.store {
            slab.epoch = epoch.max(SimDuration::from_micros(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for &t in &[30u64, 10, 20] {
            let order = Rc::clone(&order);
            sim.schedule_at(SimTime::from_millis(t), move |_, _| {
                order.borrow_mut().push(t);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for i in 0..5 {
            let order = Rc::clone(&order);
            sim.schedule_at(SimTime::from_millis(7), move |_, _| {
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::from_millis(1), |w: &mut Vec<u64>, ctx| {
            w.push(ctx.now().as_micros());
            ctx.schedule_in(SimDuration::from_millis(2), |w, ctx| {
                w.push(ctx.now().as_micros());
            });
        });
        sim.run();
        assert_eq!(sim.world(), &vec![1_000, 3_000]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn scheduling_in_the_past_fires_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::from_millis(10), |_, ctx| {
            // Deliberately "in the past": fires at the current clock instead.
            ctx.schedule_at(SimTime::from_millis(1), |w: &mut Vec<u64>, ctx| {
                w.push(ctx.now().as_micros());
            });
        });
        sim.run();
        assert_eq!(sim.world(), &vec![10_000]);
    }

    #[test]
    fn run_until_stops_and_resumes() {
        let mut sim = Simulation::new(0u32);
        for t in 1..=10u64 {
            sim.schedule_at(SimTime::from_secs(t), |w: &mut u32, _| *w += 1);
        }
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(*sim.world(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(*sim.world(), 7);
        sim.run();
        assert_eq!(*sim.world(), 10);
    }

    #[test]
    fn run_before_excludes_the_deadline() {
        let mut sim = Simulation::new(0u32);
        for t in 1..=10u64 {
            sim.schedule_at(SimTime::from_secs(t), |w: &mut u32, _| *w += 1);
        }
        sim.run_before(SimTime::from_secs(4));
        // Events strictly before 4 s fire; the 4 s event waits.
        assert_eq!(*sim.world(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(4));
        sim.run_before(SimTime::from_secs(4));
        assert_eq!(*sim.world(), 3, "repeat call at same deadline is a no-op");
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(*sim.world(), 4, "run_until picks up the boundary event");
        sim.run();
        assert_eq!(*sim.world(), 10);
    }

    /// Windowed execution (run_before at every boundary, run_until at the
    /// end) fires the exact same sequence as one run_until, for any epoch.
    #[test]
    fn windowed_execution_matches_run_until() {
        fn run(windows: Option<u64>, epoch_us: Option<u64>) -> Vec<(u64, u64)> {
            let mut sim = Simulation::<Vec<(u64, u64)>, NoEvent>::with_events(Vec::new());
            if let Some(us) = epoch_us {
                sim.set_far_epoch(SimDuration::from_micros(us));
            }
            let mut x = 42u64;
            for i in 0..300u64 {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let at = SimTime::ZERO + SimDuration::from_micros(x % 5_000_000);
                sim.schedule_at(at, move |w: &mut Vec<(u64, u64)>, ctx| {
                    w.push((ctx.now().as_micros(), i));
                });
            }
            let horizon = SimTime::from_secs(5);
            match windows {
                Some(n) => {
                    for k in 1..n {
                        sim.run_before(SimTime::from_micros(5_000_000 * k / n));
                    }
                    sim.run_until(horizon);
                }
                None => sim.run_until(horizon),
            }
            sim.into_world()
        }
        let reference = run(None, None);
        assert_eq!(reference, run(Some(7), None));
        assert_eq!(reference, run(Some(50), Some(100_000)));
        assert_eq!(reference, run(Some(3), Some(4_000_000)));
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        let mut sim = Simulation::<()>::new(());
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut sim = Simulation::new(());
        assert!(!sim.step());
    }

    #[test]
    fn deterministic_under_repetition() {
        fn run_once() -> Vec<u64> {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::new(());
            for i in 0..100u64 {
                let log = Rc::clone(&log);
                // Interleave identical timestamps to stress tie-breaking.
                sim.schedule_at(SimTime::from_micros(i % 7), move |_, _| {
                    log.borrow_mut().push(i);
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        }
        assert_eq!(run_once(), run_once());
    }

    /// Typed events interleave with boxed closures in strict (time, seq)
    /// order, and scheduling them does not bump the boxed-event counter.
    #[test]
    fn typed_events_fire_in_order_without_boxing() {
        #[derive(Debug)]
        enum Ev {
            Mark(u64),
        }
        impl Fire<Vec<u64>> for Ev {
            fn fire(self, world: &mut Vec<u64>, ctx: &mut Context<'_, Vec<u64>, Self>) {
                let Ev::Mark(v) = self;
                world.push(v);
                if v == 2 {
                    // Typed events can schedule both kinds of follow-up.
                    ctx.schedule_event_in(SimDuration::from_millis(1), Ev::Mark(99));
                    ctx.schedule_in(SimDuration::from_millis(2), |w: &mut Vec<u64>, _| {
                        w.push(1000);
                    });
                }
            }
        }
        let mut sim = Simulation::<Vec<u64>, Ev>::with_events(Vec::new());
        sim.schedule_event_at(SimTime::from_millis(5), Ev::Mark(2));
        sim.schedule_event_at(SimTime::from_millis(3), Ev::Mark(1));
        sim.schedule_at(SimTime::from_millis(4), |w: &mut Vec<u64>, _| w.push(500));
        sim.run();
        assert_eq!(sim.world(), &vec![1, 500, 2, 99, 1000]);
        assert_eq!(sim.boxed_events_scheduled(), 2);
        assert_eq!(sim.events_fired(), 5);
    }

    /// Boxed-event emulation boxes every typed event without changing the
    /// firing order or effects.
    #[test]
    fn boxed_emulation_preserves_order_and_counts_every_event() {
        #[derive(Debug)]
        struct Push(u64);
        impl Fire<Vec<u64>> for Push {
            fn fire(self, world: &mut Vec<u64>, ctx: &mut Context<'_, Vec<u64>, Self>) {
                world.push(self.0);
                if self.0 == 1 {
                    ctx.schedule_event_in(SimDuration::from_millis(1), Push(9));
                }
            }
        }
        let run = |emulate: bool| {
            let mut sim = Simulation::<Vec<u64>, Push>::with_events(Vec::new());
            sim.emulate_boxed_events(emulate);
            sim.schedule_event_at(SimTime::from_millis(2), Push(2));
            sim.schedule_event_at(SimTime::from_millis(1), Push(1));
            sim.run();
            (sim.world().clone(), sim.boxed_events_scheduled())
        };
        let (fast, fast_boxed) = run(false);
        let (slow, slow_boxed) = run(true);
        assert_eq!(fast, vec![1, 2, 9]);
        assert_eq!(fast, slow, "emulation must not change results");
        assert_eq!(fast_boxed, 0);
        assert_eq!(slow_boxed, 3, "every typed event is boxed under emulation");
    }

    /// The slab two-tier layout fires the exact same order as the inline
    /// single-heap layout, including events far beyond the horizon epoch,
    /// re-scheduling from inside events, and (time) ties broken by seq.
    #[test]
    fn slab_and_inline_layouts_fire_identically() {
        #[derive(Debug)]
        struct Mark(u64);
        impl Fire<Vec<(u64, u64)>> for Mark {
            fn fire(
                self,
                world: &mut Vec<(u64, u64)>,
                ctx: &mut Context<'_, Vec<(u64, u64)>, Self>,
            ) {
                world.push((ctx.now().as_micros(), self.0));
                if self.0 < 400 && self.0.is_multiple_of(5) {
                    // Follow-ups both near (sub-epoch) and far (multi-epoch);
                    // the guard keeps follow-ups from cascading forever.
                    ctx.schedule_event_in(SimDuration::from_millis(3), Mark(self.0 + 1_000));
                    ctx.schedule_event_in(SimDuration::from_secs(7), Mark(self.0 + 2_000));
                }
            }
        }
        let run = |inline: bool| {
            let mut sim = Simulation::<Vec<(u64, u64)>, Mark>::with_events(Vec::new());
            if inline {
                // Flip the layout without boxed emulation noise: emulation
                // boxes payloads too, but the firing order is what matters.
                sim.queue.set_layout(true);
            }
            // A deterministic scramble of times spanning many 500 ms epochs,
            // with deliberate exact-time collisions to stress seq ordering.
            let mut x = 9_876_543_210u64;
            for i in 0..400u64 {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let at = SimTime::ZERO + SimDuration::from_micros(x % 20_000_000);
                sim.schedule_event_at(at, Mark(i));
                if i % 7 == 0 {
                    sim.schedule_event_at(at, Mark(i + 500));
                }
            }
            sim.run();
            sim.into_world()
        };
        let slab = run(false);
        let inline = run(true);
        assert_eq!(slab.len(), inline.len());
        assert_eq!(slab, inline, "layouts must fire in identical order");
    }

    /// Ties between typed and boxed events break by insertion sequence.
    #[test]
    fn typed_and_boxed_ties_fire_in_insertion_order() {
        #[derive(Debug)]
        struct Push(u64);
        impl Fire<Vec<u64>> for Push {
            fn fire(self, world: &mut Vec<u64>, _: &mut Context<'_, Vec<u64>, Self>) {
                world.push(self.0);
            }
        }
        let mut sim = Simulation::<Vec<u64>, Push>::with_events(Vec::new());
        let t = SimTime::from_millis(1);
        sim.schedule_event_at(t, Push(0));
        sim.schedule_at(t, |w: &mut Vec<u64>, _| w.push(1));
        sim.schedule_event_at(t, Push(2));
        sim.run();
        assert_eq!(sim.world(), &vec![0, 1, 2]);
    }

    /// Internal side-queue events interleave with workload events in exact
    /// insertion order at equal times, but never appear in the telemetry
    /// depth snapshot — scheduling one cannot shift a `queue.*` gauge.
    #[test]
    fn internal_events_order_globally_but_hide_from_depths() {
        #[derive(Debug)]
        struct Push(u64);
        impl Fire<Vec<u64>> for Push {
            fn fire(self, world: &mut Vec<u64>, ctx: &mut Context<'_, Vec<u64>, Self>) {
                world.push(self.0);
                if self.0 == 10 {
                    // Internal events can re-arm themselves from a firing.
                    ctx.schedule_internal_in(SimDuration::from_millis(1), Push(11));
                }
            }
        }
        let mut sim = Simulation::<Vec<u64>, Push>::with_events(Vec::new());
        let t = SimTime::from_millis(5);
        sim.schedule_event_at(t, Push(0));
        sim.schedule_internal_at(t, Push(10));
        sim.schedule_event_at(t, Push(1));
        let bare = sim.queue_depths();
        assert_eq!(bare.near + bare.far, 2, "internal event hidden from depths");
        assert_eq!(sim.pending_events(), 3, "but counted as pending");
        sim.run();
        assert_eq!(sim.world(), &vec![0, 10, 1, 11]);
        assert_eq!(sim.events_fired(), 4);
    }

    /// Queue-depth telemetry reads identically whether or not an internal
    /// event is pending, and boxed emulation leaves internal events typed.
    #[test]
    fn arming_an_internal_event_does_not_perturb_depths_or_boxing() {
        #[derive(Debug)]
        struct Tick;
        impl Fire<u32> for Tick {
            fn fire(self, world: &mut u32, _: &mut Context<'_, u32, Self>) {
                *world += 1;
            }
        }
        let run = |armed: bool, emulate: bool| {
            let mut sim = Simulation::<u32, Tick>::with_events(0);
            sim.emulate_boxed_events(emulate);
            for t in 1..=20u64 {
                sim.schedule_event_at(SimTime::from_millis(t), Tick);
            }
            if armed {
                sim.schedule_internal_at(SimTime::from_millis(7), Tick);
            }
            let depths = sim.queue_depths();
            sim.run_until(SimTime::from_millis(3));
            let mid = sim.queue_depths();
            (depths, mid, sim.boxed_events_scheduled())
        };
        for emulate in [false, true] {
            let (d_off, m_off, boxed_off) = run(false, emulate);
            let (d_on, m_on, boxed_on) = run(true, emulate);
            assert_eq!(d_off, d_on, "pre-run depths must not see the arm");
            assert_eq!(m_off, m_on, "mid-run depths must not see the arm");
            assert_eq!(boxed_off, boxed_on, "internal events are never boxed");
        }
    }
}
