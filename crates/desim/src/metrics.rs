//! Streaming measurement primitives.
//!
//! Experiments run for (simulated) hours at tens of requests per second, so
//! per-sample storage is wasteful. This module provides constant-memory
//! estimators: [`Welford`] for mean/variance, [`P2Quantile`] for arbitrary
//! quantiles (the Jain/Chlamtac P² algorithm), and a fixed-geometry
//! [`Histogram`]. [`Summary`] bundles the usual set for a response-time
//! series.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// The 1-based nearest rank for quantile `q` over `total` samples:
/// `⌈q·total⌉` clamped into `[1, total]`, or 0 when the series is empty.
///
/// This is *the* quantile-rank rule of the workspace — the uniform and
/// log-bucketed histograms, the P² warmup path, and the report/bench
/// percentile tables all resolve ranks through it, so "p95" means the same
/// sample everywhere.
pub fn nearest_rank(total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total)
}

/// Count-weighted mean over `(mean, count)` parts; `None` when every part
/// is empty. Pools per-group response-time means into a population mean
/// without re-walking samples.
pub fn weighted_mean(parts: impl IntoIterator<Item = (f64, u64)>) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0u64;
    for (mean, count) in parts {
        total += mean * count as f64;
        n += count;
    }
    if n == 0 {
        None
    } else {
        Some(total / n as f64)
    }
}

/// Maximum over the values, `None` when empty. The conservative way to pool
/// a tail percentile across client groups: the population p95 is bounded by
/// the worst per-group p95, and reports quote that bound.
pub fn pooled_max(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    values.into_iter().fold(None, |acc: Option<f64>, v| {
        Some(acc.map_or(v, |a| a.max(v)))
    })
}

/// Welford's online algorithm for mean and variance.
///
/// ```
/// use mutsvc_desim::metrics::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.record(x);
/// }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.variance(), 4.0); // sample variance
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample. Non-finite samples are ignored (and debug-asserted).
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The P² (piecewise-parabolic) streaming quantile estimator of
/// Jain & Chlamtac (CACM 1985): five markers track `q` without storing samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    count: u64,
    /// First five samples, buffered until initialization.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(
            q > 0.0 && q < 1.0,
            "quantile must lie strictly in (0, 1), got {q}"
        );
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The quantile being estimated.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            debug_assert!(false, "non-finite sample {x}");
            return;
        }
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            if self.count == 5 {
                self.warmup.sort_by(f64::total_cmp);
                for (i, &v) in self.warmup.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers with the parabolic formula, falling back to
        // linear interpolation when the parabola would reorder markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate. With fewer than five samples this is the exact
    /// quantile of the buffered values (by nearest-rank); 0 if empty.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count < 5 {
            let mut buf = self.warmup.clone();
            buf.sort_by(f64::total_cmp);
            let rank = nearest_rank(buf.len() as u64, self.q) as usize;
            return buf[rank - 1];
        }
        self.heights[2]
    }

    /// Evaluates this estimator's piecewise-linear quantile curve at
    /// probability `p` (markers at normalized positions, heights
    /// interpolated). Requires an initialized estimator (`count >= 5`).
    fn quantile_at(&self, p: f64) -> f64 {
        debug_assert!(self.count >= 5);
        let n = (self.count - 1) as f64;
        let pos = |i: usize| {
            if n == 0.0 {
                0.0
            } else {
                (self.positions[i] - 1.0) / n
            }
        };
        if p <= pos(0) {
            return self.heights[0];
        }
        for i in 0..4 {
            let (a, b) = (pos(i), pos(i + 1));
            if p <= b {
                let t = if b > a { (p - a) / (b - a) } else { 1.0 };
                return self.heights[i] + t * (self.heights[i + 1] - self.heights[i]);
            }
        }
        self.heights[4]
    }

    /// Merges another estimator for the same quantile into this one.
    ///
    /// P² markers cannot be combined exactly (the raw samples are gone), so
    /// this uses *weighted marker interpolation*: each estimator's five
    /// markers define a piecewise-linear quantile curve; the merged marker
    /// heights are the count-weighted average of the two curves evaluated
    /// at the canonical marker probabilities `[0, q/2, q, (1+q)/2, 1]`, and
    /// marker positions are reset to their desired values for the combined
    /// count. When either side is still in its five-sample warmup, its
    /// buffered samples are simply replayed (exact). The result is an
    /// approximation — property tests bound it to the sample range and to
    /// the single-stream estimate for same-distribution shards — which is
    /// the right trade-off for combining parallel sweep shards.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators track different quantiles.
    pub fn merge(&mut self, other: &P2Quantile) {
        assert!(
            (self.q - other.q).abs() < 1e-12,
            "cannot merge P² estimators for different quantiles ({} vs {})",
            self.q,
            other.q
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        // A side still in warmup holds its exact samples: replay them.
        if other.count <= 5 {
            for &x in &other.warmup {
                self.record(x);
            }
            return;
        }
        if self.count <= 5 {
            let warmup = self.warmup.clone();
            *self = other.clone();
            for &x in &warmup {
                self.record(x);
            }
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = self.count + other.count;
        let probs = [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0];
        let mut heights = [0.0; 5];
        for (h, &p) in heights.iter_mut().zip(probs.iter()) {
            *h = (n1 * self.quantile_at(p) + n2 * other.quantile_at(p)) / (n1 + n2);
        }
        // Enforce marker monotonicity (weighted averages of two monotone
        // curves are monotone, but guard against float noise).
        for i in 1..5 {
            if heights[i] < heights[i - 1] {
                heights[i] = heights[i - 1];
            }
        }
        self.heights = heights;
        self.count = total;
        let extra = (total - 5) as f64;
        for i in 0..5 {
            self.desired[i] = match i {
                0 => 1.0,
                1 => 1.0 + 2.0 * self.q,
                2 => 1.0 + 4.0 * self.q,
                3 => 3.0 + 2.0 * self.q,
                _ => 5.0,
            } + extra * self.increments[i];
            self.positions[i] = self.desired[i];
        }
    }
}

/// A histogram with fixed uniform buckets over `[0, limit)` plus an overflow
/// bucket, intended for response-time distributions in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram covering `[0, limit)` with `buckets` uniform cells.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `limit` is not positive and finite.
    pub fn new(limit: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(
            limit.is_finite() && limit > 0.0,
            "histogram limit must be positive"
        );
        Histogram {
            bucket_width: limit / buckets as f64,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a sample; values ≥ limit (or non-finite) land in overflow.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x < 0.0 {
            self.overflow += 1;
            return;
        }
        let idx = (x / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples beyond the covered range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Upper bound of the covered range (`limit` passed to [`Histogram::new`]).
    pub fn limit(&self) -> f64 {
        self.bucket_width * self.counts.len() as f64
    }

    /// Merges another histogram with identical geometry into this one, so
    /// parallel sweep shards can combine their distributions exactly.
    ///
    /// # Panics
    ///
    /// Panics if bucket width or bucket count differ — merging histograms
    /// of different geometry would silently misattribute samples.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.counts.len() == other.counts.len() && self.bucket_width == other.bucket_width,
            "cannot merge histograms of different geometry ({} x {} vs {} x {})",
            self.counts.len(),
            self.bucket_width,
            other.counts.len(),
            other.bucket_width
        );
        for (c, &o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Iterates `(bucket_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * self.bucket_width, c))
    }

    /// Nearest-rank quantile from the histogram (bucket upper bound).
    ///
    /// When the target rank falls in the overflow bucket the result is the
    /// histogram's `limit` — the tightest bound the histogram can state
    /// ("at least the covered range"), and finite so downstream arithmetic
    /// (means of quantiles, JSON export) stays well-defined. It previously
    /// returned `f64::INFINITY`, which poisoned any aggregate it touched.
    pub fn quantile(&self, q: f64) -> f64 {
        let target = nearest_rank(self.total, q);
        if target == 0 {
            return 0.0;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i + 1) as f64 * self.bucket_width;
            }
        }
        self.limit()
    }
}

/// A bundle of estimators for one measured series (e.g. one page's response
/// time for one client group): mean/variance, median, p95, p99.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    welford: Welford,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            welford: Welford::new(),
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Records one sample (typically milliseconds).
    pub fn record(&mut self, x: f64) {
        self.welford.record(x);
        self.p50.record(x);
        self.p95.record(x);
        self.p99.record(x);
    }

    /// Records a duration sample in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.welford.std_dev()
    }

    /// Estimated median.
    pub fn p50(&self) -> f64 {
        self.p50.estimate()
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> f64 {
        self.p95.estimate()
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.p99.estimate()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.welford.min()
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.welford.max()
    }

    /// Merges another summary into this one. Moments (count, mean,
    /// variance, min, max) combine exactly via parallel Welford; quantile
    /// markers combine by weighted marker interpolation (see
    /// [`P2Quantile::merge`] for the approximation contract).
    pub fn merge(&mut self, other: &Summary) {
        self.welford.merge(&other.welford);
        self.p50.merge(&other.p50);
        self.p95.merge(&other.p95);
        self.p99.merge(&other.p99);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_is_clamped_and_ceiled() {
        assert_eq!(nearest_rank(0, 0.5), 0);
        assert_eq!(nearest_rank(10, 0.0), 1);
        assert_eq!(nearest_rank(10, 1.0), 10);
        assert_eq!(nearest_rank(10, 0.95), 10);
        assert_eq!(nearest_rank(100, 0.95), 95);
        assert_eq!(nearest_rank(3, 0.5), 2);
        // Out-of-range quantiles clamp instead of indexing out of bounds.
        assert_eq!(nearest_rank(10, -1.0), 1);
        assert_eq!(nearest_rank(10, 2.0), 10);
    }

    #[test]
    fn weighted_mean_pools_by_count() {
        assert_eq!(weighted_mean([]), None);
        assert_eq!(weighted_mean([(5.0, 0)]), None);
        assert_eq!(weighted_mean([(10.0, 1), (20.0, 3)]), Some(17.5));
        assert_eq!(weighted_mean([(4.0, 2), (0.0, 0)]), Some(4.0));
    }

    #[test]
    fn pooled_max_is_none_when_empty() {
        assert_eq!(pooled_max([]), None);
        assert_eq!(pooled_max([3.0, 9.0, 1.0]), Some(9.0));
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (1..=100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.record(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), 100);
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).cos() * 3.0).collect();
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in data.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn empty_accumulators_report_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
        assert_eq!(P2Quantile::new(0.5).estimate(), 0.0);
        assert_eq!(Summary::new().p95(), 0.0);
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        // Deterministic low-discrepancy stream over [0, 1000).
        let mut x = 0.0f64;
        for _ in 0..10_000 {
            x = (x + 618.033_988_75) % 1000.0;
            est.record(x);
        }
        let median = est.estimate();
        assert!(
            (median - 500.0).abs() < 25.0,
            "median estimate {median} too far from 500"
        );
    }

    #[test]
    fn p2_p95_of_uniform_stream() {
        let mut est = P2Quantile::new(0.95);
        let mut x = 0.0f64;
        for _ in 0..20_000 {
            x = (x + 618.033_988_75) % 1000.0;
            est.record(x);
        }
        let p95 = est.estimate();
        assert!(
            (p95 - 950.0).abs() < 30.0,
            "p95 estimate {p95} too far from 950"
        );
    }

    #[test]
    fn p2_small_sample_is_exact() {
        let mut est = P2Quantile::new(0.5);
        est.record(30.0);
        est.record(10.0);
        est.record(20.0);
        assert_eq!(est.estimate(), 20.0);
    }

    #[test]
    #[should_panic(expected = "strictly in (0, 1)")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(100.0, 10);
        for x in [5.0, 15.0, 15.5, 99.9, 100.0, 250.0] {
            h.record(x);
        }
        let counts: Vec<u64> = h.iter().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[9], 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_quantile_nearest_rank() {
        let mut h = Histogram::new(100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((h.quantile(0.99) - 99.0).abs() <= 1.0);
    }

    #[test]
    fn histogram_quantile_in_overflow_returns_limit() {
        let mut h = Histogram::new(100.0, 10);
        // 1 in-range sample, 3 overflow: the median rank lands in overflow.
        h.record(5.0);
        for _ in 0..3 {
            h.record(500.0);
        }
        assert_eq!(h.quantile(0.5), 100.0, "overflow quantile is the limit");
        assert_eq!(h.quantile(0.99), 100.0);
        assert!(h.quantile(0.5).is_finite());
        // The first rank is still served by the real bucket.
        assert_eq!(h.quantile(0.1), 10.0);
        assert_eq!(h.limit(), 100.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(100.0, 10);
        let mut b = Histogram::new(100.0, 10);
        for x in [5.0, 15.0, 250.0] {
            a.record(x);
        }
        for x in [15.5, 99.9, 300.0] {
            b.record(x);
        }
        a.merge(&b);
        let counts: Vec<u64> = a.iter().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[9], 1);
        assert_eq!(a.overflow(), 2);
        assert_eq!(a.total(), 6);
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(100.0, 10);
        let b = Histogram::new(100.0, 20);
        a.merge(&b);
    }

    #[test]
    fn p2_merge_close_to_single_stream() {
        for q in [0.5, 0.95] {
            let mut single = P2Quantile::new(q);
            let mut a = P2Quantile::new(q);
            let mut b = P2Quantile::new(q);
            let mut x = 0.0f64;
            for i in 0..10_000 {
                x = (x + 618.033_988_75) % 1000.0;
                single.record(x);
                if i % 2 == 0 {
                    a.record(x);
                } else {
                    b.record(x);
                }
            }
            a.merge(&b);
            assert_eq!(a.count(), single.count());
            let (merged, direct) = (a.estimate(), single.estimate());
            assert!(
                (merged - direct).abs() < 50.0,
                "q={q}: merged {merged} too far from single-stream {direct}"
            );
        }
    }

    #[test]
    fn p2_merge_with_warmup_side_is_exact_replay() {
        let mut a = P2Quantile::new(0.5);
        let mut b = P2Quantile::new(0.5);
        let mut direct = P2Quantile::new(0.5);
        for x in [3.0, 1.0, 2.0] {
            b.record(x);
            direct.record(x);
        }
        a.merge(&b); // self empty: clone
        assert_eq!(a.estimate(), direct.estimate());
        let mut big = P2Quantile::new(0.5);
        let mut x = 0.0f64;
        for _ in 0..100 {
            x = (x + 618.033_988_75) % 1000.0;
            big.record(x);
            direct.record(x);
        }
        a.merge(&big); // self in warmup, other initialized: replay self into other
        assert_eq!(a.count(), 103);
        let (merged, single) = (a.estimate(), direct.estimate());
        assert!(
            (merged - single).abs() < 100.0,
            "merged {merged} vs single {single}"
        );
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn p2_merge_rejects_mismatched_quantiles() {
        let mut a = P2Quantile::new(0.5);
        a.merge(&P2Quantile::new(0.95));
    }

    #[test]
    fn summary_merge_moments_exact_quantiles_close() {
        let mut single = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut x = 0.0f64;
        for i in 0..5_000 {
            x = (x + 618.033_988_75) % 1000.0;
            single.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), single.count());
        assert!((a.mean() - single.mean()).abs() < 1e-9);
        assert!((a.std_dev() - single.std_dev()).abs() < 1e-9);
        assert_eq!(a.min(), single.min());
        assert_eq!(a.max(), single.max());
        assert!((a.p50() - single.p50()).abs() < 50.0);
        assert!((a.p95() - single.p95()).abs() < 50.0);
    }

    #[test]
    fn summary_tracks_duration_samples() {
        let mut s = Summary::new();
        for ms in 1..=99u64 {
            s.record_duration(SimDuration::from_millis(ms));
        }
        assert_eq!(s.count(), 99);
        assert!((s.mean() - 50.0).abs() < 1e-9);
        assert!((s.p50() - 50.0).abs() < 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 99.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn welford_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
                let mut w = Welford::new();
                for &x in &xs {
                    w.record(x);
                }
                let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(w.mean() >= lo - 1e-6 && w.mean() <= hi + 1e-6);
                prop_assert!(w.variance() >= -1e-9);
            }

            #[test]
            fn p2_estimate_within_range(xs in proptest::collection::vec(0f64..1e4, 6..500)) {
                let mut est = P2Quantile::new(0.9);
                for &x in &xs {
                    est.record(x);
                }
                let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let e = est.estimate();
                prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "estimate {} outside [{}, {}]", e, lo, hi);
            }

            #[test]
            fn histogram_conserves_samples(xs in proptest::collection::vec(0f64..500.0, 0..200)) {
                let mut h = Histogram::new(100.0, 7);
                for &x in &xs {
                    h.record(x);
                }
                let bucketed: u64 = h.iter().map(|(_, c)| c).sum();
                prop_assert_eq!(bucketed + h.overflow(), xs.len() as u64);
            }

            #[test]
            fn histogram_quantile_always_finite(xs in proptest::collection::vec(0f64..500.0, 1..200), q in 0f64..1.0) {
                let mut h = Histogram::new(100.0, 7);
                for &x in &xs {
                    h.record(x);
                }
                let v = h.quantile(q);
                prop_assert!(v.is_finite());
                prop_assert!(v <= h.limit() + 1e-9);
            }

            #[test]
            fn histogram_merge_equals_single_stream(xs in proptest::collection::vec(0f64..500.0, 0..200)) {
                let mut all = Histogram::new(100.0, 7);
                let mut a = Histogram::new(100.0, 7);
                let mut b = Histogram::new(100.0, 7);
                for (i, &x) in xs.iter().enumerate() {
                    all.record(x);
                    if i % 2 == 0 { a.record(x); } else { b.record(x); }
                }
                a.merge(&b);
                prop_assert_eq!(a, all);
            }

            #[test]
            fn summary_merge_approximates_single_stream(xs in proptest::collection::vec(0f64..1e4, 1..400)) {
                let mut single = Summary::new();
                let mut a = Summary::new();
                let mut b = Summary::new();
                for (i, &x) in xs.iter().enumerate() {
                    single.record(x);
                    if i % 2 == 0 { a.record(x); } else { b.record(x); }
                }
                a.merge(&b);
                prop_assert_eq!(a.count(), single.count());
                prop_assert!((a.mean() - single.mean()).abs() < 1e-6);
                let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                for e in [a.p50(), a.p95(), a.p99()] {
                    prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "merged quantile {} outside [{}, {}]", e, lo, hi);
                }
            }
        }
    }
}
