//! Deterministic fault schedules: scripted or seeded-random WAN failure
//! episodes.
//!
//! A [`FaultSchedule`] is a time-sorted list of [`FaultEvent`]s — link
//! outages, latency degradations, node crashes/restarts and message-loss
//! windows — that a simulation world replays through typed events in its
//! slab queue. The schedule itself carries no world knowledge: links and
//! nodes are dense `u32` indices (the same convention as
//! [`crate::trace::SpanKind`]), so the desim layer stays ignorant of
//! topology types and higher layers map indices onto their own ids.
//!
//! Two properties matter and are pinned by tests here and in the workload
//! driver:
//!
//! * **Determinism** — a scripted schedule is replayed verbatim;
//!   [`FaultSchedule::random`] draws only from the [`SimRng`] stream it is
//!   handed (by convention [`crate::rng::stream::FAULTS`]), so same-seed
//!   runs produce byte-identical timelines and the workload's own arrival
//!   and think-time streams are never touched.
//! * **Purity** — an empty schedule is a no-op: nothing is scheduled,
//!   nothing is drawn, and a fault-off run is bit-identical to a build
//!   without the subsystem.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::SimDuration;

/// One kind of injected fault. Targets are dense indices into the owning
/// world's topology (directed links, nodes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A directed link stops delivering messages.
    LinkDown {
        /// Directed-link index.
        link: u32,
    },
    /// A downed link comes back.
    LinkRestore {
        /// Directed-link index.
        link: u32,
    },
    /// A directed link's propagation latency is scaled by `factor`
    /// (`1.0` restores the base latency).
    LinkDegraded {
        /// Directed-link index.
        link: u32,
        /// Latency multiplier applied to the base propagation delay.
        factor: f64,
    },
    /// The application process on a node crashes: CPU work and message
    /// delivery addressed to it fail, and its caches are lost (restart
    /// replays warm-up). The host keeps forwarding transit traffic — the
    /// model is a server-process crash, not a powered-off router.
    NodeCrash {
        /// Node index.
        node: u32,
    },
    /// A crashed node's process restarts with cold caches.
    NodeRestart {
        /// Node index.
        node: u32,
    },
    /// A directed link drops each message independently with the given
    /// probability (`0.0` clears the loss window). Draws are derived from a
    /// counter hash, not an RNG stream, so loss never perturbs other
    /// randomness.
    MsgLoss {
        /// Directed-link index.
        link: u32,
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
}

impl FaultKind {
    /// Short stable label used by reports and span exporters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link-down",
            FaultKind::LinkRestore { .. } => "link-restore",
            FaultKind::LinkDegraded { .. } => "link-degraded",
            FaultKind::NodeCrash { .. } => "node-crash",
            FaultKind::NodeRestart { .. } => "node-restart",
            FaultKind::MsgLoss { .. } => "msg-loss",
        }
    }
}

/// One scheduled fault: a kind applied at an offset from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires, as an offset from simulation start.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-sorted fault timeline.
///
/// Construct scripted schedules with [`FaultSchedule::scripted`] (events are
/// sorted for you, ties keep insertion order) or random ones with
/// [`FaultSchedule::random`]. The default schedule is empty.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Events in non-decreasing `at` order.
    pub events: Vec<FaultEvent>,
}

/// Parameters for [`FaultSchedule::random`]: independent outage episodes on
/// a set of candidate links and nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomFaults {
    /// Number of episodes to draw.
    pub episodes: usize,
    /// Candidate directed links (an episode downs one and later restores it).
    pub links: Vec<u32>,
    /// Candidate nodes (an episode crashes one and later restarts it).
    pub nodes: Vec<u32>,
    /// Earliest episode start offset.
    pub earliest: SimDuration,
    /// Latest episode start offset.
    pub latest: SimDuration,
    /// Mean episode duration (exponentially distributed, floored at 1 ms).
    pub mean_outage: SimDuration,
}

impl FaultSchedule {
    /// The empty (fault-off) schedule.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A scripted schedule; events are stably sorted by time.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a random schedule of paired outage/recovery episodes using only
    /// the supplied stream. Zero `episodes` (or no candidates) draws nothing
    /// and returns the empty schedule, preserving purity.
    pub fn random(rng: &mut SimRng, params: &RandomFaults) -> Self {
        let candidates = params.links.len() + params.nodes.len();
        if params.episodes == 0 || candidates == 0 {
            return FaultSchedule::none();
        }
        let lo = params.earliest.as_micros() as f64;
        let hi = params
            .latest
            .as_micros()
            .max(params.earliest.as_micros() + 1) as f64;
        let mut events = Vec::with_capacity(params.episodes * 2);
        for _ in 0..params.episodes {
            let start = SimDuration::from_micros(rng.uniform_range(lo, hi) as u64);
            let outage = rng
                .exponential(params.mean_outage)
                .max(SimDuration::from_millis(1));
            let pick = rng.index(candidates);
            let (down, up) = if pick < params.links.len() {
                let link = params.links[pick];
                (
                    FaultKind::LinkDown { link },
                    FaultKind::LinkRestore { link },
                )
            } else {
                let node = params.nodes[pick - params.links.len()];
                (
                    FaultKind::NodeCrash { node },
                    FaultKind::NodeRestart { node },
                )
            };
            events.push(FaultEvent {
                at: start,
                kind: down,
            });
            events.push(FaultEvent {
                at: start + outage,
                kind: up,
            });
        }
        FaultSchedule::scripted(events)
    }

    /// Renders the timeline as one line per event (`+12.500s link-down link=3`),
    /// byte-stable across runs — used by reports and replay-identity tests.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(out, "+{:.6}s {}", e.at.as_secs_f64(), e.kind.label());
            match e.kind {
                FaultKind::LinkDown { link } | FaultKind::LinkRestore { link } => {
                    let _ = writeln!(out, " link={link}");
                }
                FaultKind::LinkDegraded { link, factor } => {
                    let _ = writeln!(out, " link={link} factor={factor:.3}");
                }
                FaultKind::NodeCrash { node } | FaultKind::NodeRestart { node } => {
                    let _ = writeln!(out, " node={node}");
                }
                FaultKind::MsgLoss { link, probability } => {
                    let _ = writeln!(out, " link={link} p={probability:.4}");
                }
            }
        }
        out
    }
}

/// Deterministic per-message loss draw: a splitmix64-style hash of
/// `(salt, link, sequence)` compared against `probability`. Stateless apart
/// from the caller's per-link sequence counter, so loss decisions are
/// reproducible across sequential and parallel sweeps and independent of
/// every RNG stream.
pub fn message_lost(salt: u64, link: u32, seq: u64, probability: f64) -> bool {
    if probability <= 0.0 {
        return false;
    }
    if probability >= 1.0 {
        return true;
    }
    let mut x = salt
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(link).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(seq.wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // Map the hash onto [0, 1) with 53-bit precision, like a uniform draw.
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    u < probability
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    fn sec(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn scripted_schedules_sort_stably() {
        let s = FaultSchedule::scripted(vec![
            FaultEvent {
                at: sec(9),
                kind: FaultKind::LinkRestore { link: 1 },
            },
            FaultEvent {
                at: sec(3),
                kind: FaultKind::LinkDown { link: 1 },
            },
            FaultEvent {
                at: sec(3),
                kind: FaultKind::NodeCrash { node: 2 },
            },
        ]);
        assert_eq!(s.events[0].at, sec(3));
        assert!(matches!(s.events[0].kind, FaultKind::LinkDown { link: 1 }));
        assert!(matches!(s.events[1].kind, FaultKind::NodeCrash { node: 2 }));
        assert_eq!(s.events[2].at, sec(9));
    }

    #[test]
    fn empty_schedule_is_pure() {
        assert!(FaultSchedule::none().is_empty());
        assert!(FaultSchedule::default().is_empty());
        assert_eq!(FaultSchedule::none().render_timeline(), "");
        // Zero episodes draw nothing from the stream.
        let root = SimRng::seed_from_u64(7);
        let mut faults = root.derive(stream::FAULTS);
        let before = faults.clone().uniform().to_bits();
        let s = FaultSchedule::random(
            &mut faults,
            &RandomFaults {
                episodes: 0,
                links: vec![0, 1],
                nodes: vec![2],
                earliest: sec(1),
                latest: sec(10),
                mean_outage: sec(5),
            },
        );
        assert!(s.is_empty());
        assert_eq!(faults.uniform().to_bits(), before, "no draws consumed");
    }

    #[test]
    fn random_schedules_replay_byte_identical_per_seed() {
        let params = RandomFaults {
            episodes: 5,
            links: vec![3, 4],
            nodes: vec![1],
            earliest: sec(10),
            latest: sec(100),
            mean_outage: sec(20),
        };
        let a = FaultSchedule::random(
            &mut SimRng::seed_from_u64(42).derive(stream::FAULTS),
            &params,
        );
        let b = FaultSchedule::random(
            &mut SimRng::seed_from_u64(42).derive(stream::FAULTS),
            &params,
        );
        assert_eq!(a, b);
        assert_eq!(a.render_timeline(), b.render_timeline());
        assert_eq!(a.events.len(), 10, "paired down/restore events");
        let c = FaultSchedule::random(
            &mut SimRng::seed_from_u64(43).derive(stream::FAULTS),
            &params,
        );
        assert_ne!(a, c, "different seeds draw different timelines");
    }

    #[test]
    fn random_outages_pair_down_with_restore() {
        let params = RandomFaults {
            episodes: 3,
            links: vec![7],
            nodes: vec![],
            earliest: sec(1),
            latest: sec(50),
            mean_outage: sec(10),
        };
        let s = FaultSchedule::random(
            &mut SimRng::seed_from_u64(9).derive(stream::FAULTS),
            &params,
        );
        let downs = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkDown { link: 7 }))
            .count();
        let ups = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkRestore { link: 7 }))
            .count();
        assert_eq!(downs, 3);
        assert_eq!(ups, 3);
        for w in s.events.windows(2) {
            assert!(w[0].at <= w[1].at, "sorted timeline");
        }
    }

    #[test]
    fn message_loss_is_deterministic_and_calibrated() {
        // Identical inputs, identical verdicts.
        for seq in 0..64 {
            assert_eq!(message_lost(42, 3, seq, 0.2), message_lost(42, 3, seq, 0.2));
        }
        assert!(!message_lost(1, 0, 0, 0.0));
        assert!(message_lost(1, 0, 0, 1.0));
        // Empirical rate tracks the probability.
        let hits = (0..100_000)
            .filter(|&seq| message_lost(7, 2, seq, 0.2))
            .count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "loss rate {rate}");
        // Distinct salts decorrelate the pattern.
        let agree = (0..1_000)
            .filter(|&seq| message_lost(1, 2, seq, 0.5) == message_lost(2, 2, seq, 0.5))
            .count();
        assert!((300..700).contains(&agree), "salted patterns differ");
    }
}
