//! # mutsvc-desim — deterministic discrete-event simulation kernel
//!
//! The foundation of the Mutable Services wide-area distribution testbed:
//! a minimal, allocation-conscious discrete-event engine with
//!
//! * exact integer [`time`] (microsecond instants/durations),
//! * a closure-based event [`sim`] scheduler with deterministic tie-breaking,
//! * analytic multi-server FIFO [`resource`]s (CPUs, link serialization),
//! * seeded, stream-splittable randomness ([`rng`]),
//! * constant-memory streaming [`metrics`] (Welford, P² quantiles, histograms),
//! * windowed time-series [`recorder`]s over exactly-mergeable log-bucketed
//!   histograms.
//!
//! Higher layers (network, middleware, applications) are worlds `W` plugged
//! into [`Simulation<W>`].
//!
//! ## Example
//!
//! ```
//! use mutsvc_desim::{FifoResource, SimDuration, Simulation};
//!
//! struct World {
//!     cpu: FifoResource,
//!     completions: Vec<f64>,
//! }
//!
//! let mut sim = Simulation::new(World {
//!     cpu: FifoResource::new("cpu", 2),
//!     completions: Vec::new(),
//! });
//!
//! // Three jobs arrive together on a dual-CPU box: two run at once.
//! for _ in 0..3 {
//!     sim.schedule_in(SimDuration::ZERO, |w: &mut World, ctx| {
//!         let done = w.cpu.admit(ctx.now(), SimDuration::from_millis(10));
//!         ctx.schedule_at(done, |w: &mut World, ctx| {
//!             w.completions.push(ctx.now().as_millis_f64());
//!         });
//!     });
//! }
//! sim.run();
//! assert_eq!(sim.world().completions, vec![10.0, 10.0, 20.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod recorder;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use fault::{message_lost, FaultEvent, FaultKind, FaultSchedule, RandomFaults};
pub use metrics::{
    nearest_rank, pooled_max, weighted_mean, Histogram, P2Quantile, Summary, Welford,
};
pub use recorder::{CounterId, GaugeId, HistId, LogHistogram, Recorder, WindowRow};
pub use resource::FifoResource;
pub use rng::SimRng;
pub use shard::{
    run_conservative, run_coordinated, Coordinator, NoCoordinator, Outbox, ShardWorld,
};
pub use sim::{Context, EventFn, Fire, NoEvent, QueueDepths, Simulation};
pub use telemetry::{MetricId, TelemetryRegistry, TelemetrySnapshot};
pub use time::{SimDuration, SimTime};
pub use trace::{
    critical_path, CompletedTrace, PathBreakdown, Span, SpanCtx, SpanKind, TraceConfig, TraceMeta,
    Tracer,
};
