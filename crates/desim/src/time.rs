//! Simulated time.
//!
//! The kernel measures time in integer **microseconds** so that event ordering
//! is exact and runs are bit-for-bit reproducible. Two newtypes keep instants
//! and durations apart ([`SimTime`] and [`SimDuration`]); mixing them up is a
//! compile error rather than a latent bug.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// ```
/// use mutsvc_desim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(100);
/// assert_eq!(t.as_micros(), 100_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use mutsvc_desim::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_millis_f64(), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, mirroring
    /// `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration elapsed since `earlier`, or `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// An empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// The span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, rounding to the nearest
    /// microsecond. Negative and non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; saturates to zero
    /// in release builds.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = self.saturating_sub(rhs);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis_f64(), 250.0);
    }

    #[test]
    fn negative_and_nan_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_millis(7).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
        assert_eq!(
            SimDuration::from_millis(3).saturating_sub(SimDuration::from_millis(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn display_is_nonempty_and_scaled() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1_500)), "1.500s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
