//! Queueing resources.
//!
//! A [`FifoResource`] models a station with `c` identical servers and a shared
//! FIFO queue — a dual-CPU application server is `FifoResource::new("cpu", 2)`,
//! a network link's serialization stage is a single-server resource.
//!
//! Instead of scheduling explicit service-start/service-end events, the
//! resource computes each job's completion time analytically at admission:
//! it keeps the next-free time of every server; an arriving job grabs the
//! earliest-free server and occupies it for its service demand. When
//! admissions happen in non-decreasing time order (which the event-driven
//! callers guarantee for response-path steps), this is exactly a c-server FIFO
//! queue; out-of-order admissions are still served work-conservingly.

use crate::time::{SimDuration, SimTime};

/// A multi-server FIFO queueing resource with analytic admission.
///
/// ```
/// use mutsvc_desim::{FifoResource, SimDuration, SimTime};
///
/// let mut cpu = FifoResource::new("cpu", 1);
/// let d = SimDuration::from_millis(10);
/// let t0 = SimTime::ZERO;
/// assert_eq!(cpu.admit(t0, d), SimTime::from_millis(10));
/// // Second job arriving at the same instant queues behind the first.
/// assert_eq!(cpu.admit(t0, d), SimTime::from_millis(20));
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: String,
    /// Next-free time of each server, indexed by server. Sized once at
    /// construction and reused for the lifetime of the resource — admissions
    /// never allocate. Server counts are small (CPUs per host, one per link),
    /// so a linear minimum scan beats heap churn; ties resolve to the lowest
    /// server index, keeping grant order deterministic and FIFO.
    free_at: Vec<SimTime>,
    servers: usize,
    jobs_admitted: u64,
    busy_time: SimDuration,
    first_admit: Option<SimTime>,
    last_completion: SimTime,
    total_wait: SimDuration,
}

impl FifoResource {
    /// Creates a resource with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "a resource needs at least one server");
        let free_at = vec![SimTime::ZERO; servers];
        FifoResource {
            name: name.into(),
            free_at,
            servers,
            jobs_admitted: 0,
            busy_time: SimDuration::ZERO,
            first_admit: None,
            last_completion: SimTime::ZERO,
            total_wait: SimDuration::ZERO,
        }
    }

    /// The resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Admits a job arriving at `now` with service demand `demand` and
    /// returns its completion time.
    ///
    /// A zero-demand job completes immediately at `max(now, earliest free)`.
    pub fn admit(&mut self, now: SimTime, demand: SimDuration) -> SimTime {
        let mut earliest = 0;
        for i in 1..self.free_at.len() {
            if self.free_at[i] < self.free_at[earliest] {
                earliest = i;
            }
        }
        let free = self.free_at[earliest];
        let start = now.max(free);
        let completion = start + demand;
        self.free_at[earliest] = completion;

        self.jobs_admitted += 1;
        self.busy_time += demand;
        self.total_wait += start - now;
        if self.first_admit.is_none() {
            self.first_admit = Some(now);
        }
        self.last_completion = self.last_completion.max(completion);
        completion
    }

    /// Jobs admitted so far.
    pub fn jobs_admitted(&self) -> u64 {
        self.jobs_admitted
    }

    /// Cumulative service demand admitted (busy server-time).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Mean queueing delay (time between arrival and service start).
    pub fn mean_wait(&self) -> SimDuration {
        if self.jobs_admitted == 0 {
            SimDuration::ZERO
        } else {
            self.total_wait / self.jobs_admitted
        }
    }

    /// Utilization over `[first admission, horizon]`: busy server-time divided
    /// by available server-time. Returns 0 before any admission.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        let Some(first) = self.first_admit else {
            return 0.0;
        };
        let elapsed = horizon.saturating_since(first).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / (elapsed * self.servers as f64)
    }

    /// The earliest time at which some server is free.
    pub fn earliest_free(&self) -> SimTime {
        self.free_at.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Resets statistics (not server occupancy). Used when discarding warm-up.
    pub fn reset_stats(&mut self) {
        self.jobs_admitted = 0;
        self.busy_time = SimDuration::ZERO;
        self.first_admit = None;
        self.total_wait = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;
    const AT: fn(u64) -> SimTime = SimTime::from_millis;

    #[test]
    fn single_server_serializes() {
        let mut r = FifoResource::new("r", 1);
        assert_eq!(r.admit(AT(0), MS(10)), AT(10));
        assert_eq!(r.admit(AT(0), MS(10)), AT(20));
        assert_eq!(r.admit(AT(5), MS(10)), AT(30));
        // After the backlog drains, a late arrival starts immediately.
        assert_eq!(r.admit(AT(100), MS(10)), AT(110));
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = FifoResource::new("r", 2);
        assert_eq!(r.admit(AT(0), MS(10)), AT(10));
        assert_eq!(r.admit(AT(0), MS(10)), AT(10));
        // Third job waits for the earliest of the two.
        assert_eq!(r.admit(AT(0), MS(10)), AT(20));
    }

    #[test]
    fn zero_demand_completes_at_start() {
        let mut r = FifoResource::new("r", 1);
        assert_eq!(r.admit(AT(3), SimDuration::ZERO), AT(3));
        r.admit(AT(3), MS(10));
        // Zero-demand job still queues behind the busy server.
        assert_eq!(r.admit(AT(3), SimDuration::ZERO), AT(13));
    }

    #[test]
    fn utilization_and_wait_accounting() {
        let mut r = FifoResource::new("r", 1);
        r.admit(AT(0), MS(10));
        r.admit(AT(0), MS(10)); // waits 10ms
        assert_eq!(r.jobs_admitted(), 2);
        assert_eq!(r.busy_time(), MS(20));
        assert_eq!(r.mean_wait(), MS(5));
        let u = r.utilization(AT(40));
        assert!((u - 0.5).abs() < 1e-9, "expected 0.5 got {u}");
    }

    #[test]
    fn utilization_before_any_admission_is_zero() {
        let r = FifoResource::new("idle", 4);
        assert_eq!(r.utilization(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn reset_stats_keeps_occupancy() {
        let mut r = FifoResource::new("r", 1);
        r.admit(AT(0), MS(50));
        r.reset_stats();
        assert_eq!(r.jobs_admitted(), 0);
        // Occupancy survives: next job queues behind the in-flight one.
        assert_eq!(r.admit(AT(0), MS(1)), AT(51));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = FifoResource::new("bad", 0);
    }

    /// When several servers free up at the same instant, queued arrivals are
    /// granted in strict arrival order at that instant — the tie between
    /// simultaneously-free servers must not reorder or delay grants.
    #[test]
    fn fifo_grant_order_under_simultaneous_releases() {
        let mut r = FifoResource::new("r", 3);
        // Occupy all three servers until t=10 (simultaneous releases).
        for _ in 0..3 {
            assert_eq!(r.admit(AT(0), MS(10)), AT(10));
        }
        // Backlogged arrivals, admitted in FIFO order: each is granted one of
        // the servers freed at t=10 and completes per its own demand, with no
        // extra wait introduced by the simultaneous release.
        assert_eq!(r.admit(AT(1), MS(5)), AT(15));
        assert_eq!(r.admit(AT(2), MS(7)), AT(17));
        assert_eq!(r.admit(AT(3), MS(9)), AT(19));
        // A fourth queued job waits for the earliest of the second wave.
        assert_eq!(r.admit(AT(4), MS(1)), AT(16));
        // Wait accounting reflects the FIFO queueing delays above.
        assert_eq!(r.total_wait, MS(9 + 8 + 7 + 11));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Lindley's recursion: for a single-server FIFO queue with
            /// in-order arrivals, completion times match the classical
            /// recurrence C_i = max(A_i, C_{i-1}) + S_i.
            #[test]
            fn lindley_recursion_single_server(
                arrivals in proptest::collection::vec(0u64..10_000, 1..200),
                services in proptest::collection::vec(0u64..500, 200),
            ) {
                let mut sorted = arrivals.clone();
                sorted.sort_unstable();
                let mut r = FifoResource::new("q", 1);
                let mut prev_completion = SimTime::ZERO;
                for (i, &a) in sorted.iter().enumerate() {
                    let arrival = SimTime::from_micros(a);
                    let service = SimDuration::from_micros(services[i % services.len()]);
                    let completion = r.admit(arrival, service);
                    let expected = arrival.max(prev_completion) + service;
                    prop_assert_eq!(completion, expected);
                    prev_completion = completion;
                }
            }

            /// Completion never precedes arrival + service, and the resource
            /// is work-conserving: total busy time equals the admitted demand.
            #[test]
            fn completions_respect_causality(
                servers in 1usize..5,
                jobs in proptest::collection::vec((0u64..5_000, 0u64..300), 1..100),
            ) {
                let mut sorted = jobs.clone();
                sorted.sort_unstable_by_key(|j| j.0);
                let mut r = FifoResource::new("q", servers);
                let mut demand_sum = SimDuration::ZERO;
                for &(a, s) in &sorted {
                    let arrival = SimTime::from_micros(a);
                    let service = SimDuration::from_micros(s);
                    let completion = r.admit(arrival, service);
                    prop_assert!(completion >= arrival + service);
                    demand_sum += service;
                }
                prop_assert_eq!(r.busy_time(), demand_sum);
            }
        }
    }
}
