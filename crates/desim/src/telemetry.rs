//! Named counters and gauges snapshotted into a sim-time series.
//!
//! A [`TelemetryRegistry`] is a flat table of named `f64` metrics. Owners
//! register metrics once at setup (getting a dense [`MetricId`]), update
//! them with [`set`](TelemetryRegistry::set)/[`add`](TelemetryRegistry::add)
//! (array indexing, no hashing on the hot path), and call
//! [`snapshot`](TelemetryRegistry::snapshot) at a fixed sim-time cadence to
//! append the current values to a time series.
//!
//! The registry is passive: it never schedules anything itself. The
//! workload driver owns the snapshot cadence (a typed event, so enabling
//! telemetry does not allocate boxed closures).

use crate::time::SimTime;

/// Dense handle to a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(u32);

impl MetricId {
    /// Index into [`TelemetryRegistry::names`] / snapshot value vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// All metric values observed at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Values in registration order (parallel to `names()`).
    pub values: Vec<f64>,
}

/// Flat registry of named metrics plus their snapshot series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryRegistry {
    names: Vec<String>,
    values: Vec<f64>,
    snapshots: Vec<TelemetrySnapshot>,
}

impl TelemetryRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TelemetryRegistry::default()
    }

    /// Registers a metric and returns its handle. Names must be unique;
    /// registering a duplicate panics (metric wiring is static, a clash is
    /// a programming error worth failing loudly on).
    pub fn register(&mut self, name: impl Into<String>) -> MetricId {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "telemetry metric {name:?} registered twice"
        );
        self.names.push(name);
        self.values.push(0.0);
        MetricId((self.names.len() - 1) as u32)
    }

    /// Overwrites a gauge.
    #[inline]
    pub fn set(&mut self, id: MetricId, value: f64) {
        self.values[id.index()] = value;
    }

    /// Increments a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: f64) {
        self.values[id.index()] += delta;
    }

    /// Current value of a metric.
    pub fn get(&self, id: MetricId) -> f64 {
        self.values[id.index()]
    }

    /// Appends the current values to the time series.
    pub fn snapshot(&mut self, now: SimTime) {
        self.snapshots.push(TelemetrySnapshot {
            at: now,
            values: self.values.clone(),
        });
    }

    /// Metric names in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The snapshot series in time order.
    pub fn snapshots(&self) -> &[TelemetrySnapshot] {
        &self.snapshots
    }

    /// Moves the snapshot series out, leaving the registry empty of history
    /// (names and current values are kept).
    pub fn take_snapshots(&mut self) -> Vec<TelemetrySnapshot> {
        std::mem::take(&mut self.snapshots)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_set_add_snapshot() {
        let mut reg = TelemetryRegistry::new();
        let depth = reg.register("queue.near_depth");
        let hits = reg.register("plan_cache.hits");
        reg.set(depth, 12.0);
        reg.add(hits, 1.0);
        reg.add(hits, 1.0);
        reg.snapshot(SimTime::from_millis(500));
        reg.set(depth, 3.0);
        reg.snapshot(SimTime::from_millis(1_000));

        assert_eq!(reg.names(), &["queue.near_depth", "plan_cache.hits"]);
        assert_eq!(reg.get(hits), 2.0);
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].values, vec![12.0, 2.0]);
        assert_eq!(snaps[1].values, vec![3.0, 2.0]);
        assert_eq!(snaps[1].at, SimTime::from_millis(1_000));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = TelemetryRegistry::new();
        reg.register("x");
        reg.register("x");
    }
}
