//! RUBiS database schema and test data.
//!
//! Per the paper's §3.4 sizing: 400 users from 20 regions, selling 400 items
//! in 20 categories. Bids and comments are pre-seeded so history pages have
//! content, and grow as bidders run.

use mutsvc_relstore::{Database, DatabaseBuilder, RowId, TableId, Value};

/// Table handles of the RUBiS schema.
#[derive(Debug, Clone, Copy)]
pub struct RubisTables {
    /// `region(name)`
    pub region: TableId,
    /// `category(name)`
    pub category: TableId,
    /// `user(*nickname, password, *region, rating, email)`
    pub user: TableId,
    /// `item(name, *category, *region, *catregion, price_cents, *seller, nb_bids)`
    /// — `catregion` is the composite browse key `category * 1000 + region`.
    pub item: TableId,
    /// `bid(*item, user, amount_cents)`
    pub bid: TableId,
    /// `comment(*to_user, from_user, text)`
    pub comment: TableId,
}

/// Id spaces for workload sampling.
#[derive(Debug, Clone)]
pub struct RubisShape {
    /// All region ids.
    pub regions: Vec<RowId>,
    /// All category ids.
    pub categories: Vec<RowId>,
    /// All user ids.
    pub users: Vec<RowId>,
    /// All item ids.
    pub items: Vec<RowId>,
    /// Items per category (dense category index).
    pub items_by_category: Vec<Vec<RowId>>,
    /// `(category index, region index)` of each item (dense item index).
    pub item_coords: Vec<(usize, usize)>,
}

/// Regions (§3.4).
pub const REGION_COUNT: usize = 20;
/// Categories (§3.4).
pub const CATEGORY_COUNT: usize = 20;
/// Users (§3.4).
pub const USER_COUNT: usize = 400;
/// Items (§3.4).
pub const ITEM_COUNT: usize = 400;
/// Pre-seeded bids per item.
pub const SEED_BIDS_PER_ITEM: usize = 5;
/// Pre-seeded comments per user.
pub const SEED_COMMENTS_PER_USER: usize = 2;

/// The composite browse key for `(category, region)` equality queries.
pub fn catregion_key(category: RowId, region: RowId) -> Value {
    Value::Int(category.0 as i64 * 1_000 + region.0 as i64)
}

/// Builds and populates the RUBiS database.
pub fn build_database() -> (Database, RubisTables, RubisShape) {
    let mut b = DatabaseBuilder::new();
    let tables = RubisTables {
        region: b.table("region", &["name"], 60),
        category: b.table("category", &["name"], 60),
        user: b.table(
            "user",
            &["*nickname", "password", "*region", "rating", "email"],
            220,
        ),
        item: b.table(
            "item",
            &[
                "name",
                "*category",
                "*region",
                "*catregion",
                "price_cents",
                "*seller",
                "nb_bids",
            ],
            260,
        ),
        bid: b.table("bid", &["*item", "user", "amount_cents"], 90),
        comment: b.table("comment", &["*to_user", "from_user", "text"], 150),
    };
    let mut db = b.build();

    let mut shape = RubisShape {
        regions: Vec::new(),
        categories: Vec::new(),
        users: Vec::new(),
        items: Vec::new(),
        items_by_category: vec![Vec::new(); CATEGORY_COUNT],
        item_coords: Vec::new(),
    };

    for r in 0..REGION_COUNT {
        shape.regions.push(
            db.table_mut(tables.region)
                .insert(vec![format!("region-{r}").into()]),
        );
    }
    for c in 0..CATEGORY_COUNT {
        shape.categories.push(
            db.table_mut(tables.category)
                .insert(vec![format!("category-{c}").into()]),
        );
    }
    for u in 0..USER_COUNT {
        let region = shape.regions[u % REGION_COUNT];
        shape.users.push(db.table_mut(tables.user).insert(vec![
            format!("user-{u}").into(),
            format!("pw-{u}").into(),
            region.into(),
            Value::Int(0),
            format!("user-{u}@example.com").into(),
        ]));
    }
    for i in 0..ITEM_COUNT {
        let cat_idx = i % CATEGORY_COUNT;
        let region_idx = (i / CATEGORY_COUNT) % REGION_COUNT;
        let category = shape.categories[cat_idx];
        let region = shape.regions[region_idx];
        let seller = shape.users[i % USER_COUNT];
        let item = db.table_mut(tables.item).insert(vec![
            format!("item-{i}").into(),
            category.into(),
            region.into(),
            catregion_key(category, region),
            Value::Int(2_000 + i as i64),
            seller.into(),
            Value::Int(SEED_BIDS_PER_ITEM as i64),
        ]);
        shape.items.push(item);
        shape.items_by_category[cat_idx].push(item);
        shape.item_coords.push((cat_idx, region_idx));

        for k in 0..SEED_BIDS_PER_ITEM {
            let bidder = shape.users[(i * 7 + k * 13) % USER_COUNT];
            db.table_mut(tables.bid).insert(vec![
                item.into(),
                bidder.into(),
                Value::Int(2_000 + i as i64 + k as i64 * 50),
            ]);
        }
    }
    for u in 0..USER_COUNT {
        for k in 0..SEED_COMMENTS_PER_USER {
            let from = shape.users[(u + k + 1) % USER_COUNT];
            db.table_mut(tables.comment).insert(vec![
                shape.users[u].into(),
                from.into(),
                format!("great seller #{k}").into(),
            ]);
        }
    }

    (db, tables, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutsvc_relstore::Query;

    #[test]
    fn sizing_matches_the_paper() {
        let (db, t, shape) = build_database();
        assert_eq!(db.table(t.region).len(), 20);
        assert_eq!(db.table(t.category).len(), 20);
        assert_eq!(db.table(t.user).len(), 400);
        assert_eq!(db.table(t.item).len(), 400);
        assert_eq!(db.table(t.bid).len(), 400 * SEED_BIDS_PER_ITEM);
        assert_eq!(db.table(t.comment).len(), 400 * SEED_COMMENTS_PER_USER);
        assert_eq!(shape.items.len(), 400);
    }

    #[test]
    fn twenty_items_per_category() {
        let (db, t, shape) = build_database();
        for &cat in &shape.categories {
            let out = db.execute(&Query::Eq {
                table: t.item,
                column: 1,
                value: cat.into(),
            });
            assert_eq!(out.row_count(), 20);
        }
    }

    #[test]
    fn catregion_queries_return_the_intersection() {
        let (db, t, shape) = build_database();
        let item_idx = 42;
        let (c, r) = shape.item_coords[item_idx];
        let key = catregion_key(shape.categories[c], shape.regions[r]);
        let out = db.execute(&Query::Eq {
            table: t.item,
            column: 3,
            value: key,
        });
        assert!(out.row_count() >= 1);
        assert!(out.rows.contains(&shape.items[item_idx]));
    }

    #[test]
    fn bids_by_item_returns_seeded_history() {
        let (db, t, shape) = build_database();
        let out = db.execute(&Query::Eq {
            table: t.bid,
            column: 0,
            value: shape.items[5].into(),
        });
        assert_eq!(out.row_count(), SEED_BIDS_PER_ITEM as u64);
    }

    #[test]
    fn nickname_lookup_is_unique() {
        let (db, t, _) = build_database();
        let out = db.execute(&Query::Eq {
            table: t.user,
            column: 0,
            value: "user-123".into(),
        });
        assert_eq!(out.row_count(), 1);
    }

    #[test]
    fn comments_by_user_returns_seeded_history() {
        let (db, t, shape) = build_database();
        let out = db.execute(&Query::Eq {
            table: t.comment,
            column: 0,
            value: shape.users[9].into(),
        });
        assert_eq!(out.row_count(), SEED_COMMENTS_PER_USER as u64);
    }
}
