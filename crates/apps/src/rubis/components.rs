//! RUBiS component inventory (Session Façade configuration, §2.2).
//!
//! The architecture is "almost linear": each servlet invokes one dedicated
//! stateless session bean, which accesses the related entity beans. There is
//! no per-client session state anywhere.

use mutsvc_middleware::{ComponentId, ComponentKind, ComponentRegistry};

use super::schema::RubisTables;

/// Handles to RUBiS's logical components.
#[derive(Debug, Clone, Copy)]
pub struct RubisComponents {
    /// The servlet tier as a unit.
    pub web: ComponentId,
    /// `SB_BrowseCategories`
    pub sb_browse_categories: ComponentId,
    /// `SB_BrowseRegions`
    pub sb_browse_regions: ComponentId,
    /// `SB_SearchItemsByCategory`
    pub sb_items_by_category: ComponentId,
    /// `SB_SearchItemsByRegion`
    pub sb_items_by_region: ComponentId,
    /// `SB_ViewItem`
    pub sb_view_item: ComponentId,
    /// `SB_ViewBidHistory`
    pub sb_view_bid_history: ComponentId,
    /// `SB_ViewUserInfo`
    pub sb_view_user_info: ComponentId,
    /// `SB_PutBid` (authentication + bidding form)
    pub sb_put_bid: ComponentId,
    /// `SB_StoreBid`
    pub sb_store_bid: ComponentId,
    /// `SB_PutComment`
    pub sb_put_comment: ComponentId,
    /// `SB_StoreComment`
    pub sb_store_comment: ComponentId,
    /// `Updater` façade for pushed updates.
    pub updater: ComponentId,
    /// `UpdateSubscriber` message-driven bean.
    pub update_subscriber: ComponentId,
    /// `UserEJB`
    pub user: ComponentId,
    /// `ItemEJB`
    pub item: ComponentId,
    /// `BidEJB`
    pub bid: ComponentId,
    /// `CommentEJB`
    pub comment: ComponentId,
    /// `RegionEJB`
    pub region: ComponentId,
    /// `CategoryEJB`
    pub category: ComponentId,
}

impl RubisComponents {
    /// Registers every RUBiS component.
    pub fn register(registry: &mut ComponentRegistry, tables: &RubisTables) -> Self {
        RubisComponents {
            web: registry.register("web", ComponentKind::Web),
            sb_browse_categories: registry
                .register("SB_BrowseCategories", ComponentKind::StatelessSession),
            sb_browse_regions: registry
                .register("SB_BrowseRegions", ComponentKind::StatelessSession),
            sb_items_by_category: registry
                .register("SB_SearchItemsByCategory", ComponentKind::StatelessSession),
            sb_items_by_region: registry
                .register("SB_SearchItemsByRegion", ComponentKind::StatelessSession),
            sb_view_item: registry.register("SB_ViewItem", ComponentKind::StatelessSession),
            sb_view_bid_history: registry
                .register("SB_ViewBidHistory", ComponentKind::StatelessSession),
            sb_view_user_info: registry
                .register("SB_ViewUserInfo", ComponentKind::StatelessSession),
            sb_put_bid: registry.register("SB_PutBid", ComponentKind::StatelessSession),
            sb_store_bid: registry.register("SB_StoreBid", ComponentKind::StatelessSession),
            sb_put_comment: registry.register("SB_PutComment", ComponentKind::StatelessSession),
            sb_store_comment: registry.register("SB_StoreComment", ComponentKind::StatelessSession),
            updater: registry.register("Updater", ComponentKind::StatelessSession),
            update_subscriber: registry.register("UpdateSubscriber", ComponentKind::MessageDriven),
            user: registry.register_entity("UserEJB", tables.user),
            item: registry.register_entity("ItemEJB", tables.item),
            bid: registry.register_entity("BidEJB", tables.bid),
            comment: registry.register_entity("CommentEJB", tables.comment),
            region: registry.register_entity("RegionEJB", tables.region),
            category: registry.register_entity("CategoryEJB", tables.category),
        }
    }

    /// All components.
    pub fn all(&self) -> [ComponentId; 20] {
        [
            self.web,
            self.sb_browse_categories,
            self.sb_browse_regions,
            self.sb_items_by_category,
            self.sb_items_by_region,
            self.sb_view_item,
            self.sb_view_bid_history,
            self.sb_view_user_info,
            self.sb_put_bid,
            self.sb_store_bid,
            self.sb_put_comment,
            self.sb_store_comment,
            self.updater,
            self.update_subscriber,
            self.user,
            self.item,
            self.bid,
            self.comment,
            self.region,
            self.category,
        ]
    }

    /// Entities replicated read-only on the edges in §4.3
    /// ("Read-only BMP versions of Item and User beans were introduced").
    pub fn cacheable_entities(&self) -> [ComponentId; 2] {
        [self.item, self.user]
    }

    /// Session beans deployed on the edges in §4.3 (the read-path façades).
    pub fn edge_read_facades(&self) -> [ComponentId; 3] {
        [
            self.sb_view_item,
            self.sb_view_bid_history,
            self.sb_view_user_info,
        ]
    }

    /// Additional session beans deployed on the edges in §4.4 (every façade
    /// whose queries are now cached locally — browse and form pages).
    pub fn edge_browse_facades(&self) -> [ComponentId; 7] {
        [
            self.sb_browse_categories,
            self.sb_browse_regions,
            self.sb_items_by_category,
            self.sb_items_by_region,
            self.sb_put_bid,
            self.sb_put_comment,
            self.updater,
        ]
    }

    /// Write-path façades: always co-located with the database.
    pub fn write_facades(&self) -> [ComponentId; 2] {
        [self.sb_store_bid, self.sb_store_comment]
    }

    /// The "almost linear" architecture edges: servlet → dedicated façade →
    /// related entities.
    pub fn architecture_edges(&self) -> Vec<(ComponentId, ComponentId)> {
        vec![
            (self.web, self.sb_browse_categories),
            (self.web, self.sb_browse_regions),
            (self.web, self.sb_items_by_category),
            (self.web, self.sb_items_by_region),
            (self.web, self.sb_view_item),
            (self.web, self.sb_view_bid_history),
            (self.web, self.sb_view_user_info),
            (self.web, self.sb_put_bid),
            (self.web, self.sb_store_bid),
            (self.web, self.sb_put_comment),
            (self.web, self.sb_store_comment),
            (self.sb_browse_categories, self.category),
            (self.sb_browse_regions, self.region),
            (self.sb_items_by_category, self.item),
            (self.sb_items_by_region, self.item),
            (self.sb_view_item, self.item),
            (self.sb_view_bid_history, self.bid),
            (self.sb_view_bid_history, self.item),
            (self.sb_view_user_info, self.user),
            (self.sb_view_user_info, self.comment),
            (self.sb_put_bid, self.user),
            (self.sb_put_bid, self.item),
            (self.sb_store_bid, self.user),
            (self.sb_store_bid, self.item),
            (self.sb_store_bid, self.bid),
            (self.sb_put_comment, self.user),
            (self.sb_store_comment, self.user),
            (self.sb_store_comment, self.comment),
            (self.updater, self.item),
            (self.updater, self.user),
            (self.update_subscriber, self.updater),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::super::schema::build_database;
    use super::*;

    #[test]
    fn registry_is_linear_and_stateless() {
        let (_, tables, _) = build_database();
        let mut reg = ComponentRegistry::new();
        let c = RubisComponents::register(&mut reg, &tables);
        assert_eq!(reg.len(), 20);
        // RUBiS keeps no per-client session state: no stateful session beans.
        for id in reg.ids() {
            assert_ne!(reg.spec(id).kind, ComponentKind::StatefulSession);
        }
        assert_eq!(
            reg.spec(c.sb_view_item).kind,
            ComponentKind::StatelessSession
        );
        assert_eq!(reg.spec(c.item).table, Some(tables.item));
    }

    #[test]
    fn servlets_never_touch_entities_directly() {
        let (_, tables, _) = build_database();
        let mut reg = ComponentRegistry::new();
        let c = RubisComponents::register(&mut reg, &tables);
        for (from, to) in c.architecture_edges() {
            if from == c.web {
                assert_eq!(reg.spec(to).kind, ComponentKind::StatelessSession);
            }
        }
    }
}
