//! RUBiS page behaviours: the 17 measured pages of Tables 4/5/7.
//!
//! Every dynamic page is one servlet → one dedicated stateless session bean →
//! entity/finder accesses; non-browsing actions authenticate inside the same
//! bean call (RUBiS has no login sessions — credentials ride along as hidden
//! parameters, §2.2).

use mutsvc_desim::time::SimDuration;
use mutsvc_middleware::{Call, DbAccess, PageRequest};
use mutsvc_relstore::{Mutation, Query, RowId, Value};
use serde::{Deserialize, Serialize};

use super::components::RubisComponents;
use super::schema::{catregion_key, RubisTables};

/// Cacheable query tags (§4.4 caches *all* browser/bidder queries).
pub mod tags {
    /// Category list.
    pub const ALL_CATEGORIES: &str = "rubis:all-categories";
    /// Region list.
    pub const ALL_REGIONS: &str = "rubis:all-regions";
    /// Items of a category.
    pub const ITEMS_BY_CATEGORY: &str = "rubis:items-by-category";
    /// Items of a category within a region.
    pub const ITEMS_BY_CATREGION: &str = "rubis:items-by-catregion";
    /// Bid history of an item.
    pub const BIDS_BY_ITEM: &str = "rubis:bids-by-item";
    /// Comments left for a user.
    pub const COMMENTS_BY_USER: &str = "rubis:comments-by-user";
    /// Authentication lookup by nickname.
    pub const USER_BY_NICKNAME: &str = "rubis:user-by-nickname";

    /// All tags, the §4.4 descriptor list.
    pub const ALL: [&str; 7] = [
        ALL_CATEGORIES,
        ALL_REGIONS,
        ITEMS_BY_CATEGORY,
        ITEMS_BY_CATREGION,
        BIDS_BY_ITEM,
        COMMENTS_BY_USER,
        USER_BY_NICKNAME,
    ];
}

/// The RUBiS pages measured in Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RubisPage {
    /// Static entry page.
    Main,
    /// Static browse menu.
    Browse,
    /// List of categories.
    AllCategories,
    /// List of regions.
    AllRegions,
    /// Categories available in a region.
    Region,
    /// Items of a category.
    Category,
    /// Items of a category in a region.
    CategoryRegion,
    /// Item details.
    Item,
    /// Bid history of an item.
    Bids,
    /// Public user profile with comments.
    UserInfo,
    /// Static authentication form before bidding.
    PutBidAuth,
    /// Bidding form (authenticates, shows the item).
    PutBidForm,
    /// Store a bid (write).
    StoreBid,
    /// Static authentication form before commenting.
    PutCommentAuth,
    /// Comment form (authenticates, shows the target user).
    PutCommentForm,
    /// Store a comment (write).
    StoreComment,
}

impl RubisPage {
    /// The reporting label used in Table 7.
    pub fn name(self) -> &'static str {
        match self {
            RubisPage::Main => "Main",
            RubisPage::Browse => "Browse",
            RubisPage::AllCategories => "AllCategories",
            RubisPage::AllRegions => "AllRegions",
            RubisPage::Region => "Region",
            RubisPage::Category => "Category",
            RubisPage::CategoryRegion => "Category&Region",
            RubisPage::Item => "Item",
            RubisPage::Bids => "Bids",
            RubisPage::UserInfo => "UserInfo",
            RubisPage::PutBidAuth => "PutBidAuth",
            RubisPage::PutBidForm => "PutBidForm",
            RubisPage::StoreBid => "StoreBid",
            RubisPage::PutCommentAuth => "PutCommentAuth",
            RubisPage::PutCommentForm => "PutCommentForm",
            RubisPage::StoreComment => "StoreComment",
        }
    }

    /// Pages in Table 7 column order.
    pub fn all() -> [RubisPage; 16] {
        [
            RubisPage::Main,
            RubisPage::Browse,
            RubisPage::AllCategories,
            RubisPage::AllRegions,
            RubisPage::Region,
            RubisPage::Category,
            RubisPage::CategoryRegion,
            RubisPage::Item,
            RubisPage::Bids,
            RubisPage::UserInfo,
            RubisPage::PutBidAuth,
            RubisPage::PutBidForm,
            RubisPage::StoreBid,
            RubisPage::PutCommentAuth,
            RubisPage::PutCommentForm,
            RubisPage::StoreComment,
        ]
    }
}

/// Sampled parameters for one page request.
///
/// Deliberately `Copy`: the hot request path stores drawn parameters in a
/// [`PageSpec`](crate::PageSpec) without allocating.
#[derive(Debug, Clone, Copy)]
pub struct RubisParams {
    /// Browsed category.
    pub category: RowId,
    /// Browsed region.
    pub region: RowId,
    /// Viewed/bid item.
    pub item: RowId,
    /// Profile being viewed / comment target.
    pub target_user: RowId,
    /// Acting (authenticated) user.
    pub user: RowId,
}

/// CPU and size calibration for RUBiS pages (much lighter than Pet Store).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RubisCosts {
    /// Servlet render demand for a static page (ms).
    pub render_ms: f64,
    /// Fixed non-CPU serving overhead per page (ms).
    pub overhead_ms: f64,
    /// Session bean method demand (ms).
    pub sb_ms: f64,
    /// Entity bean method demand (ms).
    pub entity_ms: f64,
    /// Additional render demand per result row on list pages (ms).
    pub per_row_ms: f64,
}

impl Default for RubisCosts {
    fn default() -> Self {
        RubisCosts {
            render_ms: 5.0,
            overhead_ms: 5.0,
            sb_ms: 2.0,
            entity_ms: 1.0,
            per_row_ms: 0.9,
        }
    }
}

impl RubisCosts {
    fn render(&self, rows: u64) -> SimDuration {
        SimDuration::from_millis_f64(self.render_ms + self.per_row_ms * rows as f64)
    }
    fn sb(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.sb_ms)
    }
    fn entity(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.entity_ms)
    }
    fn overhead(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.overhead_ms)
    }
}

/// Builds the call tree of `page` with parameters `params`.
pub fn build_page(
    c: &RubisComponents,
    t: &RubisTables,
    costs: &RubisCosts,
    page: RubisPage,
    params: &RubisParams,
) -> PageRequest {
    let auth_q = Query::Eq {
        table: t.user,
        column: 0,
        value: nickname(params.user),
    };
    let item_q = Query::ByPk {
        table: t.item,
        id: params.item,
    };
    let request = match page {
        RubisPage::Main => PageRequest::new(
            page.name(),
            Call::new(c.web, "main", costs.render(0)),
            3_000,
        ),
        RubisPage::Browse => PageRequest::new(
            page.name(),
            Call::new(c.web, "browse", costs.render(0)),
            3_000,
        ),
        RubisPage::AllCategories => list_page(
            c,
            costs,
            page,
            c.sb_browse_categories,
            Call::new(c.sb_browse_categories, "getCategories", costs.sb()).tagged_query(
                Query::All { table: t.category },
                tags::ALL_CATEGORIES,
                DbAccess::Single,
            ),
            20,
            6_000,
        ),
        RubisPage::AllRegions => list_page(
            c,
            costs,
            page,
            c.sb_browse_regions,
            Call::new(c.sb_browse_regions, "getRegions", costs.sb()).tagged_query(
                Query::All { table: t.region },
                tags::ALL_REGIONS,
                DbAccess::Single,
            ),
            20,
            6_000,
        ),
        RubisPage::Region => list_page(
            c,
            costs,
            page,
            c.sb_browse_categories,
            Call::new(c.sb_browse_categories, "getCategoriesForRegion", costs.sb()).tagged_query(
                Query::All { table: t.category },
                tags::ALL_CATEGORIES,
                DbAccess::Single,
            ),
            20,
            6_000,
        ),
        RubisPage::Category => list_page(
            c,
            costs,
            page,
            c.sb_items_by_category,
            Call::new(c.sb_items_by_category, "getItems", costs.sb()).tagged_query(
                Query::Eq {
                    table: t.item,
                    column: 1,
                    value: params.category.into(),
                },
                tags::ITEMS_BY_CATEGORY,
                DbAccess::Single,
            ),
            20,
            9_000,
        ),
        RubisPage::CategoryRegion => list_page(
            c,
            costs,
            page,
            c.sb_items_by_region,
            Call::new(c.sb_items_by_region, "getItems", costs.sb()).tagged_query(
                Query::Eq {
                    table: t.item,
                    column: 3,
                    value: catregion_key(params.category, params.region),
                },
                tags::ITEMS_BY_CATREGION,
                DbAccess::Single,
            ),
            4,
            5_000,
        ),
        RubisPage::Item => {
            let sb = Call::new(c.sb_view_item, "getItem", costs.sb()).invoke(
                Call::new(c.item, "load", costs.entity()).query(item_q, DbAccess::Single),
                60,
                450,
            );
            let root = Call::new(c.web, "item", costs.render(1)).invoke(sb, 120, 600);
            PageRequest::new(page.name(), root, 4_500)
        }
        RubisPage::Bids => {
            let sb = Call::new(c.sb_view_bid_history, "getBids", costs.sb())
                .invoke(
                    Call::new(c.item, "load", costs.entity())
                        .query(item_q.clone(), DbAccess::Single),
                    60,
                    450,
                )
                .tagged_query(
                    Query::Eq {
                        table: t.bid,
                        column: 0,
                        value: params.item.into(),
                    },
                    tags::BIDS_BY_ITEM,
                    DbAccess::Single,
                );
            let root = Call::new(c.web, "bids", costs.render(6)).invoke(sb, 120, 900);
            PageRequest::new(page.name(), root, 6_000)
        }
        RubisPage::UserInfo => {
            let sb = Call::new(c.sb_view_user_info, "getUserInfo", costs.sb())
                .invoke(
                    Call::new(c.user, "load", costs.entity()).query(
                        Query::ByPk {
                            table: t.user,
                            id: params.target_user,
                        },
                        DbAccess::Single,
                    ),
                    60,
                    400,
                )
                .tagged_query(
                    Query::Eq {
                        table: t.comment,
                        column: 0,
                        value: params.target_user.into(),
                    },
                    tags::COMMENTS_BY_USER,
                    DbAccess::Single,
                );
            let root = Call::new(c.web, "user-info", costs.render(4)).invoke(sb, 120, 800);
            PageRequest::new(page.name(), root, 6_000)
        }
        RubisPage::PutBidAuth => PageRequest::new(
            page.name(),
            Call::new(c.web, "put-bid-auth", costs.render(0)),
            2_500,
        ),
        RubisPage::PutBidForm => {
            let sb = Call::new(c.sb_put_bid, "authenticateAndGetItem", costs.sb())
                .tagged_query(auth_q, tags::USER_BY_NICKNAME, DbAccess::Single)
                .invoke(
                    Call::new(c.item, "load", costs.entity()).query(item_q, DbAccess::Single),
                    60,
                    450,
                );
            let root = Call::new(c.web, "put-bid", costs.render(1)).invoke(sb, 200, 600);
            PageRequest::new(page.name(), root, 4_000)
        }
        RubisPage::StoreBid => {
            let sb = Call::new(c.sb_store_bid, "storeBid", costs.sb())
                .tagged_query(auth_q, tags::USER_BY_NICKNAME, DbAccess::Single)
                .mutate(Mutation::Insert {
                    table: t.bid,
                    values: vec![params.item.into(), params.user.into(), Value::Int(9_999)],
                })
                .invoke(
                    Call::new(c.item, "registerBid", costs.entity()).mutate(Mutation::Update {
                        table: t.item,
                        id: params.item,
                        column: 6,
                        value: Value::Int(1),
                    }),
                    80,
                    60,
                );
            let root = Call::new(c.web, "store-bid", costs.render(0)).invoke(sb, 250, 300);
            PageRequest::new(page.name(), root, 3_000)
        }
        RubisPage::PutCommentAuth => PageRequest::new(
            page.name(),
            Call::new(c.web, "put-comment-auth", costs.render(0)),
            2_500,
        ),
        RubisPage::PutCommentForm => {
            let sb = Call::new(c.sb_put_comment, "authenticateAndGetUser", costs.sb())
                .tagged_query(auth_q, tags::USER_BY_NICKNAME, DbAccess::Single)
                .invoke(
                    Call::new(c.user, "load", costs.entity()).query(
                        Query::ByPk {
                            table: t.user,
                            id: params.target_user,
                        },
                        DbAccess::Single,
                    ),
                    60,
                    400,
                );
            let root = Call::new(c.web, "put-comment", costs.render(1)).invoke(sb, 200, 500);
            PageRequest::new(page.name(), root, 3_500)
        }
        RubisPage::StoreComment => {
            let sb = Call::new(c.sb_store_comment, "storeComment", costs.sb())
                .tagged_query(auth_q, tags::USER_BY_NICKNAME, DbAccess::Single)
                .mutate(Mutation::Insert {
                    table: t.comment,
                    values: vec![
                        params.target_user.into(),
                        params.user.into(),
                        "nice doing business".into(),
                    ],
                })
                .invoke(
                    Call::new(c.user, "updateRating", costs.entity()).mutate(Mutation::Update {
                        table: t.user,
                        id: params.target_user,
                        column: 3,
                        value: Value::Int(1),
                    }),
                    80,
                    60,
                );
            let root = Call::new(c.web, "store-comment", costs.render(0)).invoke(sb, 300, 300);
            PageRequest::new(page.name(), root, 3_000)
        }
    };
    request.with_overhead(costs.overhead())
}

fn list_page(
    c: &RubisComponents,
    costs: &RubisCosts,
    page: RubisPage,
    _sb: mutsvc_middleware::ComponentId,
    sb_call: Call,
    rows: u64,
    response_bytes: u64,
) -> PageRequest {
    let root = Call::new(c.web, page.name().to_lowercase(), costs.render(rows)).invoke(
        sb_call,
        150,
        rows * 120 + 200,
    );
    PageRequest::new(page.name(), root, response_bytes)
}

fn nickname(user: RowId) -> Value {
    Value::from(format!("user-{}", user.0 - 1))
}

#[cfg(test)]
mod tests {
    use super::super::schema::build_database;
    use super::*;
    use mutsvc_middleware::{Action, ComponentRegistry};

    fn fixture() -> (RubisComponents, RubisTables, RubisParams) {
        let (_, tables, shape) = build_database();
        let mut reg = ComponentRegistry::new();
        let comps = RubisComponents::register(&mut reg, &tables);
        let params = RubisParams {
            category: shape.categories[2],
            region: shape.regions[3],
            item: shape.items[42],
            target_user: shape.users[7],
            user: shape.users[11],
        };
        (comps, tables, params)
    }

    #[test]
    fn one_session_bean_invocation_per_dynamic_page() {
        let (c, t, params) = fixture();
        let costs = RubisCosts::default();
        for page in RubisPage::all() {
            let req = build_page(&c, &t, &costs, page, &params);
            // The servlet makes at most one direct sub-invocation (its
            // dedicated session bean) — the paper's one-RMI-per-page rule.
            let direct_invokes = req
                .root
                .actions
                .iter()
                .filter(|a| matches!(a, Action::Invoke(_)))
                .count();
            assert!(direct_invokes <= 1, "{}: {direct_invokes}", page.name());
            // And no direct queries/writes from the servlet.
            assert!(
                !req.root
                    .actions
                    .iter()
                    .any(|a| !matches!(a, Action::Invoke(_))),
                "{} servlet accesses data directly",
                page.name()
            );
        }
    }

    #[test]
    fn static_pages_have_no_invocations() {
        let (c, t, params) = fixture();
        let costs = RubisCosts::default();
        for page in [
            RubisPage::Main,
            RubisPage::Browse,
            RubisPage::PutBidAuth,
            RubisPage::PutCommentAuth,
        ] {
            let req = build_page(&c, &t, &costs, page, &params);
            assert!(req.root.actions.is_empty(), "{}", page.name());
        }
    }

    #[test]
    fn only_store_pages_write() {
        let (c, t, params) = fixture();
        let costs = RubisCosts::default();
        for page in RubisPage::all() {
            let req = build_page(&c, &t, &costs, page, &params);
            let writes = matches!(page, RubisPage::StoreBid | RubisPage::StoreComment);
            assert_eq!(req.root.has_writes(), writes, "{}", page.name());
        }
    }

    #[test]
    fn every_browse_query_is_tagged() {
        let (c, t, params) = fixture();
        let costs = RubisCosts::default();
        // §4.4: all queries in browser/bidder sessions are cacheable.
        for page in RubisPage::all() {
            let req = build_page(&c, &t, &costs, page, &params);
            req.root.walk(&mut |call| {
                for a in &call.actions {
                    if let Action::Query(q) = a {
                        // Entity PK loads go through replicas, finders must
                        // carry a cache tag.
                        if !matches!(q.query, Query::ByPk { .. }) {
                            assert!(q.tag.is_some(), "{} has an untagged finder", page.name());
                            assert!(tags::ALL.contains(&q.tag.as_deref().unwrap()));
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn auth_rides_inside_the_store_call() {
        let (c, t, params) = fixture();
        let costs = RubisCosts::default();
        let req = build_page(&c, &t, &costs, RubisPage::StoreBid, &params);
        // Root has exactly one invoke (SB_StoreBid), which authenticates,
        // inserts the bid and updates the item.
        assert_eq!(req.root.actions.len(), 1);
        if let Action::Invoke(i) = &req.root.actions[0] {
            assert_eq!(i.call.component, c.sb_store_bid);
            assert!(i.call.has_writes());
        } else {
            panic!("expected invoke");
        }
    }
}
