//! RUBiS service usage patterns: the Browser (Table 4) and Bidder (Table 5)
//! sessions.

use mutsvc_desim::rng::SimRng;

use super::pages::{RubisPage, RubisParams};
use super::schema::RubisShape;

/// Browser session length (Table 4: "sessions of length 40").
pub const BROWSER_SESSION_LENGTH: usize = 40;

/// Table 4 page mix (weights in percent).
pub const BROWSER_MIX: [(RubisPage, f64); 10] = [
    (RubisPage::Main, 2.5),
    (RubisPage::Browse, 2.5),
    (RubisPage::AllCategories, 2.5),
    (RubisPage::AllRegions, 2.5),
    (RubisPage::Region, 2.5),
    (RubisPage::Category, 7.5),
    (RubisPage::CategoryRegion, 7.5),
    (RubisPage::Item, 42.5),
    (RubisPage::Bids, 15.0),
    (RubisPage::UserInfo, 15.0),
];

/// Table 5 bidder sequence: bid on an item, then comment on its seller.
pub const BIDDER_SEQUENCE: [RubisPage; 7] = [
    RubisPage::Main,
    RubisPage::PutBidAuth,
    RubisPage::PutBidForm,
    RubisPage::StoreBid,
    RubisPage::PutCommentAuth,
    RubisPage::PutCommentForm,
    RubisPage::StoreComment,
];

/// A browsing session over a drilling-down context.
#[derive(Debug, Clone)]
pub struct BrowserSession {
    issued: usize,
    category_idx: Option<usize>,
    region_idx: Option<usize>,
    item_idx: Option<usize>,
}

impl BrowserSession {
    /// Starts a fresh session.
    pub fn new() -> Self {
        BrowserSession {
            issued: 0,
            category_idx: None,
            region_idx: None,
            item_idx: None,
        }
    }

    /// Whether the session has issued all its requests.
    pub fn finished(&self) -> bool {
        self.issued >= BROWSER_SESSION_LENGTH
    }

    /// Draws the next page and parameters, or `None` when finished.
    pub fn next(
        &mut self,
        shape: &RubisShape,
        rng: &mut SimRng,
    ) -> Option<(RubisPage, RubisParams)> {
        if self.finished() {
            return None;
        }
        let page = if self.issued == 0 {
            RubisPage::Main
        } else {
            let weights = BROWSER_MIX.map(|(_, w)| w);
            BROWSER_MIX[rng.weighted_index(&weights)].0
        };
        self.issued += 1;

        match page {
            RubisPage::AllCategories | RubisPage::Browse => {
                self.item_idx = None;
            }
            RubisPage::Region | RubisPage::AllRegions => {
                self.region_idx = Some(rng.index(shape.regions.len()));
                self.item_idx = None;
            }
            RubisPage::Category => {
                self.category_idx = Some(rng.index(shape.categories.len()));
                self.item_idx = None;
            }
            RubisPage::CategoryRegion => {
                self.category_idx = Some(rng.index(shape.categories.len()));
                self.region_idx = Some(rng.index(shape.regions.len()));
                self.item_idx = None;
            }
            RubisPage::Item => {
                // An item of the current category, if any.
                let cat = *self
                    .category_idx
                    .get_or_insert_with(|| rng.index(shape.categories.len()));
                let items = &shape.items_by_category[cat];
                let item = items[rng.index(items.len())];
                self.item_idx = Some((item.0 - 1) as usize);
            }
            _ => {}
        }
        Some((page, self.params(shape, rng)))
    }

    fn params(&mut self, shape: &RubisShape, rng: &mut SimRng) -> RubisParams {
        let category_idx = *self
            .category_idx
            .get_or_insert_with(|| rng.index(shape.categories.len()));
        let region_idx = *self
            .region_idx
            .get_or_insert_with(|| rng.index(shape.regions.len()));
        let item_idx = *self.item_idx.get_or_insert_with(|| {
            let items = &shape.items_by_category[category_idx];
            (items[rng.index(items.len())].0 - 1) as usize
        });
        RubisParams {
            category: shape.categories[category_idx],
            region: shape.regions[region_idx],
            item: shape.items[item_idx],
            target_user: shape.users[rng.index(shape.users.len())],
            user: shape.users[rng.index(shape.users.len())],
        }
    }
}

impl Default for BrowserSession {
    fn default() -> Self {
        Self::new()
    }
}

/// A bidder session: the fixed Table 5 sequence. The comment target is the
/// seller of the bid item.
#[derive(Debug, Clone)]
pub struct BidderSession {
    step: usize,
    params: RubisParams,
}

impl BidderSession {
    /// Starts a session for a random user bidding on a random item.
    pub fn new(shape: &RubisShape, rng: &mut SimRng) -> Self {
        let item_idx = rng.index(shape.items.len());
        let (cat_idx, region_idx) = shape.item_coords[item_idx];
        // Seller assignment in the schema: item i is sold by user i % USER_COUNT.
        let seller = shape.users[item_idx % shape.users.len()];
        BidderSession {
            step: 0,
            params: RubisParams {
                category: shape.categories[cat_idx],
                region: shape.regions[region_idx],
                item: shape.items[item_idx],
                target_user: seller,
                user: shape.users[rng.index(shape.users.len())],
            },
        }
    }

    /// Whether the sequence is exhausted.
    pub fn finished(&self) -> bool {
        self.step >= BIDDER_SEQUENCE.len()
    }

    /// The next page of the sequence.
    ///
    /// Deliberately named like `Iterator::next`; the session types are not
    /// iterators because callers thread an RNG through the browser variants.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(RubisPage, RubisParams)> {
        if self.finished() {
            return None;
        }
        let page = BIDDER_SEQUENCE[self.step];
        self.step += 1;
        Some((page, self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::super::schema::build_database;
    use super::*;

    #[test]
    fn browser_sessions_are_forty_requests_starting_main() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(1);
        let mut s = BrowserSession::new();
        let mut pages = Vec::new();
        while let Some((p, _)) = s.next(&shape, &mut rng) {
            pages.push(p);
        }
        assert_eq!(pages.len(), BROWSER_SESSION_LENGTH);
        assert_eq!(pages[0], RubisPage::Main);
    }

    #[test]
    fn browser_mix_approximates_table_4() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..1_500 {
            let mut s = BrowserSession::new();
            let _ = s.next(&shape, &mut rng); // skip the fixed Main
            while let Some((p, _)) = s.next(&shape, &mut rng) {
                *counts.entry(p).or_insert(0usize) += 1;
            }
        }
        let total: usize = counts.values().sum();
        for (page, pct) in BROWSER_MIX {
            let share = *counts.get(&page).unwrap_or(&0) as f64 / total as f64 * 100.0;
            assert!(
                (share - pct).abs() < 1.2,
                "{}: {share:.1}% vs {pct}%",
                page.name()
            );
        }
    }

    #[test]
    fn items_belong_to_the_current_category() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(3);
        let mut s = BrowserSession::new();
        while let Some((page, params)) = s.next(&shape, &mut rng) {
            if page == RubisPage::Item {
                let cat_idx = shape
                    .categories
                    .iter()
                    .position(|&c| c == params.category)
                    .unwrap();
                assert!(shape.items_by_category[cat_idx].contains(&params.item));
            }
        }
    }

    #[test]
    fn bidder_follows_table_5_and_comments_on_the_seller() {
        let (_, _, shape) = build_database();
        let mut rng = SimRng::seed_from_u64(4);
        let mut s = BidderSession::new(&shape, &mut rng);
        let mut pages = Vec::new();
        let mut last_params = None;
        while let Some((p, params)) = s.next() {
            pages.push(p);
            last_params = Some(params);
        }
        assert_eq!(pages, BIDDER_SEQUENCE);
        let params = last_params.unwrap();
        let item_idx = (params.item.0 - 1) as usize;
        assert_eq!(
            params.target_user,
            shape.users[item_idx % shape.users.len()]
        );
    }
}
