//! Rice University's RUBiS auction site (Session Façade configuration),
//! as modelled in the paper (§2.2, §3.4).
//!
//! A deliberately lean, high-performance application: no per-client session
//! state, one dedicated stateless session bean per page, authentication
//! per non-browsing action.

pub mod components;
pub mod pages;
pub mod schema;
pub mod sessions;

use mutsvc_middleware::{ComponentRegistry, PageRequest};
use mutsvc_relstore::Database;

pub use components::RubisComponents;
pub use pages::{tags, RubisCosts, RubisPage, RubisParams};
pub use schema::{RubisShape, RubisTables};
pub use sessions::{
    BidderSession, BrowserSession, BIDDER_SEQUENCE, BROWSER_MIX, BROWSER_SESSION_LENGTH,
};

/// The RUBiS application model.
#[derive(Debug, Clone)]
pub struct Rubis {
    /// Component handles.
    pub components: RubisComponents,
    /// Table handles.
    pub tables: RubisTables,
    /// Parameter spaces for workload sampling.
    pub shape: RubisShape,
    /// CPU/size calibration.
    pub costs: RubisCosts,
}

impl Rubis {
    /// Builds the application, its component registry and its database.
    pub fn build() -> (Rubis, ComponentRegistry, Database) {
        let (db, tables, shape) = schema::build_database();
        let mut registry = ComponentRegistry::new();
        let components = RubisComponents::register(&mut registry, &tables);
        (
            Rubis {
                components,
                tables,
                shape,
                costs: RubisCosts::default(),
            },
            registry,
            db,
        )
    }

    /// Builds the call tree of one page request.
    pub fn page(&self, page: RubisPage, params: &RubisParams) -> PageRequest {
        pages::build_page(&self.components, &self.tables, &self.costs, page, params)
    }

    /// Fixed representative page parameters; the static analyzer walks every
    /// page once with these instead of sampling a workload.
    pub fn representative_params(&self) -> RubisParams {
        RubisParams {
            category: self.shape.categories[2],
            region: self.shape.regions[3],
            item: self.shape.items[42],
            target_user: self.shape.users[7],
            user: self.shape.users[11],
        }
    }

    /// Every measured page, built with [`Self::representative_params`].
    pub fn all_pages(&self) -> Vec<PageRequest> {
        let params = self.representative_params();
        RubisPage::all()
            .into_iter()
            .map(|p| self.page(p, &params))
            .collect()
    }

    /// Every cacheable query instance the workload can issue, for eager
    /// edge-cache population (`(tag, query)` pairs). §4.4 caches all queries
    /// of the browser and bidder sessions.
    pub fn cacheable_query_instances(&self) -> Vec<(String, mutsvc_relstore::Query)> {
        use mutsvc_relstore::Query;
        let t = &self.tables;
        let mut out = vec![
            (
                tags::ALL_CATEGORIES.to_string(),
                Query::All { table: t.category },
            ),
            (
                tags::ALL_REGIONS.to_string(),
                Query::All { table: t.region },
            ),
        ];
        for &cat in &self.shape.categories {
            out.push((
                tags::ITEMS_BY_CATEGORY.to_string(),
                Query::Eq {
                    table: t.item,
                    column: 1,
                    value: cat.into(),
                },
            ));
            for &region in &self.shape.regions {
                out.push((
                    tags::ITEMS_BY_CATREGION.to_string(),
                    Query::Eq {
                        table: t.item,
                        column: 3,
                        value: schema::catregion_key(cat, region),
                    },
                ));
            }
        }
        for &item in &self.shape.items {
            out.push((
                tags::BIDS_BY_ITEM.to_string(),
                Query::Eq {
                    table: t.bid,
                    column: 0,
                    value: item.into(),
                },
            ));
        }
        for (i, &user) in self.shape.users.iter().enumerate() {
            out.push((
                tags::COMMENTS_BY_USER.to_string(),
                Query::Eq {
                    table: t.comment,
                    column: 0,
                    value: user.into(),
                },
            ));
            out.push((
                tags::USER_BY_NICKNAME.to_string(),
                Query::Eq {
                    table: t.user,
                    column: 0,
                    value: format!("user-{i}").into(),
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_handles() {
        let (app, registry, db) = Rubis::build();
        assert_eq!(registry.len(), 20);
        assert_eq!(db.table(app.tables.item).len(), 400);
    }

    #[test]
    fn page_builder_round_trips() {
        let (app, _, _) = Rubis::build();
        let params = RubisParams {
            category: app.shape.categories[0],
            region: app.shape.regions[0],
            item: app.shape.items[0],
            target_user: app.shape.users[0],
            user: app.shape.users[1],
        };
        assert_eq!(app.page(RubisPage::Bids, &params).page, "Bids");
    }
}
